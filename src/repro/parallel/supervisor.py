"""Fault-tolerant, resumable supervision of the parallel space sweep.

:func:`evaluate_resilient` runs the full-space sweep across worker
processes and survives the failure modes that kill a plain process pool:

* **crashed workers** — a worker that exits (SIGKILL, OOM, bug) is
  detected by process liveness; its leased span is re-dispatched with
  capped exponential backoff and a replacement worker is spawned;
* **hung workers** — every chunk a worker finishes is a heartbeat; a
  lease with no heartbeat for ``heartbeat_timeout_s`` is presumed hung,
  the worker is SIGKILLed, and the span is re-dispatched;
* **stragglers** — once no undispatched work remains, in-flight spans
  that have taken disproportionately long are speculatively duplicated
  onto idle workers; whichever copy finishes first completes the span
  (duplicate writes are byte-identical, so the race is benign);
* **interruption** — with a :class:`~repro.cache.SweepCheckpoint`
  attached, every completed span is flushed to a shard file; a killed
  sweep resumes by evaluating only the missing spans.

Bit-identity with the serial sweep is preserved through all of this
because spans live on the serial chunk grid (see
:mod:`repro.parallel.partition`): re-executing or duplicating a span
rewrites the same bytes at the same offsets.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, shared_memory
from multiprocessing.connection import wait as connection_wait
from statistics import median
from typing import TYPE_CHECKING

import numpy as np

from repro.core.capacity import capacity_per_type
from repro.errors import ConfigurationError, ReproError
from repro.obs.metrics import global_registry
from repro.obs.profile import get_store
from repro.obs.trace import get_tracer
from repro.parallel.faults import FaultPlan
from repro.parallel.partition import (
    TASKS_PER_WORKER,
    missing_ranges,
    partition_chunks,
    partition_ranges,
)
from repro.parallel.worker import worker_main

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache import SweepCheckpoint
    from repro.core.configspace import ConfigurationSpace

__all__ = [
    "SupervisorConfig",
    "SweepError",
    "SweepInterrupted",
    "SweepStats",
    "evaluate_parallel",
    "evaluate_resilient",
]


class SweepError(ReproError):
    """The sweep could not complete (a span exhausted its retries)."""


class SweepInterrupted(ReproError):
    """The sweep stopped early on purpose; checkpointed spans persist.

    Raised by the ``stop_after_spans`` test/ops hook so interruption is
    exercisable deterministically; the checkpoint directory is left
    intact for a later ``--resume``.
    """

    def __init__(self, message: str, *, spans_completed: int):
        super().__init__(message)
        self.spans_completed = spans_completed


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Failure-handling knobs of one supervised sweep."""

    #: A lease with no heartbeat for this long is presumed hung; the
    #: worker is killed and the span re-dispatched.
    heartbeat_timeout_s: float = 60.0
    #: Supervisor wakeup interval (event wait timeout).
    poll_interval_s: float = 0.05
    #: Re-dispatch attempts per span before the sweep aborts.
    max_span_retries: int = 4
    #: First re-dispatch delay; doubles per retry up to the cap.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 5.0
    #: An in-flight span is duplicated onto an idle worker once its age
    #: exceeds ``straggler_factor ×`` the median completed-span time
    #: (but never sooner than ``straggler_min_s``).
    straggler_factor: float = 3.0
    straggler_min_s: float = 1.0
    #: How long shutdown waits for workers to drain their sentinel
    #: before SIGKILLing them (a duplicated straggler may still be
    #: grinding on a span someone else already finished).
    shutdown_grace_s: float = 2.0
    #: Test/ops hook: raise :class:`SweepInterrupted` after this many
    #: span completions (checkpoint shards are kept).
    stop_after_spans: int | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0 or self.poll_interval_s <= 0:
            raise ConfigurationError("timeouts must be positive")
        if self.max_span_retries < 0:
            raise ConfigurationError("max_span_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.straggler_factor < 1.0:
            raise ConfigurationError("straggler_factor must be >= 1")


@dataclass(slots=True)
class SweepStats:
    """What a supervised sweep actually did — surfaced for ops/metrics."""

    spans_total: int = 0
    spans_resumed: int = 0
    spans_evaluated: int = 0
    spans_duplicated: int = 0
    workers_spawned: int = 0
    workers_lost: int = 0
    retries: int = 0
    wall_s: float = 0.0
    #: Fused frontier-candidate rows harvested by the sweep (ascending,
    #: global 0-based), or ``None`` when collection was off.  Carried on
    #: the stats object so the ``evaluate_resilient`` return shape stays
    #: a 3-tuple; deliberately excluded from :meth:`to_dict`.
    frontier_candidates: "np.ndarray | None" = None

    def to_dict(self) -> dict:
        return {
            "spans_total": self.spans_total,
            "spans_resumed": self.spans_resumed,
            "spans_evaluated": self.spans_evaluated,
            "spans_duplicated": self.spans_duplicated,
            "workers_spawned": self.workers_spawned,
            "workers_lost": self.workers_lost,
            "retries": self.retries,
            "wall_s": round(self.wall_s, 4),
        }


@dataclass(slots=True)
class _Span:
    span_id: int
    start: int
    stop: int
    retries: int = 0
    duplicated: bool = False
    leased_at: float = 0.0
    last_beat: float = 0.0
    holders: set = field(default_factory=set)


class _Worker:
    __slots__ = ("worker_id", "process", "conn", "span_id")

    def __init__(self, worker_id: int, process: Process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.span_id: int | None = None  # currently leased span


class _Supervisor:
    """One sweep's scheduling state machine (single-threaded, event-driven)."""

    def __init__(self, space: "ConfigurationSpace", w: np.ndarray,
                 prices: np.ndarray, *, workers: int, chunk_size: int,
                 checkpoint: "SweepCheckpoint | None",
                 faults: FaultPlan | None, config: SupervisorConfig,
                 cap_view: np.ndarray, cost_view: np.ndarray,
                 cap_name: str, cost_name: str,
                 collect_candidates: bool = True):
        self.space = space
        self.w = w
        self.prices = prices
        self.target_workers = workers
        self.chunk_size = chunk_size
        self.checkpoint = checkpoint
        self.faults = faults
        self.config = config
        self.cap_view = cap_view
        self.cost_view = cost_view
        self.cap_name = cap_name
        self.cost_name = cost_name

        # Captured once: the open span workers should parent their
        # records on (None when tracing is off, so workers skip timing).
        ctx = get_tracer().current_context()
        self.trace_ctx = None if ctx is None else ctx.to_tuple()

        self.collect_candidates = collect_candidates
        #: span start → that span's fused frontier-candidate rows
        #: (resumed spans included); assembled after the run.
        self.span_candidates: dict[int, np.ndarray] = {}
        self.stats = SweepStats()
        self.spans: dict[int, _Span] = {}
        self.pending: deque[int] = deque()
        self.delayed: list[tuple[float, int]] = []
        self.completed: set[int] = set()
        self.durations: list[float] = []
        self.workers: list[_Worker] = []
        self.next_worker_id = 0

    # -- setup -----------------------------------------------------------------

    def plan_spans(self) -> None:
        """Load checkpointed spans and partition the remainder."""
        total = self.space.size
        resumed: list[tuple[int, int]] = []
        if self.checkpoint is not None:
            self.checkpoint.ensure()
            resumed = self.checkpoint.load_into(self.cap_view, self.cost_view)
        self.stats.spans_resumed = len(resumed)
        if self.collect_candidates:
            for start, stop in resumed:
                rows = self.checkpoint.load_candidates(start, stop)
                if rows is None:
                    # Shard predates candidate files (or its candidate
                    # file is corrupt): recompute from the restored
                    # values — cheap relative to re-evaluating the span,
                    # and identical because candidates are a pure
                    # function of the (bit-identical) value slices.
                    from repro.core.sweepkernel import \
                        frontier_candidates_from_values

                    rows = frontier_candidates_from_values(
                        self.cap_view[start - 1:stop - 1],
                        self.cost_view[start - 1:stop - 1],
                        start - 1, chunk_size=self.chunk_size)
                self.span_candidates[start] = rows
        if resumed:
            gaps = missing_ranges(resumed, total)
            spans = partition_ranges(
                gaps, self.chunk_size,
                self.target_workers * TASKS_PER_WORKER)
        else:
            spans = partition_chunks(
                total, self.chunk_size,
                self.target_workers * TASKS_PER_WORKER)
        for span_id, (start, stop) in enumerate(spans):
            self.spans[span_id] = _Span(span_id, start, stop)
            self.pending.append(span_id)
        self.stats.spans_total = self.stats.spans_resumed + len(spans)

    def spawn_worker(self) -> _Worker:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        parent_conn, child_conn = Pipe(duplex=True)
        process = Process(
            target=worker_main,
            args=(worker_id, child_conn, self.cap_name, self.cost_name,
                  self.space.size, self.chunk_size, self.space.strides,
                  self.space.radices, self.w, self.prices, self.faults,
                  self.collect_candidates),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(worker_id, process, parent_conn)
        self.workers.append(worker)
        self.stats.workers_spawned += 1
        return worker

    # -- scheduling ------------------------------------------------------------

    def _work_remains(self) -> bool:
        return len(self.completed) < len(self.spans)

    def _promote_delayed(self, now: float) -> None:
        ready = [item for item in self.delayed if item[0] <= now]
        if ready:
            self.delayed = [item for item in self.delayed if item[0] > now]
            for _, span_id in sorted(ready):
                self.pending.append(span_id)

    def _assign(self, worker: _Worker, span_id: int, now: float) -> None:
        span = self.spans[span_id]
        try:
            worker.conn.send((span_id, span.start, span.stop,
                              self.trace_ctx))
        except (BrokenPipeError, OSError):
            # The worker died between liveness checks; the span stays
            # pending and the death is handled on the next health pass.
            self.pending.appendleft(span_id)
            return
        worker.span_id = span_id
        span.holders.add(worker.worker_id)
        span.leased_at = now
        span.last_beat = now

    def _dispatch(self, now: float) -> None:
        for worker in self.workers:
            if not self.pending:
                break
            if worker.span_id is None and worker.process.is_alive():
                span_id = self.pending.popleft()
                if span_id in self.completed:
                    continue
                self._assign(worker, span_id, now)

    def _straggler_threshold(self) -> float:
        if not self.durations:
            return self.config.heartbeat_timeout_s
        return max(self.config.straggler_min_s,
                   self.config.straggler_factor * median(self.durations))

    def _duplicate_stragglers(self, now: float) -> None:
        """Speculatively re-dispatch slow in-flight spans onto idle workers."""
        if self.pending or self.delayed:
            return
        idle = [worker for worker in self.workers
                if worker.span_id is None and worker.process.is_alive()]
        if not idle:
            return
        threshold = self._straggler_threshold()
        laggards = sorted(
            (span for span in self.spans.values()
             if span.span_id not in self.completed and span.holders
             and not span.duplicated
             and now - span.leased_at > threshold),
            key=lambda span: span.leased_at)
        for worker, span in zip(idle, laggards):
            span.duplicated = True
            self.stats.spans_duplicated += 1
            self._assign(worker, span.span_id, now)

    # -- event handling --------------------------------------------------------

    def _handle_message(self, worker: _Worker, message: tuple,
                        now: float) -> None:
        kind = message[0]
        if kind == "lease":
            _, _, span_id = message
            if span_id in self.spans:
                self.spans[span_id].last_beat = now
        elif kind == "chunk":
            _, _, span_id, _ = message
            if span_id in self.spans:
                self.spans[span_id].last_beat = now
        elif kind == "profile":
            self._absorb_profile(message[2])
        elif kind == "done":
            _, worker_id, span_id, records, candidates = message
            tracer = get_tracer()
            for record in records:  # even a losing duplicate did real work
                tracer.record_raw(record)
            if worker.span_id == span_id:
                worker.span_id = None
            span = self.spans.get(span_id)
            if span is None:
                return
            span.holders.discard(worker_id)
            if span_id in self.completed:
                return  # a duplicate finished second; nothing left to do
            self.completed.add(span_id)
            self.stats.spans_evaluated += 1
            self.durations.append(now - span.leased_at)
            if self.collect_candidates and candidates is not None:
                self.span_candidates[span.start] = candidates
            if self.checkpoint is not None:
                self.checkpoint.write_span(
                    span.start, span.stop,
                    self.cap_view[span.start - 1:span.stop - 1],
                    self.cost_view[span.start - 1:span.stop - 1],
                    candidates=candidates)
            stop_after = self.config.stop_after_spans
            if stop_after is not None and \
                    self.stats.spans_evaluated >= stop_after and \
                    self._work_remains():
                raise SweepInterrupted(
                    f"sweep stopped after {self.stats.spans_evaluated} "
                    f"span(s) as requested",
                    spans_completed=self.stats.spans_evaluated)

    def _absorb_profile(self, record: dict) -> None:
        """Fold one worker's cProfile table into the process store/trace."""
        get_store().add(record.get("phase", "sweep.worker"),
                        record.get("rows", []))
        get_tracer().record_raw(record)

    def _drain_events(self) -> None:
        conns = {worker.conn: worker for worker in self.workers
                 if not worker.conn.closed}
        if not conns:
            time.sleep(self.config.poll_interval_s)
            return
        for conn in connection_wait(list(conns),
                                    timeout=self.config.poll_interval_s):
            worker = conns[conn]
            try:
                while conn.poll():
                    self._handle_message(worker, conn.recv(),
                                         time.monotonic())
            except (EOFError, OSError):
                pass  # liveness check below reaps the worker

    # -- failure handling ------------------------------------------------------

    def _requeue(self, span: _Span, now: float) -> None:
        span.retries += 1
        span.duplicated = False  # a retried span may straggle again
        self.stats.retries += 1
        if span.retries > self.config.max_span_retries:
            raise SweepError(
                f"span [{span.start}, {span.stop}) failed "
                f"{span.retries} times; giving up")
        delay = min(self.config.backoff_base_s * 2 ** (span.retries - 1),
                    self.config.backoff_cap_s)
        if delay > 0:
            self.delayed.append((now + delay, span.span_id))
        else:
            self.pending.append(span.span_id)

    def _reap(self, worker: _Worker, now: float) -> None:
        """Handle one dead (or killed) worker: requeue, replace, close."""
        self.workers.remove(worker)
        self.stats.workers_lost += 1
        worker.process.join(timeout=1.0)
        worker.conn.close()
        span_id = worker.span_id
        if span_id is not None and span_id not in self.completed:
            span = self.spans[span_id]
            span.holders.discard(worker.worker_id)
            if not span.holders:  # no duplicate still running it
                self._requeue(span, now)
        if self._work_remains() and len(self.workers) < self.target_workers:
            self.spawn_worker()

    def _check_health(self, now: float) -> None:
        for worker in list(self.workers):
            if not worker.process.is_alive():
                self._reap(worker, now)
                continue
            if worker.span_id is not None:
                span = self.spans[worker.span_id]
                if now - span.last_beat > self.config.heartbeat_timeout_s:
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
                    self._reap(worker, now)

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> None:
        self.plan_spans()
        if not self._work_remains():
            return
        for _ in range(min(self.target_workers, len(self.spans))):
            self.spawn_worker()
        try:
            while self._work_remains():
                now = time.monotonic()
                self._promote_delayed(now)
                self._dispatch(now)
                self._duplicate_stragglers(now)
                self._drain_events()
                self._check_health(time.monotonic())
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + self.config.shutdown_grace_s
        for worker in self.workers:
            worker.process.join(timeout=max(0.0,
                                            deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:  # drain parting messages (profile tables arrive here)
                while worker.conn.poll():
                    message = worker.conn.recv()
                    if message and message[0] == "profile":
                        self._absorb_profile(message[2])
            except (EOFError, OSError):
                pass
            worker.conn.close()
        self.workers.clear()


def evaluate_resilient(space: "ConfigurationSpace",
                       capacities_gips: np.ndarray,
                       *,
                       workers: int,
                       chunk_size: int,
                       checkpoint: "SweepCheckpoint | None" = None,
                       faults: FaultPlan | None = None,
                       config: SupervisorConfig | None = None,
                       collect_candidates: bool = True,
                       ) -> tuple[np.ndarray, np.ndarray, SweepStats]:
    """Supervised sweep: survives worker loss, resumes from checkpoints.

    Returns ``(capacity_gips, unit_cost_per_hour, stats)`` — the arrays
    bit-identical to the serial sweep.  ``workers`` may be 1 (a single
    supervised worker still gets liveness checks and checkpointing).

    With ``collect_candidates`` (the default) each worker also harvests
    its spans' local Pareto candidate rows; the merged, ascending result
    lands in ``stats.frontier_candidates`` (resumed spans contribute
    their checkpointed candidates, recomputed from the restored values
    when the shard predates candidate files).
    """
    if workers < 1:
        raise ConfigurationError("supervised evaluation needs >= 1 worker")
    config = config or SupervisorConfig()
    if checkpoint is not None and checkpoint.chunk_size != chunk_size:
        raise ConfigurationError(
            f"checkpoint chunk size {checkpoint.chunk_size} does not match "
            f"sweep chunk size {chunk_size}")
    w = np.ascontiguousarray(capacity_per_type(capacities_gips))
    total = space.size
    t0 = time.perf_counter()

    with get_tracer().span("sweep.supervised",
                           {"workers": workers, "chunk_size": chunk_size,
                            "size": total}):
        cap_shm = shared_memory.SharedMemory(create=True, size=total * 8)
        cost_shm = shared_memory.SharedMemory(create=True, size=total * 8)
        cap_view = cost_view = supervisor = None
        try:
            cap_view = np.ndarray((total,), dtype=np.float64,
                                  buffer=cap_shm.buf)
            cost_view = np.ndarray((total,), dtype=np.float64,
                                   buffer=cost_shm.buf)
            supervisor = _Supervisor(
                space, w, space.catalog.prices, workers=workers,
                chunk_size=chunk_size, checkpoint=checkpoint, faults=faults,
                config=config, cap_view=cap_view, cost_view=cost_view,
                cap_name=cap_shm.name, cost_name=cost_shm.name,
                collect_candidates=collect_candidates)
            supervisor.run()
            stats = supervisor.stats
            capacity = cap_view.copy()
            unit_cost = cost_view.copy()
            if collect_candidates:
                # Spans are disjoint and each span's rows are ascending,
                # so concatenating in span-start order is globally sorted.
                parts = [supervisor.span_candidates[s]
                         for s in sorted(supervisor.span_candidates)]
                stats.frontier_candidates = (
                    np.concatenate(parts) if parts
                    else np.empty(0, dtype=np.int64))
        finally:
            # Every ndarray export must be dropped before the segments can
            # unmap — including the supervisor's references, which outlive
            # an exception raised inside run().
            if supervisor is not None:
                supervisor.cap_view = supervisor.cost_view = None
            cap_view = cost_view = None
            for shm in (cap_shm, cost_shm):
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - stray export
                    pass
                shm.unlink()
    stats.wall_s = time.perf_counter() - t0
    _record_sweep_metrics(stats)
    return capacity, unit_cost, stats


def _record_sweep_metrics(stats: SweepStats) -> None:
    """Publish one sweep's outcome to the process-global registry."""
    registry = global_registry()
    registry.counter("sweep_runs_total").increment()
    registry.counter("sweep_spans_evaluated_total").increment(
        stats.spans_evaluated)
    registry.counter("sweep_spans_resumed_total").increment(
        stats.spans_resumed)
    registry.counter("sweep_spans_duplicated_total").increment(
        stats.spans_duplicated)
    registry.counter("sweep_workers_spawned_total").increment(
        stats.workers_spawned)
    registry.counter("sweep_workers_lost_total").increment(
        stats.workers_lost)
    registry.counter("sweep_retries_total").increment(stats.retries)
    registry.histogram("sweep_wall_s").observe(stats.wall_s)


def evaluate_parallel(space: "ConfigurationSpace",
                      capacities_gips: np.ndarray,
                      *,
                      workers: int,
                      chunk_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the whole space with ``workers`` processes.

    The PR-1 entry point, now backed by the fault-tolerant supervisor:
    same signature, same bit-identical ``(capacity, unit_cost)`` result,
    but a crashed or hung worker no longer kills the sweep.
    """
    if workers < 2:
        raise ConfigurationError("parallel evaluation needs >= 2 workers")
    capacity, unit_cost, _ = evaluate_resilient(
        space, capacities_gips, workers=workers, chunk_size=chunk_size)
    return capacity, unit_cost
