"""Process-parallel, fault-tolerant configuration-space evaluation.

The full-space sweep (``ConfigurationSpace.evaluate``) is embarrassingly
parallel: every linear index decodes and reduces independently, and the
two outputs are disjoint writes.  This package partitions the index
range ``1..S`` into chunk-aligned *spans* and fans them out to worker
processes that write decoded-chunk reductions directly into
``multiprocessing.shared_memory``-backed float64 arrays, so no result
pickling or concatenation happens on the way back.

Since PR 3 the fan-out is supervised rather than pooled
(:mod:`repro.parallel.supervisor`): per-span leases, chunk-level
heartbeats, crash/hang detection with capped-exponential-backoff
re-dispatch, speculative straggler duplication, and shard-level
checkpointing via :class:`repro.cache.SweepCheckpoint` — so a sweep
survives worker loss and an interrupted sweep resumes from its
completed spans.  A deterministic fault harness
(:mod:`repro.parallel.faults`) drives the failure paths in tests and
``benchmarks/bench_faults.py``.

Bit-identity with the serial path is guaranteed by construction: worker
spans are aligned to the *same* chunk grid the serial loop uses, so
every chunk is decoded into an identical ``(k, M)`` int16 matrix and
reduced by an identical matmul — each output row is the same
floating-point reduction regardless of which process computed it, how
often it was retried, or whether it was restored from a shard.
"""

from repro.parallel.faults import FAULT_KINDS, FaultPlan, WorkerFault
from repro.parallel.partition import (
    AUTO_WORKERS_THRESHOLD,
    TASKS_PER_WORKER,
    available_workers,
    missing_ranges,
    partition_chunks,
    partition_ranges,
    resolve_workers,
)
from repro.parallel.supervisor import (
    SupervisorConfig,
    SweepError,
    SweepInterrupted,
    SweepStats,
    evaluate_parallel,
    evaluate_resilient,
)

__all__ = [
    "AUTO_WORKERS_THRESHOLD",
    "FAULT_KINDS",
    "FaultPlan",
    "SupervisorConfig",
    "SweepError",
    "SweepInterrupted",
    "SweepStats",
    "TASKS_PER_WORKER",
    "WorkerFault",
    "available_workers",
    "evaluate_parallel",
    "evaluate_resilient",
    "missing_ranges",
    "partition_chunks",
    "partition_ranges",
    "resolve_workers",
]
