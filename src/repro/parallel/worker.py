"""Sweep worker process: lease spans, decode chunks, heartbeat progress.

Each worker owns one duplex pipe to the supervisor.  The protocol is
a handful of tiny tuples, every one small enough for an atomic pipe
write:

* supervisor → worker: ``(span_id, start, stop, trace_ctx)`` — lease
  one span (``trace_ctx`` is a ``(trace_id, parent_span_id)`` pair when
  the supervisor is being traced, else ``None``) — or ``None`` — drain
  and exit;
* worker → supervisor: ``("lease", worker_id, span_id)`` on pickup,
  ``("chunk", worker_id, span_id, c_stop)`` after every chunk (the
  heartbeat), ``("done", worker_id, span_id, records, candidates)`` on
  completion (``records`` holds the worker-side trace spans, empty when
  tracing is off; ``candidates`` the span's fused frontier-candidate
  rows, ``None`` when candidate collection is off), and
  ``("profile", worker_id, record)`` once at drain if ``CELIA_PROFILE``
  asked for profiling.

Evaluation results never travel over the pipe: chunks are reduced
straight into the two shared-memory float64 arrays, at the same offsets
and through the same :class:`~repro.core.sweepkernel.ChunkKernel`
reductions as the serial loop, so any worker (or any two workers,
racing on a duplicated span) writes byte-identical output.  Frontier
candidates are the one exception — a few hundred int64 rows per span,
derived deterministically from the (identical) evaluated values, so
duplicated spans ship identical candidate lists and the race stays
benign.  Tracing and profiling only ever *observe* — they time the
chunk loop and sample the interpreter around it, never touch the
arrays, so results stay bit-identical with observability on or off.
"""

from __future__ import annotations

import os
import time
from multiprocessing import shared_memory

import numpy as np

from repro.obs.profile import profiling_enabled, top_functions
from repro.obs.trace import SpanContext, make_span_record
from repro.parallel.faults import FaultClock, FaultPlan

__all__ = ["attach_shared", "worker_main"]


def attach_shared(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    Python < 3.13 registers every attach with the resource tracker, which
    would either unlink the segment when a worker exits (spawn) or cancel
    the parent's registration on explicit unregister (fork, where the
    tracker's name set is shared).  Suppressing registration during the
    attach keeps the parent the sole owner under both start methods.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:  # pragma: no cover - tracker API is CPython-internal
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def worker_main(worker_id: int, conn, cap_name: str, cost_name: str,
                total: int, chunk_size: int, strides: np.ndarray,
                radices: np.ndarray, capacities: np.ndarray,
                prices: np.ndarray, fault_plan: FaultPlan | None,
                collect_candidates: bool = True) -> None:
    """Entry point of one sweep worker process."""
    from repro.core.sweepkernel import ChunkKernel

    clock = FaultClock(fault_plan, worker_id)
    profiler = None
    if profiling_enabled():
        import cProfile

        profiler = cProfile.Profile()
    cap_shm = attach_shared(cap_name)
    cost_shm = attach_shared(cost_name)
    try:
        capacity = np.ndarray((total,), dtype=np.float64, buffer=cap_shm.buf)
        unit_cost = np.ndarray((total,), dtype=np.float64, buffer=cost_shm.buf)
        kernel = ChunkKernel(strides, radices, capacities, prices,
                             max_chunk=min(chunk_size, total))
        span_ordinal = 0
        while True:
            task = conn.recv()
            if task is None:
                if profiler is not None:
                    conn.send(("profile", worker_id, {
                        "kind": "profile", "phase": "sweep.worker",
                        "pid": os.getpid(),
                        "rows": top_functions(profiler)}))
                break
            span_id, start, stop, trace_ctx = task
            conn.send(("lease", worker_id, span_id))
            t_wall = time.time()
            t_perf = time.perf_counter()
            t_cpu = time.process_time()
            if profiler is not None:
                profiler.enable()
            chunk_ordinal = 0
            cand_parts: list[np.ndarray] = []
            for c_start in range(start, stop, chunk_size):
                clock.before_chunk(span_ordinal, chunk_ordinal)
                c_stop = min(c_start + chunk_size, stop)
                cap_slice = capacity[c_start - 1:c_stop - 1]
                cost_slice = unit_cost[c_start - 1:c_stop - 1]
                kernel.evaluate_into(c_start, c_stop, cap_slice, cost_slice)
                if collect_candidates:
                    cand_parts.append(kernel.frontier_candidates(
                        c_start, cap_slice, cost_slice))
                conn.send(("chunk", worker_id, span_id, c_stop))
                chunk_ordinal += 1
            if profiler is not None:
                profiler.disable()
            records = []
            if trace_ctx is not None:
                records.append(make_span_record(
                    "sweep.span", SpanContext.from_tuple(trace_ctx),
                    start_s=t_wall,
                    wall_s=time.perf_counter() - t_perf,
                    cpu_s=time.process_time() - t_cpu,
                    attrs={"worker": worker_id, "start": start,
                           "stop": stop, "chunks": chunk_ordinal}))
            candidates = None
            if collect_candidates:
                candidates = (np.concatenate(cand_parts) if cand_parts
                              else np.empty(0, dtype=np.int64))
            conn.send(("done", worker_id, span_id, records, candidates))
            span_ordinal += 1
            clock.drop_span(span_ordinal)
    except (EOFError, BrokenPipeError, OSError):
        pass  # supervisor went away; nothing useful left to do
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        pass
    finally:
        try:  # release buffer exports before close()
            del capacity, unit_cost
        except NameError:  # pragma: no cover - attach failed before views
            pass
        for shm in (cap_shm, cost_shm):
            try:
                shm.close()
            except Exception:  # pragma: no cover - process is exiting anyway
                pass
        conn.close()
