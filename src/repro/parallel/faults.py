"""Deterministic fault injection for the supervised space sweep.

A :class:`FaultPlan` is a picklable list of :class:`WorkerFault`
directives shipped to every sweep worker.  Each directive targets one
worker id and fires at an exact point in that worker's life — the
``at_span``-th span it leases (0-based, counting only spans *that
worker* started) and the ``at_chunk``-th chunk within it — so a test or
benchmark reproduces the same failure at the same place on every run,
on any machine.

Three kinds model the failure modes a preemptible fleet actually shows:

* ``kill`` — the worker SIGKILLs itself mid-span (preemption, OOM kill);
* ``hang`` — the worker stops making progress and stops heartbeating,
  but its process stays alive (NFS stall, deadlock);
* ``slow`` — the worker keeps working but each chunk takes ``delay_s``
  longer (noisy neighbour, thermal throttling) — the straggler case.

The plan is inert in production: :func:`repro.parallel.evaluate_resilient`
defaults to ``faults=None`` and ships no directives.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["FAULT_KINDS", "FaultPlan", "WorkerFault"]

FAULT_KINDS = ("kill", "hang", "slow")

#: How long a hung worker sleeps per wakeup; it never exits on its own —
#: the supervisor's heartbeat timeout is what ends it.
_HANG_NAP_S = 0.2


@dataclass(frozen=True, slots=True)
class WorkerFault:
    """One deterministic failure directive for one worker."""

    worker_id: int
    kind: str
    at_span: int = 0
    at_chunk: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.worker_id < 0 or self.at_span < 0 or self.at_chunk < 0:
            raise ConfigurationError("fault coordinates must be >= 0")
        if self.kind == "slow" and self.delay_s <= 0:
            raise ConfigurationError("slow faults need a positive delay_s")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, picklable set of worker faults."""

    faults: tuple[WorkerFault, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def kill_worker(cls, worker_id: int, *, at_span: int = 0,
                    at_chunk: int = 0) -> "FaultPlan":
        return cls((WorkerFault(worker_id, "kill", at_span, at_chunk),))

    @classmethod
    def hang_worker(cls, worker_id: int, *, at_span: int = 0,
                    at_chunk: int = 0) -> "FaultPlan":
        return cls((WorkerFault(worker_id, "hang", at_span, at_chunk),))

    @classmethod
    def slow_worker(cls, worker_id: int, delay_s: float, *, at_span: int = 0,
                    at_chunk: int = 0) -> "FaultPlan":
        return cls((WorkerFault(worker_id, "slow", at_span, at_chunk,
                                delay_s),))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    def for_worker(self, worker_id: int) -> tuple[WorkerFault, ...]:
        return tuple(f for f in self.faults if f.worker_id == worker_id)


class FaultClock:
    """Worker-side interpreter of a :class:`FaultPlan`.

    Called before every chunk with the worker-local span ordinal and the
    chunk ordinal within the span; fires each matching directive exactly
    once (``kill`` and ``hang`` never return).
    """

    def __init__(self, plan: FaultPlan | None, worker_id: int):
        self._pending = list(plan.for_worker(worker_id)) if plan else []

    def before_chunk(self, span_ordinal: int, chunk_ordinal: int) -> None:
        if not self._pending:
            return
        for fault in list(self._pending):
            if fault.at_span != span_ordinal:
                continue
            if fault.kind == "slow":
                if chunk_ordinal >= fault.at_chunk:
                    time.sleep(fault.delay_s)
                continue
            if fault.at_chunk != chunk_ordinal:
                continue
            self._pending.remove(fault)
            if fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if fault.kind == "hang":  # stop progressing, stay alive
                while True:
                    time.sleep(_HANG_NAP_S)

    def drop_span(self, span_ordinal: int) -> None:
        """Retire slow directives once their span is over."""
        self._pending = [f for f in self._pending
                         if not (f.kind == "slow" and f.at_span < span_ordinal)]
