"""Benchmark mixed on-demand+spot purchasing against pure on-demand.

Runs galaxy(65536, 8000) under a 40 h / $400 envelope through every
chaos scenario with three purchasing modes (on-demand, all-spot, mixed)
over several seeds, recording deadline-hit-rate, mean cost and the spot
share of the bill per cell.  Each cell is executed twice with identical
seeds and asserted byte-identical, and the report itself asserts the
subsystem's acceptance criteria:

* the mixed plan is cheaper than all-on-demand in aggregate,
* at an equal-or-better deadline-hit rate across the catalog,
* with zero budget overruns anywhere.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_spot.py [--quick]
        [--trials N] [--output PATH]

``--quick`` drops to one trial per cell for the CI benchmark-smoke job.
Results land in ``BENCH_spot.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.apps import application_by_name
from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.experiments.spot_exp import MODES, PROBLEM, run_cell
from repro.runtime import scenario_names

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_spot.json"

QUOTA = 2
SEED = 42
TRIALS = 2
QUICK_TRIALS = 1


def bench_cell(celia: Celia, app, scenario: str, mode: str, *,
               trials: int) -> dict:
    t0 = time.perf_counter()
    outcome = run_cell(celia, app, scenario, mode, seed=SEED, trials=trials)
    wall = time.perf_counter() - t0
    replay = run_cell(celia, app, scenario, mode, seed=SEED, trials=trials)
    assert outcome == replay, \
        f"{scenario} ({mode}) replay with identical seeds diverged — " \
        f"determinism is broken"
    return {
        "scenario": scenario,
        "mode": mode,
        "trials": trials,
        "deadline_hits": outcome.deadline_hits,
        "deadline_hit_rate": round(outcome.hit_rate, 4),
        "mean_cost_dollars": round(outcome.mean_cost_dollars, 2),
        "mean_spot_cost_dollars": round(outcome.mean_spot_cost_dollars, 2),
        "spot_share": round(outcome.spot_share, 4),
        "spot_interruptions": outcome.spot_interruptions,
        "fallbacks": outcome.fallbacks,
        "budget_overruns": outcome.budget_overruns,
        "verdicts": list(outcome.verdicts),
        "deterministic_replay": True,
        "wall_s": round(wall, 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_TRIALS} trial per cell instead of "
                             f"{TRIALS} (CI smoke mode)")
    parser.add_argument("--trials", type=int, default=None,
                        help="override trials per (scenario, mode) cell")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()

    trials = args.trials or (QUICK_TRIALS if args.quick else TRIALS)
    celia = Celia(ec2_catalog(max_nodes_per_type=QUOTA), seed=SEED)
    app = application_by_name("galaxy", seed=SEED)
    print(f"galaxy({PROBLEM['n']}, {PROBLEM['a']}), "
          f"T'={PROBLEM['deadline_hours']:g} h, "
          f"C'=${PROBLEM['budget_dollars']:g}, quota {QUOTA}, "
          f"{trials} trial(s) per cell")

    t0 = time.perf_counter()
    celia.min_cost_index(app)  # warm the planning stack once, outside timing
    t_warm = time.perf_counter() - t0

    cells = []
    for scenario in scenario_names():
        for mode in MODES:
            cell = bench_cell(celia, app, scenario, mode, trials=trials)
            cells.append(cell)
            print(f"  {cell['scenario']:20s} {cell['mode']:10s} "
                  f"hit={cell['deadline_hit_rate']:.0%} "
                  f"${cell['mean_cost_dollars']:7.2f} "
                  f"spot=${cell['mean_spot_cost_dollars']:.2f} "
                  f"interrupts={cell['spot_interruptions']} "
                  f"[{cell['wall_s']:.3f}s]")

    def totals(mode: str) -> tuple[int, float]:
        rows = [c for c in cells if c["mode"] == mode]
        return (sum(c["deadline_hits"] for c in rows),
                sum(c["mean_cost_dollars"] for c in rows) / len(rows))

    od_hits, od_cost = totals("on-demand")
    mixed_hits, mixed_cost = totals("mixed")
    overruns = sum(c["budget_overruns"] for c in cells)

    # The subsystem's acceptance criteria, enforced on every run.
    assert mixed_cost < od_cost, \
        f"mixed (${mixed_cost:.2f}) must beat on-demand (${od_cost:.2f})"
    assert mixed_hits >= od_hits, \
        f"mixed deadline hits ({mixed_hits}) fell below on-demand ({od_hits})"
    assert overruns == 0, f"{overruns} budget overrun(s) — never acceptable"

    report = {
        "problem": dict(PROBLEM),
        "quota": QUOTA,
        "seed": SEED,
        "trials_per_cell": trials,
        "warm_build_s": round(t_warm, 4),
        "overall": {
            "ondemand_deadline_hits": od_hits,
            "mixed_deadline_hits": mixed_hits,
            "ondemand_mean_cost_dollars": round(od_cost, 2),
            "mixed_mean_cost_dollars": round(mixed_cost, 2),
            "mixed_saving_fraction": round(1.0 - mixed_cost / od_cost, 4),
            "budget_overruns": overruns,
        },
        "cells": cells,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"mixed vs on-demand: hits {mixed_hits} vs {od_hits}, "
          f"mean cost ${mixed_cost:.2f} vs ${od_cost:.2f} "
          f"({1.0 - mixed_cost / od_cost:.0%} cheaper), "
          f"{overruns} overruns")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
