"""Benchmark for the full ablations experiment (A1 + A2 + spot study)."""

from repro.experiments import ablations


def test_bench_ablations_experiment(benchmark, warm_ctx):
    result = benchmark.pedantic(ablations.run, args=(warm_ctx,), rounds=1,
                                iterations=1)
    gaps = {o.strategy: o.optimality_gap for o in result.search if o.found}
    benchmark.extra_info["search_gaps"] = {
        k: round(v, 4) for k, v in gaps.items()}
    benchmark.extra_info["spot_saving"] = round(
        result.spot.mean_saving_fraction, 2)
    benchmark.extra_info["spot_on_time"] = round(
        result.spot.on_time_probability, 2)
    assert gaps["exhaustive"] == 0.0


def test_bench_spot_simulation(benchmark, warm_ctx):
    """One Monte-Carlo spot run (price path + checkpointed progress)."""
    from repro.spot import CheckpointPolicy
    from repro.spot.execution import SpotRunConfig, simulate_spot_run

    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    demand = celia.demand_gi(app, 65_536, 6_000)
    answer = celia.min_cost_index(app).query(demand, 24.0)
    run = SpotRunConfig(
        configuration=answer.configuration,
        capacity_gips=answer.capacity_gips,
        demand_gi=demand,
        bid_fraction=0.5,
        policy=CheckpointPolicy.young(8.0),
    )
    outcome = benchmark(simulate_spot_run, run, warm_ctx.catalog, seed=3)
    assert outcome.cost_dollars > 0
