"""Benchmark the trace generator, the open-loop replayer, and capacity.

Three claims, asserted in-process on every run:

* **determinism** — the same :class:`~repro.loadgen.WorkloadConfig`
  yields byte-identical JSONL, both across two in-process generations
  and across a *fresh interpreter* (a subprocess regenerates the trace
  and must reproduce the exact bytes).  A trace that cannot be
  regenerated from its seed is not a reproducible experiment input;
* **replay health** — a multi-tenant trace replayed open-loop against a
  live two-worker fleet completes with zero non-shed errors, and its
  p99 (measured from *intended* arrival — no coordinated omission)
  stays under ``REPLAY_P99_BOUND_S`` (CI enforces it with
  ``compare_bench.py --require-max replay_p99_s=...``);
* **capacity selection** — the ``capacity`` experiment sweeps shard
  count x trace intensity and, for every intensity, either names the
  cheapest fleet size meeting the p99 SLO or proves none of the swept
  sizes does.  The full run's table is the committed
  ``BENCH_loadgen.json`` answer to "how many shards do I need?".

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_loadgen.py [--quick]
        [--output PATH]

Results land in ``BENCH_loadgen.json`` at the repository root.
``--quick`` (the CI smoke mode) keeps the determinism and replay
sections identical but shrinks the capacity sweep, storing it under
``capacity_quick`` so its cells are never ratio-compared against the
committed full-sweep baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_loadgen.json"

SEED = 20170843

#: Determinism + replay trace: identical in quick and full modes so the
#: committed baseline and the CI smoke report stay comparable.
TRACE_TENANTS = 6
TRACE_DURATION_S = 12.0
TRACE_MEAN_RPS = 15.0

#: The dedicated replay cell: a two-worker fleet, trace compressed 2x.
REPLAY_WORKERS = 2
REPLAY_TIME_SCALE = 2.0
REPLAY_P99_BOUND_S = 2.0

#: Full capacity sweep (the committed answer table).
SHARD_COUNTS = (1, 2, 3)
INTENSITIES_RPS = (20.0, 40.0, 80.0)
CAPACITY_DURATION_S = 8.0
SLO_P99_S = 0.5

#: Quick sweep (CI smoke): still 3 intensities, smaller everything.
QUICK_SHARD_COUNTS = (1, 2)
QUICK_INTENSITIES_RPS = (5.0, 10.0, 20.0)
QUICK_CAPACITY_DURATION_S = 3.0


def bench_determinism(report: dict) -> "WorkloadConfig":
    from repro.loadgen import WorkloadConfig, generate_trace

    config = WorkloadConfig(
        tenants=TRACE_TENANTS, duration_s=TRACE_DURATION_S,
        mean_rps=TRACE_MEAN_RPS, seed=SEED, name="bench")

    t0 = time.perf_counter()
    first = generate_trace(config).to_jsonl()
    generate_s = time.perf_counter() - t0
    second = generate_trace(config).to_jsonl()

    script = (
        "import sys\n"
        "from repro.loadgen import WorkloadConfig, generate_trace\n"
        f"cfg = WorkloadConfig(tenants={TRACE_TENANTS}, "
        f"duration_s={TRACE_DURATION_S}, mean_rps={TRACE_MEAN_RPS}, "
        f"seed={SEED}, name='bench')\n"
        "sys.stdout.write(generate_trace(cfg).to_jsonl())\n"
    )
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, check=True,
                          env={"PYTHONPATH": str(REPO_ROOT / "src"),
                               "PATH": "/usr/bin:/bin"})

    requests = first.count("\n") - 1  # minus the header line
    report["determinism"] = {
        "seed": SEED,
        "requests": requests,
        "trace_bytes": len(first.encode()),
        "generate_s": round(generate_s, 6),
        "in_process_identical": first == second,
        "subprocess_identical": proc.stdout == first,
    }
    if not (first == second and proc.stdout == first):
        raise SystemExit("FAIL: trace generation is not deterministic")
    print(f"determinism: {requests} requests, "
          f"{len(first.encode())} bytes, generated in {generate_s:.3f}s, "
          f"byte-identical in-process and across interpreters")
    return config


def bench_replay(report: dict, config) -> None:
    from repro.experiments.capacity_exp import _measure_cell
    from repro.loadgen import check_invariants, generate_trace

    trace = generate_trace(config)
    with tempfile.TemporaryDirectory(prefix="celia-bench-loadgen-") as cache:
        t0 = time.perf_counter()
        replay = asyncio.run(_measure_cell(
            trace, REPLAY_WORKERS, quota=config.quota, cache_dir=cache,
            timeout_s=60.0, time_scale=REPLAY_TIME_SCALE))
        cell_s = time.perf_counter() - t0

    problems = check_invariants(replay)
    report["replay"] = {
        "workers": REPLAY_WORKERS,
        "time_scale": REPLAY_TIME_SCALE,
        "requests": replay.requests,
        "ok": replay.ok,
        "shed": replay.shed,
        "errors": replay.errors,
        "availability": replay.availability,
        "offered_rps": round(replay.offered_rps, 3),
        "peak_inflight": replay.peak_inflight,
        "max_lag_s": round(replay.max_lag_s, 6),
        "replay_p50_s": round(replay.p50_s, 6),
        "replay_p99_s": round(replay.p99_s, 6),
        "burst_p99_s": round(replay.burst_p99_s, 6),
        "calm_p99_s": round(replay.calm_p99_s, 6),
        "cell_wall_s": round(cell_s, 3),
        "p99_bound_s": REPLAY_P99_BOUND_S,
        "invariant_violations": problems,
    }
    if problems:
        raise SystemExit(f"FAIL: replay report invariants: {problems}")
    if replay.errors:
        raise SystemExit(f"FAIL: {replay.errors} non-shed replay errors")
    if replay.p99_s > REPLAY_P99_BOUND_S:
        raise SystemExit(f"FAIL: replay p99 {replay.p99_s:.3f}s exceeds "
                         f"{REPLAY_P99_BOUND_S}s")
    print(f"replay: {replay.requests} requests on {REPLAY_WORKERS} workers "
          f"-> ok {replay.ok} shed {replay.shed} errors {replay.errors}, "
          f"p99 {replay.p99_s * 1e3:.1f}ms")


def bench_capacity(report: dict, quick: bool) -> None:
    from repro.experiments import capacity_exp
    from repro.experiments.common import ExperimentContext

    shard_counts = QUICK_SHARD_COUNTS if quick else SHARD_COUNTS
    intensities = QUICK_INTENSITIES_RPS if quick else INTENSITIES_RPS
    duration = QUICK_CAPACITY_DURATION_S if quick else CAPACITY_DURATION_S

    t0 = time.perf_counter()
    result = capacity_exp.run(
        ExperimentContext(seed=SEED),
        shard_counts=shard_counts, intensities_rps=intensities,
        duration_s=duration, slo_p99_s=SLO_P99_S)
    sweep_s = time.perf_counter() - t0

    answered = sum(1 for v in result.cheapest.values() if v is not None)
    section = {**result.to_series(),
               "sweep_wall_s": round(sweep_s, 3),
               "intensities_answered": answered}
    report["capacity_quick" if quick else "capacity"] = section
    if answered == 0:
        raise SystemExit("FAIL: no intensity has a feasible fleet size — "
                         "the capacity sweep answered nothing")
    print(result.render())


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shrink the capacity sweep")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT})")
    args = parser.parse_args(argv)

    report: dict = {
        "bench": "loadgen",
        "quick": args.quick,
        "seed": SEED,
        "trace": {"tenants": TRACE_TENANTS,
                  "duration_s": TRACE_DURATION_S,
                  "mean_rps": TRACE_MEAN_RPS},
        "slo_p99_s": SLO_P99_S,
    }
    config = bench_determinism(report)
    bench_replay(report, config)
    bench_capacity(report, args.quick)

    args.output.write_text(json.dumps(report, indent=1, sort_keys=True)
                           + "\n", encoding="utf-8")
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
