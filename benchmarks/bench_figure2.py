"""Benchmark E1 — Figure 2: demand measurement sweeps + shape fitting."""

import numpy as np

from repro.apps import GalaxyApp
from repro.experiments import figure2
from repro.measurement.baseline import measure_demand_grid
from repro.measurement.fitting import fit_separable_demand
from repro.measurement.perf import PerfCounter


def test_bench_figure2_full(benchmark, ctx):
    result = benchmark.pedantic(figure2.run, args=(ctx,), rounds=3,
                                iterations=1)
    assert len(result.panels) == 6
    benchmark.extra_info["shapes"] = {
        f"{p.app_name}-{p.axis}": p.fitted_kind for p in result.panels
    }


def test_bench_demand_grid_measurement(benchmark):
    app = GalaxyApp()
    perf = PerfCounter(seed=0)
    samples = benchmark(measure_demand_grid, app, perf)
    assert samples.demand_gi.shape == (4, 4)


def test_bench_separable_fit(benchmark):
    app = GalaxyApp()
    perf = PerfCounter(seed=0)
    samples = measure_demand_grid(app, perf)
    fitted = benchmark(fit_separable_demand, samples)
    assert fitted.grid_r2 > 0.999
    truth = app.demand_gi(65536, 8000)
    assert np.isclose(fitted.gi(65536, 8000), truth, rtol=0.05)
