"""Benchmark the closed-loop adaptive runtime against static execution.

Runs galaxy(65536, 8000) under a 40 h / $400 envelope through every
chaos scenario with both controllers (several seeds each), recording
deadline-hit-rate, mean cost and cost overrun per scenario plus the
wall-clock cost of the control loop itself.  Each cell is executed
twice with identical seeds and asserted byte-identical — the audit
trail's reproducibility guarantee, checked on every benchmark run.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--quick]
        [--trials N] [--output PATH]

``--quick`` drops to one trial per cell for the CI benchmark-smoke job.
Results land in ``BENCH_runtime.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.experiments.adaptive_exp import PROBLEM, run_cell
from repro.apps import application_by_name
from repro.runtime import scenario_names

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_runtime.json"

QUOTA = 2
SEED = 42
TRIALS = 3
QUICK_TRIALS = 1


def bench_cell(celia: Celia, app, scenario: str, *, adaptive: bool,
               trials: int) -> dict:
    t0 = time.perf_counter()
    outcome = run_cell(celia, app, scenario, adaptive=adaptive, seed=SEED,
                       trials=trials)
    wall = time.perf_counter() - t0
    replay = run_cell(celia, app, scenario, adaptive=adaptive, seed=SEED,
                      trials=trials)
    assert outcome == replay, \
        f"{scenario} ({'adaptive' if adaptive else 'static'}) replay with " \
        f"identical seeds diverged — determinism is broken"
    return {
        "scenario": scenario,
        "mode": "adaptive" if adaptive else "static",
        "trials": trials,
        "deadline_hits": outcome.deadline_hits,
        "deadline_hit_rate": round(outcome.hit_rate, 4),
        "mean_cost_dollars": round(outcome.mean_cost_dollars, 2),
        "mean_overrun_dollars": round(outcome.mean_overrun_dollars, 2),
        "mean_elapsed_hours": round(outcome.mean_elapsed_hours, 2),
        "replans": outcome.replans,
        "degradations": outcome.degradations,
        "verdicts": list(outcome.verdicts),
        "deterministic_replay": True,
        "wall_s": round(wall, 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_TRIALS} trial per cell instead of "
                             f"{TRIALS} (CI smoke mode)")
    parser.add_argument("--trials", type=int, default=None,
                        help="override trials per (scenario, mode) cell")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()

    trials = args.trials or (QUICK_TRIALS if args.quick else TRIALS)
    celia = Celia(ec2_catalog(max_nodes_per_type=QUOTA), seed=SEED)
    app = application_by_name("galaxy", seed=SEED)
    print(f"galaxy({PROBLEM['n']}, {PROBLEM['a']}), "
          f"T'={PROBLEM['deadline_hours']:g} h, "
          f"C'=${PROBLEM['budget_dollars']:g}, quota {QUOTA}, "
          f"{trials} trial(s) per cell")

    t0 = time.perf_counter()
    celia.min_cost_index(app)  # warm the planning stack once, outside timing
    t_warm = time.perf_counter() - t0

    cells = []
    for scenario in scenario_names():
        for adaptive in (False, True):
            cell = bench_cell(celia, app, scenario, adaptive=adaptive,
                              trials=trials)
            cells.append(cell)
            print(f"  {cell['scenario']:20s} {cell['mode']:8s} "
                  f"hit={cell['deadline_hit_rate']:.0%} "
                  f"${cell['mean_cost_dollars']:7.2f} "
                  f"overrun=${cell['mean_overrun_dollars']:.2f} "
                  f"[{cell['wall_s']:.3f}s]")

    static_hits = sum(c["deadline_hits"] for c in cells
                      if c["mode"] == "static")
    adaptive_hits = sum(c["deadline_hits"] for c in cells
                        if c["mode"] == "adaptive")
    total = sum(c["trials"] for c in cells if c["mode"] == "adaptive")
    report = {
        "problem": dict(PROBLEM),
        "quota": QUOTA,
        "seed": SEED,
        "trials_per_cell": trials,
        "warm_build_s": round(t_warm, 4),
        "overall": {
            "static_deadline_hits": static_hits,
            "adaptive_deadline_hits": adaptive_hits,
            "trials_per_mode": total,
        },
        "cells": cells,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"overall deadline hits: static {static_hits}/{total}, "
          f"adaptive {adaptive_hits}/{total}")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
