"""Benchmark E4 — Table IV: model validation.

Times the full validation (nine predictions + nine discrete-event
executions) and records the per-application maximum errors the paper
reports (its bar: <= ~17%).
"""

from repro.experiments import table4


def test_bench_table4_full_validation(benchmark, warm_ctx):
    result = benchmark.pedantic(table4.run, args=(warm_ctx,), rounds=3,
                                iterations=1)
    assert len(result.rows) == 9
    for app_name in ("x264", "galaxy", "sand"):
        error = result.max_error_for(app_name)
        benchmark.extra_info[f"max_error_{app_name}_pct"] = round(error, 1)
        assert error < 18.0


def test_bench_single_engine_run(benchmark, warm_ctx):
    """One galaxy validation execution on the discrete-event engine."""
    from repro.engine.runner import run_on_configuration

    app = warm_ctx.app("galaxy")
    report = benchmark(run_on_configuration, app, 65_536, 4_000,
                       (5, 5, 0, 0, 0, 0, 0, 0, 0), warm_ctx.catalog,
                       config=warm_ctx.engine_config, seed=1)
    assert report.time_hours > 0
