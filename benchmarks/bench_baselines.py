"""Benchmark A1/A2 — ablations: heuristics vs exhaustive search, and
spec-sheet vs measured capacity.

A1 records each baseline's optimality gap against the exhaustive optimum
on the paper's galaxy Figure 4 problem; A2 records how wrong the
frequency-only capacity estimate is per application (the paper's
justification for measurement-driven characterization).
"""

import numpy as np

from repro.baselines.comparison import compare_baselines
from repro.baselines.greedy import greedy_min_cost
from repro.baselines.specbound import spec_prediction_error


def test_bench_baseline_comparison(benchmark, warm_ctx):
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    capacities = celia.capacities(app)
    index = celia.min_cost_index(app)
    demand = celia.demand_gi(app, 65_536, 8_000)
    outcomes = benchmark.pedantic(
        compare_baselines,
        args=(warm_ctx.catalog, capacities, index, demand, 24.0),
        kwargs={"random_samples": 20_000, "seed": 0},
        rounds=3, iterations=1)
    for o in outcomes:
        benchmark.extra_info[f"gap_{o.strategy}"] = (
            round(o.optimality_gap, 4) if o.found else "not found")
    exhaustive = outcomes[0]
    assert exhaustive.optimality_gap == 0.0
    for o in outcomes[1:]:
        if o.found:
            assert o.optimality_gap >= -1e-9


def test_bench_greedy_heuristic(benchmark, warm_ctx):
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    capacities = celia.capacities(app)
    demand = celia.demand_gi(app, 65_536, 8_000)
    answer = benchmark(greedy_min_cost, warm_ctx.catalog, capacities,
                       demand, 24.0)
    optimal = celia.min_cost_index(app).query(demand, 24.0)
    benchmark.extra_info["greedy_gap"] = round(
        answer.cost_dollars / optimal.cost_dollars - 1, 4)


def test_bench_spec_capacity_error(benchmark, warm_ctx):
    """A2: per-app error of the spec-sheet capacity estimator."""
    celia = warm_ctx.celia
    for name, app in warm_ctx.apps.items():
        measured = celia.capacities(app)
        errors = spec_prediction_error(app, warm_ctx.catalog, measured)
        benchmark.extra_info[f"spec_error_{name}"] = (
            f"{errors.min():+.0%}..{errors.max():+.0%}")

    app = warm_ctx.app("galaxy")
    measured = celia.capacities(app)
    errors = benchmark(spec_prediction_error, app, warm_ctx.catalog,
                       measured)
    # Spec-frequency grossly over-promises for the low-IPC app.
    assert np.all(np.abs(errors) > 0.3)
