"""Benchmark the configuration-space hot paths at three space sizes.

Times, per space size (Table III catalog at quotas 2, 3 and 5 —
19,682 / 262,143 / 10,077,695 configurations):

* the full-space fused sweep, serial vs process-parallel
  (:meth:`ConfigurationSpace.evaluate` with ``workers``);
* Algorithm-1 selection, streamed vs the demand-invariant
  :class:`FrontierIndex` fast path (build cost amortized over queries),
  with the index built cold from the value arrays
  (``frontier_index_build_s``) and by merging the candidates the fused
  sweep already produced (``fused_frontier_build_s``);
* index-snapshot persistence: save, mmap'd load, and the end-to-end
  warm start (evaluation load + snapshot load — what a fresh
  ``celia serve`` process pays when the cache is primed).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_configspace.py [--quick]
        [--output PATH]

``--quick`` stops at quota 3 (the 10M-configuration quota-5 space takes
tens of seconds) — the mode the CI benchmark-smoke job runs and compares
against the committed baseline with ``compare_bench.py``.  Results land
in ``BENCH_configspace.json`` at the repository root, including the
machine's core count — the parallel speedup is only meaningful with
multiple cores available.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cache import EvaluationCache
from repro.cloud.catalog import ec2_catalog
from repro.core.configspace import ConfigurationSpace
from repro.core.selection import FrontierIndex, select_configurations
from repro.parallel import available_workers

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_configspace.json"

QUOTAS = (2, 3, 5)
QUICK_QUOTAS = (2, 3)
N_QUERIES = 10
#: Synthetic but realistic per-type capacities (GI/s).
CAPACITIES = np.linspace(2.0, 8.0, 9)


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def bench_evaluate(space, workers):
    serial, t_serial = _timed(space.evaluate, CAPACITIES)
    t_parallel = None
    if workers > 1:
        parallel, t_parallel = _timed(space.evaluate, CAPACITIES,
                                      workers=workers)
        assert serial.capacity_gips.tobytes() == \
            parallel.capacity_gips.tobytes(), "parallel sweep not bit-identical"
        assert serial.unit_cost_per_hour.tobytes() == \
            parallel.unit_cost_per_hour.tobytes()
    return serial, t_serial, t_parallel


def bench_select(evaluation):
    # Demands spanning light to heavy load against fixed constraints, so
    # queries hit empty, partial and near-full feasible sets.
    max_capacity = float(evaluation.capacity_gips.max())
    demands = np.geomspace(0.01, 10.0, N_QUERIES) * max_capacity * 3600.0
    deadline, budget = 24.0, 350.0

    t0 = time.perf_counter()
    streamed = [
        select_configurations(evaluation, float(d), deadline, budget,
                              method="streamed")
        for d in demands
    ]
    t_streamed = (time.perf_counter() - t0) / N_QUERIES

    # Cold build (no candidates: rescans the value arrays) vs the fused
    # build that merges the per-chunk candidates the sweep shipped back.
    index, t_build = _timed(FrontierIndex, evaluation)
    candidates = evaluation.frontier_candidates()
    t_fused = None
    if candidates is not None:
        fused, t_fused = _timed(FrontierIndex, evaluation,
                                candidates=candidates)
        assert fused.frontier_rows.tobytes() == \
            index.frontier_rows.tobytes(), "fused build not bit-identical"
    _, t_feasibility = _timed(index.ensure_feasibility)
    t0 = time.perf_counter()
    indexed = [
        index.select(float(d), deadline, budget) for d in demands
    ]
    t_indexed = (time.perf_counter() - t0) / N_QUERIES

    for a, b in zip(streamed, indexed):
        assert a.feasible_count == b.feasible_count, "paths disagree"
        assert [p.configuration for p in a.pareto] == \
            [p.configuration for p in b.pareto]
    return (t_streamed, t_build, t_fused, t_feasibility, t_indexed, index)


def bench_snapshot(space, evaluation, index):
    """Snapshot round-trip in a throwaway cache dir, plus the end-to-end
    warm start a fresh process pays: mmap the evaluation, mmap the index."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = EvaluationCache(tmp)
        cache.store(evaluation, CAPACITIES)
        _, t_save = _timed(cache.store_index, index, CAPACITIES)
        warm_eval, t_eval_load = _timed(cache.load, space, CAPACITIES)
        assert warm_eval is not None
        warm_index, t_load = _timed(cache.load_index, warm_eval, CAPACITIES)
        assert warm_index is not None, "snapshot did not round-trip"
        assert warm_index.frontier_rows.tobytes() == \
            index.frontier_rows.tobytes()
    return t_save, t_load, t_eval_load + t_load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"only quotas {QUICK_QUOTAS} (CI smoke mode)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()
    workers = available_workers()
    report = {
        "cpu_cores_available": workers,
        "queries_per_select_benchmark": N_QUERIES,
        "spaces": [],
    }
    for quota in (QUICK_QUOTAS if args.quick else QUOTAS):
        space = ConfigurationSpace(ec2_catalog(max_nodes_per_type=quota))
        print(f"quota {quota}: {space.size:,} configurations")
        evaluation, t_serial, t_parallel = bench_evaluate(space, workers)
        (t_streamed, t_build, t_fused, t_feasibility, t_indexed,
         index) = bench_select(evaluation)
        t_save, t_load, t_warm = bench_snapshot(space, evaluation, index)
        frontier = index.frontier_size
        entry = {
            "quota": quota,
            "space_size": space.size,
            "evaluate_serial_s": round(t_serial, 4),
            "evaluate_parallel_s": (round(t_parallel, 4)
                                    if t_parallel is not None else None),
            "evaluate_parallel_workers": workers if workers > 1 else None,
            "evaluate_speedup": (round(t_serial / t_parallel, 2)
                                 if t_parallel else None),
            "select_streamed_s_per_query": round(t_streamed, 6),
            "frontier_index_build_s": round(t_build, 4),
            "fused_frontier_build_s": (round(t_fused, 4)
                                       if t_fused is not None else None),
            "index_feasibility_build_s": round(t_feasibility, 4),
            "snapshot_save_s": round(t_save, 4),
            "snapshot_load_s": round(t_load, 4),
            "warm_start_s": round(t_warm, 4),
            "select_indexed_s_per_query": round(t_indexed, 6),
            "select_speedup_per_query": round(t_streamed / t_indexed, 1),
            "frontier_size": frontier,
        }
        report["spaces"].append(entry)
        print(f"  evaluate: serial {t_serial:.3f}s"
              + (f", parallel {t_parallel:.3f}s "
                 f"({t_serial / t_parallel:.2f}x, {workers} workers)"
                 if t_parallel else " (single core; parallel skipped)"))
        print(f"  frontier: cold build {t_build:.3f}s, fused merge "
              + (f"{t_fused:.3f}s" if t_fused is not None else "n/a")
              + f", feasibility {t_feasibility:.3f}s")
        print(f"  snapshot: save {t_save:.3f}s, load {t_load * 1e3:.1f} ms, "
              f"warm start {t_warm * 1e3:.1f} ms")
        print(f"  select:   streamed {t_streamed * 1e3:.2f} ms/query, "
              f"indexed {t_indexed * 1e3:.3f} ms/query "
              f"({t_streamed / t_indexed:.0f}x after a {t_build:.2f}s build, "
              f"frontier {frontier})")
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
