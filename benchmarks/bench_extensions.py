"""Benchmarks for the extension APIs (planner, robust, campaign,
tri-objective, autoscaler, faults)."""

import numpy as np

from repro.baselines.autoscale import simulate_autoscaler
from repro.core.campaign import CampaignRun, plan_campaign
from repro.core.planner import max_accuracy_plan
from repro.core.robust import deadline_miss_probability, select_with_margin
from repro.core.triobjective import tri_objective_frontier


def test_bench_max_accuracy_plan(benchmark, warm_ctx):
    """Bisection planning over the 10M-configuration index."""
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    plan = benchmark(
        max_accuracy_plan, celia.demand_model(app),
        celia.min_cost_index(app), 65_536, (1_000, 20_000), 24.0, 120.0,
        integral=True)
    benchmark.extra_info["max_steps"] = plan.value
    assert plan.answer.cost_dollars <= 120.0


def test_bench_margin_selection(benchmark, warm_ctx):
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    demand = celia.demand_gi(app, 65_536, 6_000)
    sel = benchmark(select_with_margin, celia.min_cost_index(app),
                    demand, 24.0, margin=0.15)
    benchmark.extra_info["insurance"] = round(sel.insurance_cost_fraction, 3)


def test_bench_miss_probability(benchmark, warm_ctx):
    """Twenty Monte-Carlo engine executions of one configuration."""
    app = warm_ctx.app("galaxy")
    estimate = benchmark.pedantic(
        deadline_miss_probability,
        args=(app, 65_536, 4_000, (5, 5, 0, 0, 0, 0, 0, 0, 0),
              warm_ctx.catalog, 24.0),
        kwargs={"trials": 20, "seed": 0},
        rounds=3, iterations=1)
    benchmark.extra_info["miss_probability"] = estimate.miss_probability


def test_bench_campaign(benchmark, warm_ctx):
    celia = warm_ctx.celia
    runs = []
    for name, app_name, size, levels in (
        ("g", "galaxy", 65_536, [1000, 2000, 4000, 8000]),
        ("s", "sand", 2_048e6, [0.2, 0.4, 0.8, 1.0]),
    ):
        app = warm_ctx.app(app_name)
        runs.append(CampaignRun(
            name=name, app=app, demand=celia.demand_model(app),
            index=celia.min_cost_index(app), problem_size=size,
            accuracy_levels=np.array(levels, dtype=float)))
    plan = benchmark(plan_campaign, runs, 48.0, 150.0)
    benchmark.extra_info["total_score"] = round(plan.total_score, 3)
    assert plan.total_cost <= 150.0


def test_bench_tri_objective(benchmark, warm_ctx):
    """Four full-space selections pooled into a 3-D frontier."""
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    frontier = benchmark.pedantic(
        tri_objective_frontier,
        args=(celia.evaluation(app), celia.demand_model(app),
              app.accuracy_score, 65_536,
              np.array([2000.0, 4000.0, 6000.0, 8000.0]), 24.0, 350.0),
        rounds=1, iterations=1)
    benchmark.extra_info["frontier_points"] = len(frontier)


def test_bench_autoscaler(benchmark, warm_ctx):
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    capacities = celia.capacities(app)
    demand = celia.demand_gi(app, 65_536, 4_000)
    outcome = benchmark(simulate_autoscaler, warm_ctx.catalog, capacities,
                        demand, 24.0, seed=0)
    benchmark.extra_info["epochs"] = outcome.epochs
    assert outcome.completed_on_time
