"""Benchmark the fault-tolerant sweep under injected worker failures.

Sweeps the Table III catalog at quota 3 (262,143 configurations) with
the supervised parallel path while deterministically SIGKILLing 0, 1
and 3 workers mid-span (:class:`repro.parallel.FaultPlan`).  Every run
is checked bit-identical against the serial sweep — the whole point of
the supervisor is that failures cost time, never correctness — and the
report records the recovery overhead relative to the fault-free
supervised run.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_faults.py [--quick]
        [--failures 0 1 3] [--output PATH]

``--quick`` drops to quota 2 (19,682 configurations) for the CI
benchmark-smoke job; the nightly job passes a longer ``--failures``
list instead.  Results land in ``BENCH_faults.json`` at the repository
root.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.cloud.catalog import ec2_catalog
from repro.core.configspace import ConfigurationSpace
from repro.parallel import FaultPlan, SupervisorConfig, evaluate_resilient

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_faults.json"

QUOTA = 3
QUICK_QUOTA = 2
WORKERS = 2
#: Small enough that every span holds several chunks, so a kill at
#: chunk 1 always lands mid-span with plenty of spans left to
#: re-dispatch; the quick (quota 2) space needs a finer grid for the
#: same reason.
CHUNK_SIZE = 1 << 14
QUICK_CHUNK_SIZE = 1 << 11
FAILURES = (0, 1, 3)

#: Benchmark-scaled supervisor knobs: production default backoff (250 ms
#: first retry) would swamp a sub-second sweep with waiting, which
#: measures the config, not the recovery machinery.
CONFIG = SupervisorConfig(poll_interval_s=0.02, backoff_base_s=0.02,
                          backoff_cap_s=0.1, shutdown_grace_s=0.5)

CAPACITIES = np.linspace(2.0, 8.0, 9)


def kill_plan(n_failures: int) -> FaultPlan:
    """SIGKILL the first ``n_failures`` workers on their first span.

    Worker ids are assigned in spawn order, so the plan also hits
    replacement workers: with more failures than initial workers, each
    respawn dies in turn until the plan is spent.
    """
    plan = FaultPlan.none()
    for worker_id in range(n_failures):
        plan = plan + FaultPlan.kill_worker(worker_id, at_chunk=1)
    return plan


def bench_failures(space: ConfigurationSpace, serial, n_failures: int,
                   chunk_size: int) -> dict:
    t0 = time.perf_counter()
    capacity, unit_cost, stats = evaluate_resilient(
        space, CAPACITIES, workers=WORKERS, chunk_size=chunk_size,
        faults=kill_plan(n_failures), config=CONFIG)
    wall = time.perf_counter() - t0
    assert serial.capacity_gips.tobytes() == capacity.tobytes(), \
        f"sweep with {n_failures} failure(s) is not bit-identical"
    assert serial.unit_cost_per_hour.tobytes() == unit_cost.tobytes()
    assert stats.workers_lost >= min(n_failures, 1), \
        f"expected {n_failures} injected failure(s), saw {stats.workers_lost}"
    return {
        "injected_failures": n_failures,
        "wall_s": round(wall, 4),
        "bit_identical_to_serial": True,
        **stats.to_dict(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"quota {QUICK_QUOTA} instead of {QUOTA} "
                             "(CI smoke mode)")
    parser.add_argument("--failures", type=int, nargs="+",
                        default=list(FAILURES),
                        help="injected worker-failure counts to benchmark")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()

    quota = QUICK_QUOTA if args.quick else QUOTA
    chunk_size = QUICK_CHUNK_SIZE if args.quick else CHUNK_SIZE
    space = ConfigurationSpace(ec2_catalog(max_nodes_per_type=quota))
    print(f"quota {quota}: {space.size:,} configurations, "
          f"{WORKERS} workers, chunk {chunk_size}")

    t0 = time.perf_counter()
    serial = space.evaluate(CAPACITIES, chunk_size=chunk_size)
    t_serial = time.perf_counter() - t0

    runs = []
    for n_failures in args.failures:
        run = bench_failures(space, serial, n_failures, chunk_size)
        runs.append(run)
        print(f"  {n_failures} failure(s): {run['wall_s']:.3f}s, "
              f"{run['retries']} retries, "
              f"{run['workers_spawned']} workers spawned, bit-identical")

    fault_free = next((r for r in runs if r["injected_failures"] == 0), None)
    for run in runs:
        if fault_free and fault_free["wall_s"] > 0:
            run["overhead_vs_fault_free"] = round(
                run["wall_s"] / fault_free["wall_s"], 2)

    report = {
        "quota": quota,
        "space_size": space.size,
        "workers": WORKERS,
        "chunk_size": chunk_size,
        "serial_sweep_s": round(t_serial, 4),
        "supervisor": {
            "poll_interval_s": CONFIG.poll_interval_s,
            "backoff_base_s": CONFIG.backoff_base_s,
            "backoff_cap_s": CONFIG.backoff_cap_s,
        },
        "runs": runs,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
