"""Benchmark the planning service against one-process-per-request.

The baseline answers each ``select`` query the way the CLI does today:
a fresh process that imports the stack, builds the quota-2 catalog,
characterizes the application, sweeps all 19,682 configurations and
builds the frontier — then answers one query and exits.  Its throughput
is bounded by that per-request chain regardless of concurrency (the
chain is CPU-bound, so running 32 at once on this machine cannot beat
running them back to back).

The service pays the chain once, keeps it warm, and coalesces concurrent
requests into vectorized :meth:`FrontierIndex.select_batch` passes.  A
closed-loop load generator (``CONCURRENCIES`` asyncio workers, each
issuing ``REQUESTS_PER_WORKER`` unique queries) measures warm throughput
and latency; a second pass over the same queries measures the LRU result
cache.  Both sides run with the persistent evaluation cache disabled so
neither gets artefacts for free.

A third section benchmarks serving **over HTTP at high concurrency**,
three architectures against the same workload: the legacy
thread-per-connection server (``serve_threaded.py`` — synchronous
per-request planning, no caching, no batching), the single-process
``celia serve`` (one TCP connection per request — the server closes
after every response), and the sharded ``celia fleet serve``
(keep-alive connections into the asyncio front end, one framed
write/read per request on persistent Unix-domain links to the shard
workers).  All run as real subprocesses.  The workload cycles a
catalog of ``FLEET_QUERY_CATALOG`` distinct queries over four warm-key
seeds — planning traffic repeats, and serving repeats well is exactly
what the service's result cache plus the router's shard affinity buy:
each query's repeats land on the one worker that already holds its
cached (and pre-serialized) response, while the legacy server
recomputes every single request.  On a multi-core host the shards
additionally parallelize the misses; this machine has one core, so the
comparison isolates the caching and protocol wins.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
        [--output PATH]

Results land in ``BENCH_service.json`` at the repository root, including
two acceptance checks: batched throughput at concurrency 32 must be at
least 5x the one-process-per-request baseline, and fleet throughput at
concurrency 256 must be at least 2x the connection-per-request server.
``--quick`` runs one baseline process, the (1, 8) concurrency levels and
a 32-way HTTP comparison only, skipping both speedup assertions — the
CI benchmark-smoke mode.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time
from collections import Counter as TallyCounter
from pathlib import Path

from repro.service import PlannerService, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_service.json"

APP = "galaxy"
QUOTA = 2
CONCURRENCIES = (1, 8, 32)
QUICK_CONCURRENCIES = (1, 8)
REQUESTS_PER_WORKER = 8
N_BASELINE = 3
SPEEDUP_TARGET = 5.0

#: HTTP comparison: single-process connection-per-request server vs the
#: sharded keep-alive fleet, same query mix, both as subprocesses.
FLEET_CONCURRENCY = 256
QUICK_FLEET_CONCURRENCY = 32
FLEET_REQUESTS_PER_CONN = 32
FLEET_WORKERS = 2
#: Warm-key seeds the load spreads over; (0, 1) route to w0 and (4, 5)
#: to w1 on the two-worker ring, so both shards serve traffic.
FLEET_SEEDS = (0, 1, 4, 5)
#: Distinct queries in the HTTP workload; clients cycle this catalog,
#: so at c=256 each query recurs 8x — planning traffic repeats
#: (dashboards re-poll, tenants re-plan the same campaign), which is
#: the regime the shard-local result caches exist for.  The legacy
#: threaded server recomputes every repeat: per-request caching only
#: arrived with the service layer.
FLEET_QUERY_CATALOG = 256
FLEET_SPEEDUP_TARGET = 2.0

#: Percentile keys copied out of histogram snapshots.
LATENCY_KEYS = ("count", "min", "max", "p50", "p95", "p99")


def bench_baseline(n_baseline: int = N_BASELINE) -> dict:
    """Per-request latency of a cold ``celia select`` process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    argv = [sys.executable, "-m", "repro.cli", "--quota", str(QUOTA),
            "--no-cache", "select", APP, "65536", "2000",
            "--deadline", "48", "--budget", "350", "--json"]
    latencies = []
    for _ in range(n_baseline):
        t0 = time.perf_counter()
        proc = subprocess.run(argv, env=env, capture_output=True, text=True)
        latencies.append(time.perf_counter() - t0)
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["feasible_count"] > 0
    mean = sum(latencies) / len(latencies)
    return {
        "processes": n_baseline,
        "latency_s_per_request": round(mean, 4),
        "latency_s_samples": [round(v, 4) for v in latencies],
        "throughput_rps": round(1.0 / mean, 4),
    }


def make_queries(total: int) -> list[tuple[float, float]]:
    """``total`` distinct (n, a) pairs so no request hits the result cache.

    The problem-size perturbation is small enough that every query stays
    feasible under the fixed (deadline, budget), yet each one
    canonicalizes to a different cache key.
    """
    return [(65536.0 + float(i), 2000.0) for i in range(total)]


async def run_closed_loop(service: PlannerService,
                          queries: list[tuple[float, float]],
                          concurrency: int) -> tuple[float, list[float]]:
    """Drive ``queries`` through ``concurrency`` workers; return wall, latencies."""
    latencies: list[float] = []

    async def worker(slice_queries):
        for n, a in slice_queries:
            t0 = time.perf_counter()
            response = await service.select(APP, n, a, 48.0, 350.0)
            latencies.append(time.perf_counter() - t0)
            assert response["result"]["feasible_count"] > 0

    t0 = time.perf_counter()
    await asyncio.gather(*(
        worker(queries[i::concurrency]) for i in range(concurrency)))
    return time.perf_counter() - t0, latencies


def percentile_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    last = len(ordered) - 1

    def at(p):
        return round(ordered[min(last, round(p / 100.0 * last))], 6)

    return {
        "count": len(ordered),
        "min": round(ordered[0], 6),
        "max": round(ordered[-1], 6),
        "p50": at(50), "p95": at(95), "p99": at(99),
    }


async def bench_service_level(concurrency: int) -> dict:
    """One warm service, closed-loop at ``concurrency``, then a cached pass."""
    service = PlannerService(config=ServiceConfig(
        default_quota=QUOTA, max_queue_depth=max(64, 2 * concurrency),
        cache_dir=False))
    t0 = time.perf_counter()
    await service.warm(APP)
    warm_s = time.perf_counter() - t0

    queries = make_queries(concurrency * REQUESTS_PER_WORKER)
    wall, latencies = await run_closed_loop(service, queries, concurrency)
    snapshot = service.metrics.snapshot()

    # Second pass over the same queries: every request is an LRU hit.
    cached_wall, cached_latencies = await run_closed_loop(
        service, queries, concurrency)
    cached_snapshot = service.metrics.snapshot()
    hits = cached_snapshot["counters"]["cache_hits"]
    misses = cached_snapshot["counters"]["cache_misses"]

    batch_sizes = service.metrics.histogram("batch_size").samples()
    distribution = {str(int(size)): count for size, count
                    in sorted(TallyCounter(batch_sizes).items())}
    return {
        "concurrency": concurrency,
        "requests": len(queries),
        "warm_build_s": round(warm_s, 4),
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(queries) / wall, 2),
        "latency_s": percentile_summary(latencies),
        "batches": snapshot["counters"]["batches_total"],
        "mean_batch_size": round(
            len(queries) / snapshot["counters"]["batches_total"], 2),
        "batch_size_distribution": distribution,
        "cached_pass": {
            "throughput_rps": round(len(queries) / cached_wall, 2),
            "latency_s": percentile_summary(cached_latencies),
        },
        "cache_hit_rate": round(hits / (hits + misses), 4),
    }


# -- HTTP comparison: single-process server vs sharded fleet ------------------


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    content_length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    body = await reader.readexactly(content_length) if content_length else b""
    return status, body


def _select_body(index: int) -> dict:
    """The catalog query for request ``index`` (always feasible).

    Requests cycle ``FLEET_QUERY_CATALOG`` distinct (n, seed) pairs, so
    high-concurrency runs repeat each query and exercise the result
    caches the way production planning traffic does.
    """
    slot = index % FLEET_QUERY_CATALOG
    # top=5: clients ask for the few best configurations, not the whole
    # frontier — keeps response payloads at dashboard size.
    return {"app": APP, "n": 65536.0 + float(slot), "a": 2000.0,
            "deadline_hours": 48.0, "budget_dollars": 350.0,
            "seed": FLEET_SEEDS[slot % len(FLEET_SEEDS)], "top": 5}


def _encode_post(body: dict) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    return (f"POST /v1/select HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode("ascii") + payload


#: Pre-encoded request frames, one per catalog slot.  The load
#: generator shares the machine with the servers it measures, so its
#: per-request work must stay off the hot path for a fair comparison.
_FRAMES = [_encode_post(_select_body(slot))
           for slot in range(FLEET_QUERY_CATALOG)]


def _request_frame(index: int) -> bytes:
    return _FRAMES[index % FLEET_QUERY_CATALOG]


async def _http_once(host: str, port: int, frame: bytes
                     ) -> tuple[int, bytes]:
    """One request on a fresh connection (the legacy server's protocol)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(frame)
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _run_http_load(host: str, port: int, *, concurrency: int,
                         per_conn: int, keep_alive: bool
                         ) -> tuple[float, list[float]]:
    """Closed-loop load: ``concurrency`` clients, ``per_conn`` requests each.

    ``keep_alive=True`` holds one connection per client (the fleet front
    end); ``keep_alive=False`` opens a fresh connection per request (all
    the single-process server supports — it closes after each response).
    """
    latencies: list[float] = []

    async def close_quietly(writer) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def client(client_index: int) -> None:
        indices = range(client_index * per_conn, (client_index + 1) * per_conn)
        if keep_alive:
            reader = writer = None
            try:
                for i in indices:
                    frame = _request_frame(i)
                    t0 = time.perf_counter()
                    # A server may drop a keep-alive connection under
                    # load; reconnecting is the client's job and the
                    # reconnect cost stays in this request's latency.
                    for attempt in range(5):
                        try:
                            if writer is None:
                                reader, writer = await \
                                    asyncio.open_connection(host, port)
                            writer.write(frame)
                            await writer.drain()
                            status, _ = await _read_response(reader)
                            break
                        except (ConnectionError, OSError,
                                asyncio.IncompleteReadError):
                            if writer is not None:
                                await close_quietly(writer)
                            reader = writer = None
                    else:
                        raise RuntimeError(
                            f"request {i}: connection dropped 5 times")
                    latencies.append(time.perf_counter() - t0)
                    assert status == 200, f"request {i} -> HTTP {status}"
            finally:
                if writer is not None:
                    await close_quietly(writer)
        else:
            for i in indices:
                frame = _request_frame(i)
                t0 = time.perf_counter()
                status, _ = await _http_once(host, port, frame)
                latencies.append(time.perf_counter() - t0)
                assert status == 200, f"request {i} -> HTTP {status}"

    t0 = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(concurrency)))
    return time.perf_counter() - t0, latencies


def _spawn_server(args: list[str]) -> tuple[subprocess.Popen, int]:
    """Start a server subprocess; return it and its bound port.

    ``args`` follows the Python executable (``["-m", "repro.cli", ...]``
    or a script path); the subprocess must print a
    ``... listening on http://host:port ...`` ready line.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    argv = [sys.executable] + args
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    assert proc.stdout is not None
    for line in proc.stdout:
        if "listening on http://" in line:
            port = int(line.split("http://", 1)[1].split()[0]
                       .rsplit(":", 1)[1])
            return proc, port
    raise RuntimeError(f"server exited before ready "
                       f"(rc={proc.wait()})")


def _stop_server(proc: subprocess.Popen) -> None:
    import signal as _signal
    proc.send_signal(_signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


async def _bench_http_target(port: int, *, concurrency: int,
                             keep_alive: bool, prefix: str) -> dict:
    # Untimed prewarm: one request per seed builds that shard's warm
    # state, so the timed run measures serving, not state construction.
    for seed_index in range(len(FLEET_SEEDS)):
        status, _ = await _http_once("127.0.0.1", port,
                                     _request_frame(seed_index))
        assert status == 200, f"prewarm -> HTTP {status}"
    # Best of two runs: every target shares one core with the load
    # generator, and thread-scheduling jitter swings a single run by
    # ~15%; the better run is the less-perturbed measurement.
    wall, latencies = await _run_http_load(
        "127.0.0.1", port, concurrency=concurrency,
        per_conn=FLEET_REQUESTS_PER_CONN, keep_alive=keep_alive)
    wall2, latencies2 = await _run_http_load(
        "127.0.0.1", port, concurrency=concurrency,
        per_conn=FLEET_REQUESTS_PER_CONN, keep_alive=keep_alive)
    if len(latencies2) / wall2 > len(latencies) / wall:
        wall, latencies = wall2, latencies2
    summary = percentile_summary(latencies)
    return {
        "requests": len(latencies),
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(latencies) / wall, 2),
        f"{prefix}_p50_s": summary["p50"],
        f"{prefix}_p95_s": summary["p95"],
        f"{prefix}_p99_s": summary["p99"],
        "latency_s": summary,
    }


def bench_http_comparison(concurrency: int) -> dict:
    """Threaded server vs asyncio server vs the fleet, same load.

    Three subprocess targets answer the identical catalog workload
    (``FLEET_QUERY_CATALOG`` distinct queries, cycled):

    * ``threaded`` — thread-per-connection ``serve_threaded.py`` (the
      legacy architecture: synchronous uncached planning per request;
      driven keep-alive, its best case);
    * ``single_http`` — the asyncio ``celia serve`` (connection per
      request — all it supports, it closes after every response);
    * ``fleet`` — ``celia fleet serve`` (keep-alive front end, framed
      links to shard workers holding shard-local result caches).
    """
    # Queue depth must admit the full closed-loop concurrency on every
    # side, so the comparison measures serving rather than shedding.
    depth = ["--max-queue", str(4 * max(concurrency, 64))]

    threaded_proc, threaded_port = _spawn_server(
        [str(REPO_ROOT / "benchmarks" / "serve_threaded.py"),
         "--quota", str(QUOTA), "--no-cache", "--port", "0",
         "--warm", APP] + depth)
    try:
        threaded = asyncio.run(_bench_http_target(
            threaded_port, concurrency=concurrency, keep_alive=True,
            prefix="threaded"))
    finally:
        _stop_server(threaded_proc)

    common = ["-m", "repro.cli", "--quota", str(QUOTA), "--no-cache"]
    single_proc, single_port = _spawn_server(
        common + ["serve", "--port", "0", "--warm", APP] + depth)
    try:
        single = asyncio.run(_bench_http_target(
            single_port, concurrency=concurrency, keep_alive=False,
            prefix="single_http"))
    finally:
        _stop_server(single_proc)

    fleet_proc, fleet_port = _spawn_server(
        common + ["fleet", "serve", "--workers", str(FLEET_WORKERS),
                  "--port", "0", "--warm", APP] + depth)
    try:
        fleet = asyncio.run(_bench_http_target(
            fleet_port, concurrency=concurrency, keep_alive=True,
            prefix="fleet"))
    finally:
        _stop_server(fleet_proc)

    return {
        "concurrency": concurrency,
        "requests_per_connection": FLEET_REQUESTS_PER_CONN,
        "seeds": list(FLEET_SEEDS),
        "distinct_queries": FLEET_QUERY_CATALOG,
        "workers": FLEET_WORKERS,
        "threaded": threaded,
        "single_http": single,
        "fleet": fleet,
        "fleet_speedup": round(
            fleet["throughput_rps"] / threaded["throughput_rps"], 2),
        "fleet_vs_async_single": round(
            fleet["throughput_rps"] / single["throughput_rps"], 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one baseline run, concurrencies "
                             f"{QUICK_CONCURRENCIES}, no speedup assertion "
                             "(CI smoke mode)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()
    n_baseline = 1 if args.quick else N_BASELINE
    concurrencies = QUICK_CONCURRENCIES if args.quick else CONCURRENCIES

    print(f"baseline: {n_baseline} one-process-per-request runs "
          f"({APP}, quota {QUOTA}, no cache)")
    baseline = bench_baseline(n_baseline)
    print(f"  {baseline['latency_s_per_request']:.2f} s/request "
          f"-> {baseline['throughput_rps']:.2f} req/s at any concurrency")

    levels = []
    for concurrency in concurrencies:
        level = asyncio.run(bench_service_level(concurrency))
        levels.append(level)
        print(f"service @ c={concurrency}: "
              f"{level['throughput_rps']:.0f} req/s, "
              f"p50 {level['latency_s']['p50'] * 1e3:.1f} ms, "
              f"p99 {level['latency_s']['p99'] * 1e3:.1f} ms, "
              f"mean batch {level['mean_batch_size']:.1f}, "
              f"cached pass {level['cached_pass']['throughput_rps']:.0f} req/s")

    http_concurrency = (QUICK_FLEET_CONCURRENCY if args.quick
                        else FLEET_CONCURRENCY)
    print(f"http comparison @ c={http_concurrency}: threaded vs asyncio "
          f"single vs {FLEET_WORKERS}-worker fleet")
    comparison = bench_http_comparison(http_concurrency)
    print(f"  threaded: {comparison['threaded']['throughput_rps']:.0f} "
          f"req/s, p99 "
          f"{comparison['threaded']['threaded_p99_s'] * 1e3:.1f} ms")
    print(f"  single:   {comparison['single_http']['throughput_rps']:.0f} "
          f"req/s, p99 "
          f"{comparison['single_http']['single_http_p99_s'] * 1e3:.1f} ms")
    print(f"  fleet:    {comparison['fleet']['throughput_rps']:.0f} req/s, "
          f"p99 {comparison['fleet']['fleet_p99_s'] * 1e3:.1f} ms "
          f"-> {comparison['fleet_speedup']:.2f}x threaded")

    report = {
        "app": APP,
        "quota": QUOTA,
        "requests_per_worker": REQUESTS_PER_WORKER,
        "baseline_process_per_request": baseline,
        "service": levels,
        "speedup_target": SPEEDUP_TARGET,
        "fleet_comparison": comparison,
        "fleet_speedup_target": FLEET_SPEEDUP_TARGET,
    }
    if not args.quick:
        at_32 = next(lv for lv in levels if lv["concurrency"] == 32)
        speedup = at_32["throughput_rps"] / baseline["throughput_rps"]
        print(f"speedup at concurrency 32: {speedup:.0f}x "
              f"(target >= {SPEEDUP_TARGET:g}x)")
        assert speedup >= SPEEDUP_TARGET, (
            f"batched service is only {speedup:.1f}x the process-per-request "
            f"baseline; acceptance requires {SPEEDUP_TARGET:g}x")
        report["speedup_at_32"] = round(speedup, 1)
        assert comparison["fleet_speedup"] >= FLEET_SPEEDUP_TARGET, (
            f"fleet is only {comparison['fleet_speedup']:.2f}x the "
            f"threaded server at c={http_concurrency}; "
            f"acceptance requires {FLEET_SPEEDUP_TARGET:g}x")
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
