"""Benchmark the planning service against one-process-per-request.

The baseline answers each ``select`` query the way the CLI does today:
a fresh process that imports the stack, builds the quota-2 catalog,
characterizes the application, sweeps all 19,682 configurations and
builds the frontier — then answers one query and exits.  Its throughput
is bounded by that per-request chain regardless of concurrency (the
chain is CPU-bound, so running 32 at once on this machine cannot beat
running them back to back).

The service pays the chain once, keeps it warm, and coalesces concurrent
requests into vectorized :meth:`FrontierIndex.select_batch` passes.  A
closed-loop load generator (``CONCURRENCIES`` asyncio workers, each
issuing ``REQUESTS_PER_WORKER`` unique queries) measures warm throughput
and latency; a second pass over the same queries measures the LRU result
cache.  Both sides run with the persistent evaluation cache disabled so
neither gets artefacts for free.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
        [--output PATH]

Results land in ``BENCH_service.json`` at the repository root, including
the acceptance check: batched throughput at concurrency 32 must be at
least 5x the one-process-per-request baseline.  ``--quick`` runs one
baseline process and the (1, 8) concurrency levels only, skipping the
32-way speedup assertion — the CI benchmark-smoke mode.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time
from collections import Counter as TallyCounter
from pathlib import Path

from repro.service import PlannerService, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_service.json"

APP = "galaxy"
QUOTA = 2
CONCURRENCIES = (1, 8, 32)
QUICK_CONCURRENCIES = (1, 8)
REQUESTS_PER_WORKER = 8
N_BASELINE = 3
SPEEDUP_TARGET = 5.0

#: Percentile keys copied out of histogram snapshots.
LATENCY_KEYS = ("count", "min", "max", "p50", "p95", "p99")


def bench_baseline(n_baseline: int = N_BASELINE) -> dict:
    """Per-request latency of a cold ``celia select`` process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    argv = [sys.executable, "-m", "repro.cli", "--quota", str(QUOTA),
            "--no-cache", "select", APP, "65536", "2000",
            "--deadline", "48", "--budget", "350", "--json"]
    latencies = []
    for _ in range(n_baseline):
        t0 = time.perf_counter()
        proc = subprocess.run(argv, env=env, capture_output=True, text=True)
        latencies.append(time.perf_counter() - t0)
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["feasible_count"] > 0
    mean = sum(latencies) / len(latencies)
    return {
        "processes": n_baseline,
        "latency_s_per_request": round(mean, 4),
        "latency_s_samples": [round(v, 4) for v in latencies],
        "throughput_rps": round(1.0 / mean, 4),
    }


def make_queries(total: int) -> list[tuple[float, float]]:
    """``total`` distinct (n, a) pairs so no request hits the result cache.

    The problem-size perturbation is small enough that every query stays
    feasible under the fixed (deadline, budget), yet each one
    canonicalizes to a different cache key.
    """
    return [(65536.0 + float(i), 2000.0) for i in range(total)]


async def run_closed_loop(service: PlannerService,
                          queries: list[tuple[float, float]],
                          concurrency: int) -> tuple[float, list[float]]:
    """Drive ``queries`` through ``concurrency`` workers; return wall, latencies."""
    latencies: list[float] = []

    async def worker(slice_queries):
        for n, a in slice_queries:
            t0 = time.perf_counter()
            response = await service.select(APP, n, a, 48.0, 350.0)
            latencies.append(time.perf_counter() - t0)
            assert response["result"]["feasible_count"] > 0

    t0 = time.perf_counter()
    await asyncio.gather(*(
        worker(queries[i::concurrency]) for i in range(concurrency)))
    return time.perf_counter() - t0, latencies


def percentile_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    last = len(ordered) - 1

    def at(p):
        return round(ordered[min(last, round(p / 100.0 * last))], 6)

    return {
        "count": len(ordered),
        "min": round(ordered[0], 6),
        "max": round(ordered[-1], 6),
        "p50": at(50), "p95": at(95), "p99": at(99),
    }


async def bench_service_level(concurrency: int) -> dict:
    """One warm service, closed-loop at ``concurrency``, then a cached pass."""
    service = PlannerService(config=ServiceConfig(
        default_quota=QUOTA, max_queue_depth=max(64, 2 * concurrency),
        cache_dir=False))
    t0 = time.perf_counter()
    await service.warm(APP)
    warm_s = time.perf_counter() - t0

    queries = make_queries(concurrency * REQUESTS_PER_WORKER)
    wall, latencies = await run_closed_loop(service, queries, concurrency)
    snapshot = service.metrics.snapshot()

    # Second pass over the same queries: every request is an LRU hit.
    cached_wall, cached_latencies = await run_closed_loop(
        service, queries, concurrency)
    cached_snapshot = service.metrics.snapshot()
    hits = cached_snapshot["counters"]["cache_hits"]
    misses = cached_snapshot["counters"]["cache_misses"]

    batch_sizes = service.metrics.histogram("batch_size").samples()
    distribution = {str(int(size)): count for size, count
                    in sorted(TallyCounter(batch_sizes).items())}
    return {
        "concurrency": concurrency,
        "requests": len(queries),
        "warm_build_s": round(warm_s, 4),
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(queries) / wall, 2),
        "latency_s": percentile_summary(latencies),
        "batches": snapshot["counters"]["batches_total"],
        "mean_batch_size": round(
            len(queries) / snapshot["counters"]["batches_total"], 2),
        "batch_size_distribution": distribution,
        "cached_pass": {
            "throughput_rps": round(len(queries) / cached_wall, 2),
            "latency_s": percentile_summary(cached_latencies),
        },
        "cache_hit_rate": round(hits / (hits + misses), 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one baseline run, concurrencies "
                             f"{QUICK_CONCURRENCIES}, no speedup assertion "
                             "(CI smoke mode)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()
    n_baseline = 1 if args.quick else N_BASELINE
    concurrencies = QUICK_CONCURRENCIES if args.quick else CONCURRENCIES

    print(f"baseline: {n_baseline} one-process-per-request runs "
          f"({APP}, quota {QUOTA}, no cache)")
    baseline = bench_baseline(n_baseline)
    print(f"  {baseline['latency_s_per_request']:.2f} s/request "
          f"-> {baseline['throughput_rps']:.2f} req/s at any concurrency")

    levels = []
    for concurrency in concurrencies:
        level = asyncio.run(bench_service_level(concurrency))
        levels.append(level)
        print(f"service @ c={concurrency}: "
              f"{level['throughput_rps']:.0f} req/s, "
              f"p50 {level['latency_s']['p50'] * 1e3:.1f} ms, "
              f"p99 {level['latency_s']['p99'] * 1e3:.1f} ms, "
              f"mean batch {level['mean_batch_size']:.1f}, "
              f"cached pass {level['cached_pass']['throughput_rps']:.0f} req/s")

    report = {
        "app": APP,
        "quota": QUOTA,
        "requests_per_worker": REQUESTS_PER_WORKER,
        "baseline_process_per_request": baseline,
        "service": levels,
        "speedup_target": SPEEDUP_TARGET,
    }
    if not args.quick:
        at_32 = next(lv for lv in levels if lv["concurrency"] == 32)
        speedup = at_32["throughput_rps"] / baseline["throughput_rps"]
        print(f"speedup at concurrency 32: {speedup:.0f}x "
              f"(target >= {SPEEDUP_TARGET:g}x)")
        assert speedup >= SPEEDUP_TARGET, (
            f"batched service is only {speedup:.1f}x the process-per-request "
            f"baseline; acceptance requires {SPEEDUP_TARGET:g}x")
        report["speedup_at_32"] = round(speedup, 1)
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
