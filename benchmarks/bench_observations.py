"""Benchmark E8-E10 — Observations 1-3 quantified end to end."""

from repro.experiments import observations


def test_bench_observations(benchmark, warm_ctx):
    result = benchmark.pedantic(observations.run, args=(warm_ctx,),
                                rounds=3, iterations=1)
    benchmark.extra_info["obs1_galaxy_saving"] = round(
        result.obs1.saving_fraction["galaxy"], 3)
    _, _, reduction, increase = result.obs3.headline["galaxy"]
    benchmark.extra_info["obs3_galaxy"] = (
        f"-{reduction:.0%} deadline -> +{increase:.0%} cost")
    assert increase < reduction
