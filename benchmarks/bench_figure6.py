"""Benchmark E7 — Figure 6: fixed-time accuracy scaling with spill
detection (the Observation 2 machinery)."""

from repro.experiments import figure6


def test_bench_figure6_experiment(benchmark, warm_ctx):
    result = benchmark.pedantic(figure6.run, args=(warm_ctx,), rounds=3,
                                iterations=1)
    panel = result.panel("galaxy")
    benchmark.extra_info["galaxy_spills_24h"] = [
        float(panel.accuracies[i]) for i in panel.spill_indices[24.0]
    ]
    assert panel.spill_indices[24.0]
