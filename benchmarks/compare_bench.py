"""Compare a fresh benchmark report against a committed baseline.

Flags any timing metric (JSON leaves whose key ends in ``_s``,
``_s_per_query`` or ``_s_per_request``) that regressed by more than
``--max-ratio`` relative to the baseline.  Metrics below
``--min-baseline-s`` in the baseline, or whose absolute slowdown is
under ``--min-delta-s``, are skipped — at sub-hundredth-of-a-second
scales a shared CI runner's timer noise exceeds any signal.

The reports may cover different subsets (the CI smoke mode runs
benchmarks with ``--quick``, which drops the most expensive entries);
only metrics present in both are compared.

``--require-max LEAF=SECONDS`` additionally enforces an *absolute*
ceiling on every current-report leaf with that name (e.g.
``--require-max snapshot_load_s=0.5`` for the mmap'd warm-start path,
which must stay in the tens of milliseconds regardless of how the
baseline drifts).  A bound that matches no leaf is an error — it
catches renamed metrics silently disarming the gate.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--max-ratio 3.0] [--min-baseline-s 0.02] [--min-delta-s 0.05] \
        [--require-max LEAF=SECONDS ...]

Exits 1 if any compared metric regressed, and 2 — with a one-line
message rather than a traceback — when either report is missing,
unreadable, or not valid JSON (e.g. a baseline that was never
committed, or a benchmark run that died mid-write).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TIMING_SUFFIXES = ("_s", "_s_per_query", "_s_per_request")


class ReportError(Exception):
    """A report file could not be loaded; the message says why."""


def load_report(path: Path, role: str) -> dict:
    """Read one report, raising :class:`ReportError` with a usable
    message instead of letting I/O or JSON tracebacks escape."""
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ReportError(
            f"{role} report {path} does not exist — run the benchmark "
            f"first (or commit its baseline)") from None
    except OSError as exc:
        raise ReportError(f"cannot read {role} report {path}: "
                          f"{exc.strerror or exc}") from None
    try:
        report = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ReportError(
            f"{role} report {path} is not valid JSON "
            f"(line {exc.lineno}: {exc.msg}) — was the benchmark "
            f"interrupted mid-write?") from None
    if not isinstance(report, dict):
        raise ReportError(
            f"{role} report {path} must be a JSON object, "
            f"got {type(report).__name__}")
    return report


def flatten(node, prefix="") -> dict[str, float]:
    """Dotted-path -> value map of every timing leaf in a report."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(flatten(value, f"{prefix}{i}."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        key = prefix.rstrip(".")
        leaf = key.rsplit(".", 1)[-1]
        if leaf.endswith(TIMING_SUFFIXES):
            out[key] = float(node)
    return out


def compare(baseline: dict, current: dict, *, max_ratio: float,
            min_baseline_s: float, min_delta_s: float) -> list[str]:
    base = flatten(baseline)
    curr = flatten(current)
    shared = sorted(set(base) & set(curr))
    regressions = []
    for key in shared:
        b, c = base[key], curr[key]
        if b < min_baseline_s or c - b < min_delta_s:
            continue
        if c > max_ratio * b:
            regressions.append(
                f"{key}: {c:.4f}s vs baseline {b:.4f}s "
                f"({c / b:.1f}x > {max_ratio:g}x allowed)")
    print(f"compared {len(shared)} shared timing metric(s); "
          f"{len(regressions)} regression(s)")
    return regressions


def check_bounds(current: dict, bounds: dict[str, float]) -> list[str]:
    """Absolute ceilings: every current leaf named in ``bounds`` must be
    at or under its bound; an unmatched bound is itself a failure."""
    curr = flatten(current)
    failures = []
    for leaf, ceiling in bounds.items():
        matched = {k: v for k, v in curr.items()
                   if k.rsplit(".", 1)[-1] == leaf}
        if not matched:
            failures.append(f"{leaf}: bound {ceiling:g}s matched no metric "
                            f"in the current report (renamed?)")
            continue
        for key, value in matched.items():
            if value > ceiling:
                failures.append(f"{key}: {value:.4f}s exceeds absolute "
                                f"bound {ceiling:g}s")
    return failures


def parse_bounds(specs: list[str]) -> dict[str, float]:
    """``LEAF=SECONDS`` strings -> bound map, raising on malformed specs."""
    bounds: dict[str, float] = {}
    for spec in specs:
        leaf, sep, raw = spec.partition("=")
        try:
            if not sep or not leaf:
                raise ValueError
            bounds[leaf] = float(raw)
        except ValueError:
            raise ReportError(
                f"--require-max expects LEAF=SECONDS, got {spec!r}") from None
    return bounds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when current > ratio * baseline "
                             "(default 3.0)")
    parser.add_argument("--min-baseline-s", type=float, default=0.02,
                        help="skip metrics with a baseline below this "
                             "(default 0.02 s)")
    parser.add_argument("--min-delta-s", type=float, default=0.05,
                        help="skip slowdowns smaller than this in absolute "
                             "terms (default 0.05 s)")
    parser.add_argument("--require-max", action="append", default=[],
                        metavar="LEAF=SECONDS",
                        help="absolute ceiling for every current leaf with "
                             "this name (repeatable)")
    args = parser.parse_args()

    try:
        bounds = parse_bounds(args.require_max)
        baseline = load_report(args.baseline, "baseline")
        current = load_report(args.current, "current")
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    regressions = compare(baseline, current, max_ratio=args.max_ratio,
                          min_baseline_s=args.min_baseline_s,
                          min_delta_s=args.min_delta_s)
    regressions += check_bounds(current, bounds)
    for line in regressions:
        print(f"REGRESSION {line}", file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
