"""Benchmarks for the workflow extension (DAG selection + DES execution)."""

import numpy as np

from repro.cloud.catalog import ec2_catalog
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.workflow import (
    execute_workflow,
    fork_join,
    select_workflow_configurations,
)


def test_bench_workflow_selection(benchmark, warm_ctx):
    """Two-bound exhaustive selection over the quota-2 space (19,682)."""
    catalog = ec2_catalog(max_nodes_per_type=2)
    app = warm_ctx.app("galaxy")
    capacities = np.array([app.true_rate_gips(t) for t in catalog])
    workflow = fork_join(8, branch_tasks=200, branch_task_gi=50.0)
    selection = benchmark(
        select_workflow_configurations, workflow, catalog, capacities,
        1.0, 10.0)
    benchmark.extra_info["pareto"] = selection.pareto_count
    assert selection.feasible_count > 0


def test_bench_workflow_execution(benchmark, warm_ctx):
    """DES precedence scheduling of ~1600 tasks on a 16-slot cluster."""
    catalog = ec2_catalog()
    app = warm_ctx.app("galaxy")
    instances = [
        Instance(instance_id=f"i-{k}", itype=catalog.type_named("c4.2xlarge"))
        for k in range(2)
    ]
    cluster = SimCluster(instances, app)
    workflow = fork_join(8, branch_tasks=200, branch_task_gi=50.0)
    report = benchmark(execute_workflow, workflow, cluster)
    benchmark.extra_info["tasks"] = report.n_tasks
    assert report.busy_fraction > 0.5
