"""Thread-per-connection reference server for the fleet benchmark.

This is the legacy serving architecture the asyncio fleet front end
replaces: a stdlib :class:`~http.server.ThreadingHTTPServer` that
dedicates one OS thread to every client connection and answers each
``/v1/select`` **synchronously in the handler thread** with the
library's :meth:`repro.core.celia.Celia.select` — one request, one
full planning call, no cross-request micro-batching.  That is how the
planner was served before ``repro.service`` existed: request-scoped
compute on a shared warm index, serialized by the interpreter lock.

At high connection counts this model pays twice.  Every in-flight
request is a thread convoying on the GIL through the numpy select, so
throughput collapses to the *unbatched* per-query cost; and with 256
such threads the p99 inherits the full convoy queue.  The asyncio
service's micro-batch loop (one vectorized sweep answering a whole
window of requests) and the fleet's sharded front end are exactly the
two fixes this baseline lacks — ``bench_service.py`` measures the gap.

Bench-only: this module exists to be spawned by ``bench_service.py``
and is not part of the library.

Run directly::

    PYTHONPATH=src python benchmarks/serve_threaded.py [--port 0]
        [--quota 2] [--warm APP] [--no-cache]
"""

from __future__ import annotations

import argparse
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.apps import application_by_name
from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.errors import InfeasibleError, ReproError, ValidationError
from repro.service.serialize import selection_to_dict


class SyncPlanner:
    """One warm :class:`Celia` per seed, answering selects in-thread."""

    def __init__(self, *, quota: int, cache_dir, warm_apps: tuple[str, ...]):
        self.quota = quota
        self.cache_dir = cache_dir
        self.warm_apps = warm_apps
        self._planners: dict[int, Celia] = {}
        self._lock = threading.Lock()

    def _planner(self, seed: int) -> Celia:
        with self._lock:
            planner = self._planners.get(seed)
            if planner is None:
                planner = Celia(
                    ec2_catalog(max_nodes_per_type=self.quota),
                    seed=seed, workers=1, cache_dir=self.cache_dir)
                for name in self.warm_apps:
                    planner.selection_index(application_by_name(name))
                self._planners[seed] = planner
            return planner

    def select(self, request: dict, default_seed: int) -> dict:
        app = application_by_name(str(request["app"]))
        seed = int(request.get("seed", default_seed))
        result = self._planner(seed).select(
            app, float(request["n"]), float(request["a"]),
            float(request["deadline_hours"]),
            float(request["budget_dollars"]))
        top = int(request.get("top", 0))
        return {"kind": "select", "cached": False,
                "result": selection_to_dict(result, top=top)}


def main() -> int:
    parser = argparse.ArgumentParser(
        description="thread-per-connection reference planning server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--quota", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="listen backlog (accepted for CLI parity "
                             "with the async servers)")
    parser.add_argument("--warm", action="append", default=None,
                        metavar="APP")
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    warm_apps = tuple(args.warm or ())
    planner = SyncPlanner(
        quota=args.quota, cache_dir=False if args.no_cache else None,
        warm_apps=warm_apps)
    planner._planner(args.seed)  # build the default-seed state up front

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"  # keep-alive, best case for threads

        def log_message(self, *_args) -> None:  # quiet per-request logging
            pass

        def do_POST(self) -> None:
            if self.path != "/v1/select":
                self._reply(404, {"error": {"code": "not_found",
                                            "message": self.path}})
                return
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                request = json.loads(raw) if raw else {}
                body = planner.select(request, args.seed)
                status = 200
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                status, body = 400, {"error": {"code": "invalid_request",
                                               "message": str(exc)}}
            except ValidationError as exc:
                status, body = 400, {"error": {"code": "invalid_request",
                                               "message": str(exc)}}
            except InfeasibleError as exc:
                status, body = 422, {"error": {"code": "infeasible",
                                               "message": str(exc)}}
            except ReproError as exc:
                status, body = 400, {"error": {"code": "error",
                                               "message": str(exc)}}
            self._reply(status, body)

        def _reply(self, status: int, body: dict) -> None:
            payload = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

    class Server(ThreadingHTTPServer):
        daemon_threads = True
        # socketserver's default listen backlog is 5; a 256-connection
        # open storm needs more or the kernel resets the overflow.
        request_queue_size = max(args.max_queue, 1024)

    httpd = Server((args.host, args.port), Handler)
    host, port = httpd.server_address[:2]
    print(f"threaded reference listening on http://{host}:{port} "
          f"(quota {args.quota}, thread per connection)", flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
