"""Benchmark E2/E11 — Figure 3: resource characterization.

Times both protocols: full (nine timed baselines per app) and the
Section IV-C one-type-per-category shortcut, recording the speedup the
shortcut buys and the capacity error it introduces.
"""

import numpy as np

from repro.apps import GalaxyApp
from repro.cloud.catalog import ec2_catalog
from repro.core.characterization import characterize_resources
from repro.measurement.perf import PerfCounter


def test_bench_characterize_full(benchmark):
    catalog = ec2_catalog()
    perf = PerfCounter(seed=0)
    result = benchmark(characterize_resources, GalaxyApp(), catalog, perf,
                       method="full", seed=0)
    benchmark.extra_info["normalized_c4_large"] = round(
        result.normalized()["c4.large"], 2)


def test_bench_characterize_by_category(benchmark):
    catalog = ec2_catalog()
    perf = PerfCounter(seed=0)
    result = benchmark(characterize_resources, GalaxyApp(), catalog, perf,
                       method="by-category", seed=0)
    # Record the IV-C shortcut's deviation from the full protocol.
    full = characterize_resources(GalaxyApp(), catalog, perf,
                                  method="full", seed=0)
    err = np.abs(result.capacity_vector() / full.capacity_vector() - 1)
    benchmark.extra_info["max_extrapolation_error"] = float(err.max())
    assert err.max() < 0.10
