"""Benchmark E3 — Table III: catalog construction and Eq. 1.

Trivial by design; it exists so every paper artifact has a bench target
and records the configuration-space size alongside the timing.
"""

from repro.cloud.catalog import ec2_catalog
from repro.experiments import table3


def test_bench_table3_catalog(benchmark):
    catalog = benchmark(ec2_catalog)
    assert catalog.configuration_count() == 10_077_695
    benchmark.extra_info["configurations"] = catalog.configuration_count()


def test_bench_table3_render(benchmark, ctx):
    result = table3.run(ctx)
    text = benchmark(result.render)
    assert "c4.large" in text
