"""Replay a seeded chaos chain against the fleet, twice, under load.

The fleet's resilience story is only worth shipping if it is
*predictable*: the same faults, injected at the same offsets with the
same seed, must produce the same recovery behavior — and clients must
barely notice.  This benchmark boots a three-worker in-process fleet,
drives it with paced keep-alive HTTP clients, and replays the
``kill-hang-slow`` chaos chain (a SIGKILL, a SIGSTOP/SIGCONT hang, and
a slow shard) from :mod:`repro.fleet.chaos` — twice, same seed.

Acceptance, asserted in-process on every run:

* **deterministic timelines** — the per-worker normalized fault /
  ejection / re-admission event sequences are identical across the two
  runs, and match the expected recovery story exactly (the killed
  worker is ejected and re-admitted; the hung worker is ejected by
  heartbeat probes *during* the hang and re-admitted after SIGCONT;
  the slow shard is never ejected — probes are exempt from the
  injected per-frame delay, so slow is distinguished from hung);
* **deterministic answers** — every distinct query's planning response
  is byte-identical (modulo the ``cached`` flag) within a run and
  across both runs, no matter which worker served it;
* **availability** — at least ``AVAILABILITY_TARGET`` of non-shed
  requests succeed.  Load-shed responses (typed 503/429 with
  ``Retry-After``) are counted separately: shedding is the mechanism
  working, not a failure of it;
* **bounded tail** — client-observed p99 stays under ``P99_BOUND_S``
  even while workers die, hang, and crawl (``chaos_p99_s`` in the
  report; CI enforces it with ``compare_bench.py --require-max``).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_fleetchaos.py [--quick]
        [--output PATH]

Results land in ``BENCH_fleetchaos.json`` at the repository root.
``--quick`` drives fewer, more gently paced clients (the CI fleet-chaos
smoke mode); the chaos chain itself is never shortened — the fault
schedule is the contract under test.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.fleet.chaos import ChaosInjector, fleet_chaos_plan
from repro.fleet.frontend import FleetFrontend
from repro.fleet.hashing import HashRing, warm_key
from repro.fleet.supervisor import FleetConfig, PlannerFleet

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_fleetchaos.json"

APP = "galaxy"
QUOTA = 2
WORKERS = 3
CHAOS_SEED = 0
SEEDS_PER_WORKER = 2

#: Closed-loop keep-alive clients and their per-request pacing.  The
#: load generator shares one machine with the fleet it torments; pacing
#: keeps the event loops responsive so heartbeat probes measure the
#: *injected* faults, not generator-induced starvation.
CLIENTS = 6
QUICK_CLIENTS = 3
PACING_S = 0.005
QUICK_PACING_S = 0.01

#: Probe cadence: worst-case hang detection is
#: ``max_missed * (interval + timeout)`` ≈ 1.2 s, comfortably inside
#: the chain's 2.0 s hang window even on a loaded single-core runner.
PROBE_INTERVAL_S = 0.1
PROBE_TIMEOUT_S = 0.5
PROBE_MAX_MISSED = 2

#: Per-worker in-flight cap.  During the hang window this is what
#: bounds how many requests pile up behind the stopped worker; the
#: rest are shed with a typed 503 + Retry-After instead of queueing.
MAX_INFLIGHT = 4
SHED_RETRY_AFTER_S = 0.05

#: Seconds of load to keep driving after the last worker is re-admitted
#: (proves the recovered fleet serves normally), and how long to wait
#: for that recovery.
POST_RECOVERY_S = 1.5
RECOVERY_DEADLINE_S = 60.0

AVAILABILITY_TARGET = 0.99
P99_BOUND_S = 3.0

#: The recovery story each worker's normalized timeline must tell.
#: ``w1`` is SIGKILLed (crash monitor respawns it), ``w2`` is hung
#: (probes eject it mid-hang, then re-admit after SIGCONT), ``w0`` is
#: slowed but never ejected — probes are exempt from the frame delay.
EXPECTED_TIMELINE = {
    "w1": ("fault-kill", "ejected", "readmitted"),
    "w2": ("fault-hang", "ejected", "fault-hang-end", "readmitted"),
    "w0": ("fault-slow", "fault-slow-end"),
}


def pick_seeds(per_worker: int = SEEDS_PER_WORKER) -> tuple[int, ...]:
    """Lowest seeds giving every worker ``per_worker`` warm keys.

    Chosen off the same ring the fleet routes with, so the chaos chain
    provably disturbs traffic on every shard: the killed, hung, and
    slowed workers each own live keys.
    """
    ring = HashRing([f"w{i}" for i in range(WORKERS)])
    counts = {worker: 0 for worker in ring.workers}
    chosen: list[int] = []
    seed = 0
    while any(count < per_worker for count in counts.values()):
        owner = ring.route(warm_key(APP, QUOTA, seed))
        if counts[owner] < per_worker:
            counts[owner] += 1
            chosen.append(seed)
        seed += 1
    return tuple(chosen)


SEEDS = pick_seeds()


def query_body(slot: int) -> dict:
    seed = SEEDS[slot % len(SEEDS)]
    return {"app": APP, "n": 65536.0 + float(slot), "a": 2000.0,
            "deadline_hours": 48.0, "budget_dollars": 350.0,
            "seed": seed, "top": 5}


def encode_post(body: dict) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    return (f"POST /v1/select HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode("ascii") + payload


_FRAMES = [encode_post(query_body(slot)) for slot in range(len(SEEDS))]


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    content_length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    body = await reader.readexactly(content_length) if content_length else b""
    return status, body


def canonical(body: bytes) -> str:
    """A response's identity: its JSON minus the volatile cache flag."""
    decoded = json.loads(body)
    decoded.pop("cached", None)
    return json.dumps(decoded, sort_keys=True)


def percentile(latencies: list[float], p: float) -> float:
    ordered = sorted(latencies)
    last = len(ordered) - 1
    return ordered[min(last, round(p / 100.0 * last))]


class LoadStats:
    """Tallies one run's client-side view of the chaos window."""

    def __init__(self) -> None:
        self.ok = 0
        self.shed = 0
        self.failed = 0
        self.failures: dict[str, int] = {}
        self.latencies: list[float] = []
        self.responses: dict[int, set[str]] = {}

    def availability(self) -> float:
        served = self.ok + self.failed
        return self.ok / served if served else 0.0


async def run_clients(port: int, stats: LoadStats, stop: asyncio.Event,
                      *, clients: int, pacing_s: float) -> None:
    """Paced keep-alive clients cycling the query catalog until ``stop``."""

    async def client(client_index: int) -> None:
        reader = writer = None
        slot = client_index  # stagger starting slots across clients
        while not stop.is_set():
            frame = _FRAMES[slot % len(_FRAMES)]
            t0 = time.perf_counter()
            try:
                if writer is None:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port)
                writer.write(frame)
                await writer.drain()
                status, body = await _read_response(reader)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                # The front end never drops keep-alive connections
                # mid-run; a reset here would itself be a finding.
                stats.failed += 1
                stats.failures["connection"] = \
                    stats.failures.get("connection", 0) + 1
                if writer is not None:
                    writer.close()
                reader = writer = None
                continue
            if status == 200:
                stats.ok += 1
                stats.latencies.append(time.perf_counter() - t0)
                stats.responses.setdefault(
                    slot % len(_FRAMES), set()).add(canonical(body))
            else:
                code = ""
                try:
                    code = json.loads(body)["error"]["code"]
                except (ValueError, KeyError, TypeError):
                    pass
                if code in ("overloaded", "too_many_requests"):
                    stats.shed += 1
                else:
                    stats.failed += 1
                    stats.failures[code or f"http_{status}"] = \
                        stats.failures.get(code or f"http_{status}", 0) + 1
            slot += clients
            await asyncio.sleep(pacing_s)
        if writer is not None:
            writer.close()

    await asyncio.gather(*(client(c) for c in range(clients)))


async def prewarm(fleet: PlannerFleet, port: int) -> float:
    """Warm every query on its owner *and* its first fallback.

    The owner warms through the front end (the production path); the
    fallback warms over its worker link directly.  With both warm, the
    timed window measures rerouting and recovery — the only cold warms
    left are the respawned worker's, which are exactly the recovery
    cost the benchmark exists to observe.
    """
    t0 = time.perf_counter()

    async def warm_slot(slot: int) -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(_FRAMES[slot])
            await writer.drain()
            status, body = await _read_response(reader)
            assert status == 200, f"prewarm slot {slot} -> HTTP {status}"
        finally:
            writer.close()
        key = warm_key(APP, QUOTA, SEEDS[slot])
        owner = fleet.ring.route(key)
        fallback = fleet.ring.route(key, exclude={owner})
        raw = json.dumps(query_body(slot)).encode("utf-8")
        status, _ = await fleet.link(fallback).call_raw("select", raw)
        assert status == 200, f"fallback prewarm slot {slot} -> {status}"

    await asyncio.gather(*(warm_slot(s) for s in range(len(SEEDS))))
    return time.perf_counter() - t0


async def wait_for_recovery(fleet: PlannerFleet) -> None:
    deadline = time.monotonic() + RECOVERY_DEADLINE_S
    while time.monotonic() < deadline:
        normalized = fleet.timeline.normalized()
        if all("readmitted" in normalized.get(worker, ())
               for worker in ("w1", "w2")):
            return
        await asyncio.sleep(0.1)
    raise AssertionError(
        f"fleet did not recover within {RECOVERY_DEADLINE_S:g}s: "
        f"{fleet.timeline.normalized()}")


async def chaos_run(run_index: int, cache_dir: str, *, clients: int,
                    pacing_s: float) -> dict:
    """One full boot → prewarm → chaos-under-load → recovery cycle."""
    config = FleetConfig(
        workers=WORKERS, port=0, quota=QUOTA, cache_dir=cache_dir,
        monitor_interval_s=0.2, connect_timeout_s=120.0,
        probe_interval_s=PROBE_INTERVAL_S, probe_timeout_s=PROBE_TIMEOUT_S,
        probe_max_missed=PROBE_MAX_MISSED)
    fleet = PlannerFleet(config)
    await fleet.start()
    frontend = FleetFrontend(
        fleet, host="127.0.0.1", port=0, max_inflight=MAX_INFLIGHT,
        shed_retry_after_s=SHED_RETRY_AFTER_S)
    await frontend.start()
    try:
        warm_s = await prewarm(fleet, frontend.port)
        assert fleet.timeline.events() == (), \
            f"faults before injection: {fleet.timeline.normalized()}"

        plan = fleet_chaos_plan("kill-hang-slow", workers=WORKERS,
                                seed=CHAOS_SEED)
        stats = LoadStats()
        stop = asyncio.Event()
        load = asyncio.ensure_future(run_clients(
            frontend.port, stats, stop, clients=clients,
            pacing_s=pacing_s))
        t0 = time.perf_counter()
        await ChaosInjector(fleet, plan).run()
        await wait_for_recovery(fleet)
        await asyncio.sleep(POST_RECOVERY_S)
        stop.set()
        await load
        wall = time.perf_counter() - t0

        for slot, seen in sorted(stats.responses.items()):
            assert len(seen) == 1, (
                f"run {run_index}: query slot {slot} got "
                f"{len(seen)} distinct responses")
        return {
            "run": run_index,
            "warm_s": round(warm_s, 4),
            "wall_s": round(wall, 4),
            "requests": stats.ok + stats.shed + stats.failed,
            "ok": stats.ok,
            "shed": stats.shed,
            "failed": stats.failed,
            "failures": stats.failures,
            "availability": round(stats.availability(), 6),
            "chaos_p50_s": round(percentile(stats.latencies, 50), 6),
            "chaos_p99_s": round(percentile(stats.latencies, 99), 6),
            "max_latency_s": round(max(stats.latencies), 6),
            "timeline": {worker: list(kinds) for worker, kinds
                         in sorted(fleet.timeline.normalized().items())},
            "responses": {slot: next(iter(seen)) for slot, seen
                          in sorted(stats.responses.items())},
        }
    finally:
        await frontend.stop()
        await fleet.stop()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_CLIENTS} clients at "
                             f"{QUICK_PACING_S * 1e3:g} ms pacing instead "
                             f"of {CLIENTS} at {PACING_S * 1e3:g} ms "
                             "(CI smoke mode); the chaos chain is "
                             "identical")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"report path (default {OUTPUT.name})")
    args = parser.parse_args()
    clients = QUICK_CLIENTS if args.quick else CLIENTS
    pacing_s = QUICK_PACING_S if args.quick else PACING_S

    plan = fleet_chaos_plan("kill-hang-slow", workers=WORKERS,
                            seed=CHAOS_SEED)
    print(f"chaos chain: {plan.name} over {WORKERS} workers, "
          f"horizon {plan.horizon_s:g}s, seeds {SEEDS}")
    # Both runs share one snapshot cache: warm-state rebuild is an
    # mmap, not a sweep, exactly as a production fleet shares one.
    cache_dir = tempfile.mkdtemp(prefix="bench-fleetchaos-")

    runs = []
    for run_index in (1, 2):
        run = asyncio.run(chaos_run(run_index, cache_dir,
                                    clients=clients, pacing_s=pacing_s))
        runs.append(run)
        print(f"run {run_index}: {run['requests']} requests "
              f"({run['ok']} ok, {run['shed']} shed, "
              f"{run['failed']} failed), availability "
              f"{run['availability']:.4f}, p50 "
              f"{run['chaos_p50_s'] * 1e3:.1f} ms, p99 "
              f"{run['chaos_p99_s'] * 1e3:.1f} ms")
        assert run["timeline"] == {w: list(k) for w, k
                                   in EXPECTED_TIMELINE.items()}, (
            f"run {run_index} timeline diverged from the recovery "
            f"contract: {run['timeline']}")
        assert run["availability"] >= AVAILABILITY_TARGET, (
            f"run {run_index}: availability {run['availability']:.4f} "
            f"< {AVAILABILITY_TARGET} (failures: {run['failures']})")
        assert run["chaos_p99_s"] <= P99_BOUND_S, (
            f"run {run_index}: p99 {run['chaos_p99_s']:.3f}s exceeds "
            f"{P99_BOUND_S:g}s under chaos")

    assert runs[0]["timeline"] == runs[1]["timeline"], (
        "fault/ejection/re-admission timelines differ across same-seed "
        f"runs:\n{runs[0]['timeline']}\n{runs[1]['timeline']}")
    assert runs[0]["responses"] == runs[1]["responses"], (
        "planning responses differ across same-seed runs")
    print("determinism: timelines and responses identical across runs")

    report = {
        "app": APP,
        "quota": QUOTA,
        "workers": WORKERS,
        "seeds": list(SEEDS),
        "clients": clients,
        "pacing_s": pacing_s,
        "plan": plan.to_dict(),
        "probe": {"interval_s": PROBE_INTERVAL_S,
                  "timeout_s": PROBE_TIMEOUT_S,
                  "max_missed": PROBE_MAX_MISSED},
        "max_inflight": MAX_INFLIGHT,
        "availability_target": AVAILABILITY_TARGET,
        "p99_bound_s": P99_BOUND_S,
        "chaos_p99_s": max(run["chaos_p99_s"] for run in runs),
        "availability": min(run["availability"] for run in runs),
        "timelines_identical": True,
        "responses_identical": True,
        "timeline": runs[0]["timeline"],
        "runs": [{k: v for k, v in run.items() if k != "responses"}
                 for run in runs],
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
