"""Benchmark E6 — Figure 5: fixed-time problem-size scaling sweeps.

Also times the underlying O(log S) index queries that make the sweeps
cheap (vs re-scanning 10M configurations per point).
"""

import numpy as np

from repro.experiments import figure5


def test_bench_figure5_experiment(benchmark, warm_ctx):
    result = benchmark.pedantic(figure5.run, args=(warm_ctx,), rounds=3,
                                iterations=1)
    assert len(result.panels) == 2


def test_bench_min_cost_index_build(benchmark, warm_ctx):
    """One-off index construction over the 10M-row evaluation."""
    from repro.core.optimizer import MinCostIndex

    evaluation = warm_ctx.celia.evaluation(warm_ctx.app("galaxy"))
    index = benchmark.pedantic(MinCostIndex, args=(evaluation,), rounds=3,
                               iterations=1)
    assert index.max_capacity_gips > 0


def test_bench_min_cost_query(benchmark, warm_ctx):
    """A single optimal-configuration query (binary search)."""
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    index = celia.min_cost_index(app)
    demand = celia.demand_gi(app, 65_536, 8_000)
    answer = benchmark(index.query, demand, 24.0)
    assert answer.cost_dollars > 0


def test_bench_min_cost_sweep(benchmark, warm_ctx):
    """Vectorized 1000-point demand sweep at one deadline."""
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    index = celia.min_cost_index(app)
    demands = np.linspace(1e5, 2e7, 1000)
    costs = benchmark(index.sweep, demands, 24.0)
    assert np.isfinite(costs).any()
