"""Benchmark E5 — Figure 4: the 10,077,695-configuration selection.

The reproduction's heaviest kernel: evaluate the whole space (Eq. 2/5
per configuration), count the feasible set, and extract the Pareto
frontier.  Throughput is reported as configurations/second.
"""

from repro.core.selection import select_configurations
from repro.experiments import figure4


def test_bench_space_evaluation(benchmark, warm_ctx):
    """Raw Eq. 3/6 reduction of the full space (one matmul pass)."""
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    capacities = celia.capacities(app)
    evaluation = benchmark.pedantic(
        celia.space.evaluate, args=(capacities,), rounds=3, iterations=1)
    size = evaluation.space.size
    benchmark.extra_info["configurations"] = size
    benchmark.extra_info["configs_per_second"] = int(
        size / benchmark.stats.stats.mean)


def test_bench_selection_galaxy(benchmark, warm_ctx):
    """Algorithm 1 for galaxy(65536, 8000), T'=24 h, C'=$350."""
    celia = warm_ctx.celia
    app = warm_ctx.app("galaxy")
    evaluation = celia.evaluation(app)
    demand = celia.demand_gi(app, 65_536, 8_000)
    result = benchmark.pedantic(
        select_configurations, args=(evaluation, demand, 24.0, 350.0),
        rounds=3, iterations=1)
    benchmark.extra_info["feasible"] = result.feasible_count
    benchmark.extra_info["pareto"] = result.pareto_count
    assert 4_500_000 < result.feasible_count < 7_000_000


def test_bench_selection_sand(benchmark, warm_ctx):
    """Algorithm 1 for sand(8192 M, 0.32), T'=24 h, C'=$350."""
    celia = warm_ctx.celia
    app = warm_ctx.app("sand")
    evaluation = celia.evaluation(app)
    demand = celia.demand_gi(app, 8_192e6, 0.32)
    result = benchmark.pedantic(
        select_configurations, args=(evaluation, demand, 24.0, 350.0),
        rounds=3, iterations=1)
    benchmark.extra_info["feasible"] = result.feasible_count
    benchmark.extra_info["pareto"] = result.pareto_count


def test_bench_figure4_experiment(benchmark, warm_ctx):
    """The full two-panel experiment including scatter sampling."""
    result = benchmark.pedantic(figure4.run, args=(warm_ctx,),
                                kwargs={"scatter_sample": 5000},
                                rounds=1, iterations=1)
    lo, hi = result.case("galaxy").selection.cost_span
    benchmark.extra_info["galaxy_cost_span"] = f"${lo:.0f}-${hi:.0f}"
