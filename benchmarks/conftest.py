"""Shared benchmark fixtures.

A single session-scoped :class:`ExperimentContext` backs all benchmarks;
app caches (characterization, space evaluation, query indexes) are
prewarmed where a benchmark times only the downstream analysis, and hit
cold where enumerating the space *is* the thing being measured.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(seed=42)


@pytest.fixture(scope="session")
def warm_ctx(ctx) -> ExperimentContext:
    """Context with demand models, capacities, evaluations and min-cost
    indexes already built for all three applications."""
    for app in ctx.apps.values():
        ctx.celia.demand_model(app)
        ctx.celia.characterization(app)
        ctx.celia.evaluation(app)
        ctx.celia.min_cost_index(app)
    return ctx
