#!/usr/bin/env python
"""Accuracy-for-cost trade-off in genome assembly (sand).

A bioinformatics lab assembles an 8.192-billion-candidate dataset and
must choose the alignment quality threshold ``t``: higher thresholds
give better assemblies but cost more.  Because sand's demand grows only
*logarithmically* with ``t``, large accuracy gains are cheap — the
paper's Figure 6(b) finding that going from t = 0.64 to t = 1.0 (1.6×
accuracy) costs only ~20% more.

The example quantifies that trade-off with CELIA, then runs the real
k-mer + banded-alignment kernel at two thresholds on a small synthetic
read set to show the recall/precision effect of ``t`` on actual data.

Run:  python examples/genome_assembly_budget.py
"""

import numpy as np

from repro import Celia, SandApp, ec2_catalog
from repro.apps.kernels import assemble_candidates, synthetic_reads
from repro.errors import InfeasibleError

SEED = 31
N_SEQUENCES = 8_192e6
DEADLINE_HOURS = 48.0
THRESHOLDS = [0.1, 0.2, 0.32, 0.5, 0.64, 0.8, 1.0]


def main() -> None:
    catalog = ec2_catalog()
    celia = Celia(catalog, seed=SEED)
    app = SandApp(seed=SEED)
    index = celia.min_cost_index(app)

    print(f"sand: {N_SEQUENCES:,.0f} candidate sequences, "
          f"{DEADLINE_HOURS:g} h deadline")
    print(f"{'t':>5} {'demand [GI]':>14} {'min cost [$]':>12} "
          f"{'$ per accuracy point':>21}")

    costs = {}
    for t in THRESHOLDS:
        demand = celia.demand_gi(app, N_SEQUENCES, t)
        try:
            answer = index.query(demand, DEADLINE_HOURS)
        except InfeasibleError:
            print(f"{t:>5} {demand:>14,.0f} {'infeasible':>12}")
            continue
        costs[t] = answer.cost_dollars
        print(f"{t:>5} {demand:>14,.0f} {answer.cost_dollars:>12.2f} "
              f"{answer.cost_dollars / t:>21.2f}")

    if 0.64 in costs and 1.0 in costs:
        rel = costs[1.0] / costs[0.64] - 1.0
        print(f"\nimproving accuracy 1.6x (t 0.64 -> 1.0) costs only "
              f"+{rel:.0%} — the paper's Figure 6(b) finding")

    # Ground the threshold's meaning with the real alignment kernel.
    print("\nreal alignment kernel on 200 synthetic reads:")
    reads, starts, _ = synthetic_reads(200, read_length=64,
                                       genome_length=2048,
                                       error_rate=0.02, seed=SEED)
    for t in (0.4, 0.8):
        result = assemble_candidates(reads, np.asarray(starts), threshold=t)
        print(f"  t={t}: {result.candidate_pairs} candidate pairs, "
              f"{result.aligned_pairs} aligned, "
              f"recall {result.recall:.1%}, precision {result.precision:.1%}")
    print("  higher t -> stricter acceptance: precision rises while the "
          "k-mer filter bounds the extra work (logarithmic demand)")


if __name__ == "__main__":
    main()
