#!/usr/bin/env python
"""Quickstart: find cost-time optimal cloud configurations with CELIA.

This walks the full Figure-1 pipeline on the paper's setup:

1. characterize the galaxy (n-body) application's resource demand from
   scale-down runs on a (simulated) local server;
2. characterize the nine EC2 instance types' capacities from timed
   baselines;
3. search all 10,077,695 configurations for ones that run
   galaxy(65536, 8000) within a 24-hour deadline and a $350 budget;
4. print the Pareto frontier and the recommended (knee-point) pick.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Celia, GalaxyApp, ec2_catalog
from repro.pareto import knee_point_2d

SEED = 7
N_MASSES = 65_536
STEPS = 8_000
DEADLINE_HOURS = 24.0
BUDGET_DOLLARS = 350.0


def main() -> None:
    catalog = ec2_catalog()
    print(f"catalog: {len(catalog)} types, "
          f"{catalog.configuration_count():,} configurations")

    celia = Celia(catalog, seed=SEED)
    app = GalaxyApp()

    # Step 1-2: characterization (measured, cached inside the facade).
    fitted = celia.demand_model(app)
    print("\nfitted demand model:")
    print(fitted.describe())

    characterization = celia.characterization(app)
    print("\nmeasured capacities (GI/s per $/h):")
    for entry in characterization.entries:
        print(f"  {entry.type_name:12s} {entry.normalized_performance:6.2f}")

    # Step 3: Algorithm 1 over the full space.
    result = celia.select(app, N_MASSES, STEPS,
                          DEADLINE_HOURS, BUDGET_DOLLARS)
    print(f"\n{result.feasible_count:,} of "
          f"{result.total_configurations:,} configurations satisfy "
          f"T < {DEADLINE_HOURS:g} h and C < ${BUDGET_DOLLARS:g}")
    print(f"{result.pareto_count} Pareto-optimal configurations:")
    for p in result.pareto:
        print(f"  {list(p.configuration)}  T={p.time_hours:5.1f} h  "
              f"C=${p.cost_dollars:6.2f}")

    lo, hi = result.cost_span
    print(f"\nfrontier cost span ${lo:.0f}-${hi:.0f}: picking the cheapest "
          f"saves {result.max_saving_fraction:.0%} vs the dearest "
          f"(the paper's Observation 1)")

    # Step 4: recommend the knee of the frontier.
    times = np.array([p.time_hours for p in result.pareto])
    costs = np.array([p.cost_dollars for p in result.pareto])
    knee = result.pareto[knee_point_2d(times, costs)]
    print(f"\nrecommended trade-off (frontier knee): "
          f"{list(knee.configuration)} — {knee.time_hours:.1f} h, "
          f"${knee.cost_dollars:.2f}")


if __name__ == "__main__":
    main()
