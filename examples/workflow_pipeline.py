#!/usr/bin/env python
"""Planning a scientific workflow (DAG) on the cloud.

A media pipeline: ingest → {transcode farm, thumbnail farm} → package.
Unlike the paper's single elastic applications, stage dependencies put a
floor under the makespan (the critical path) that *no amount of capacity
removes* — so the Pareto frontier bends differently, and buying more
nodes stops helping at the latency wall.  This example plans the
workflow with the two-bound model, verifies the plan on the
discrete-event precedence scheduler, and shows the latency wall.

Run:  python examples/workflow_pipeline.py
"""

import numpy as np

from repro import GalaxyApp, ec2_catalog
from repro.cloud.provider import CloudProvider
from repro.engine.cluster import SimCluster
from repro.workflow import (
    Stage,
    WorkflowDAG,
    execute_workflow,
    predict_workflow,
    select_workflow_configurations,
)

SEED = 5


def build_pipeline() -> WorkflowDAG:
    stages = [
        Stage("ingest", n_tasks=1, task_gi=400.0),
        Stage("transcode", n_tasks=600, task_gi=60.0),
        Stage("thumbnails", n_tasks=600, task_gi=4.0),
        Stage("package", n_tasks=1, task_gi=300.0),
    ]
    edges = [("ingest", "transcode"), ("ingest", "thumbnails"),
             ("transcode", "package"), ("thumbnails", "package")]
    return WorkflowDAG(stages, edges)


def main() -> None:
    catalog = ec2_catalog(max_nodes_per_type=3)
    # Use the galaxy performance profile as this pipeline's rate model.
    app = GalaxyApp()
    capacities = np.array([app.true_rate_gips(t) for t in catalog])

    workflow = build_pipeline()
    path, cp_gi = workflow.critical_path()
    print(f"pipeline: {workflow.total_gi:,.0f} GI total, critical path "
          f"{' -> '.join(path)} ({cp_gi:,.0f} GI serial)")

    selection = select_workflow_configurations(
        workflow, catalog, capacities,
        deadline_hours=2.0, budget_dollars=10.0)
    print(f"\n{selection.feasible_count:,} of "
          f"{selection.total_configurations:,} configurations feasible; "
          f"frontier ({selection.pareto_count} points):")
    for p in selection.pareto[:8]:
        bound = "latency-bound" if p.latency_bound else "work-bound"
        print(f"  {list(p.configuration)}  {p.time_hours * 60:6.1f} min  "
              f"${p.cost_dollars:5.2f}  [{bound}]")

    # The latency wall: capacity beyond the knee buys nothing.
    print("\nthe latency wall (adding c4.2xlarge nodes):")
    for nodes in (1, 2, 3):
        config = np.zeros(len(catalog), dtype=int)
        config[0] = nodes
        pred = predict_workflow(workflow, config, catalog, capacities)
        print(f"  {nodes} node(s): predicted {pred.time_hours * 60:6.1f} min "
              f"(work bound {pred.work_bound_hours * 60:5.1f}, "
              f"critical path {pred.critical_path_bound_hours * 60:5.1f})")

    # Verify the cheapest frontier plan on the precedence scheduler.
    best = min(selection.pareto, key=lambda p: p.cost_dollars)
    provider = CloudProvider(catalog, seed=SEED)
    lease = provider.provision(best.configuration)
    cluster = SimCluster(lease.instances, app)
    report = execute_workflow(workflow, cluster,
                              rng=np.random.default_rng(SEED),
                              jitter_sigma=0.03)
    provider.terminate(lease, now_hours=report.makespan_hours)
    print(f"\nverifying {list(best.configuration)} on the DES scheduler:")
    print(f"  predicted (lower bound): {best.time_hours * 60:.1f} min")
    print(f"  simulated              : {report.makespan_hours * 60:.1f} min "
          f"(slot utilization {report.busy_fraction:.0%})")
    print(f"  stage completion order : {report.finish_order()}")


if __name__ == "__main__":
    main()
