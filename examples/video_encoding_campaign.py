#!/usr/bin/env python
"""Video-encoding campaign planner (x264) under a budget.

A streaming service must re-encode a 16,000-clip library and wants the
best *quality* (compression factor) it can afford: for each candidate
compression factor, find the fastest configuration within the budget,
then pick the highest factor that still meets the deadline — the
fixed-time, fixed-budget accuracy-scaling trade-off of Section IV-E.

The example also demonstrates the real encoder kernel: it encodes a
synthetic frame at the chosen factor and reports actual PSNR and
compression, grounding the "accuracy" knob in real computation.

Run:  python examples/video_encoding_campaign.py
"""

from repro import Celia, X264App, ec2_catalog
from repro.apps.kernels import encode_image, synthetic_frames
from repro.errors import InfeasibleError

SEED = 23
N_CLIPS = 16_000
BUDGET_DOLLARS = 60.0
DEADLINE_HOURS = 24.0
CANDIDATE_FACTORS = [10, 15, 20, 25, 30, 35, 40, 45, 50]


def main() -> None:
    catalog = ec2_catalog()
    celia = Celia(catalog, seed=SEED)
    app = X264App(seed=SEED)

    print(f"campaign: {N_CLIPS:,} clips, budget ${BUDGET_DOLLARS:g}, "
          f"deadline {DEADLINE_HOURS:g} h")
    print(f"{'f':>4} {'demand [GI]':>14} {'time [h]':>9} {'cost [$]':>9}  config")

    best_factor = None
    best_answer = None
    for factor in CANDIDATE_FACTORS:
        demand = celia.demand_gi(app, N_CLIPS, factor)
        try:
            answer = celia.min_time(app, N_CLIPS, factor, BUDGET_DOLLARS,
                                    deadline_hours=DEADLINE_HOURS)
        except InfeasibleError:
            print(f"{factor:>4} {demand:>14,.0f} {'—':>9} {'—':>9}  "
                  f"infeasible within budget+deadline")
            continue
        print(f"{factor:>4} {demand:>14,.0f} {answer.time_hours:>9.1f} "
              f"{answer.cost_dollars:>9.2f}  {list(answer.configuration)}")
        best_factor, best_answer = factor, answer

    if best_answer is None:
        print("\nno compression factor is affordable — raise the budget")
        return

    print(f"\nhighest affordable compression factor: f={best_factor} "
          f"({best_answer.time_hours:.1f} h, ${best_answer.cost_dollars:.2f} "
          f"on {list(best_answer.configuration)})")

    # Ground the choice in the real encoder kernel.
    frame = synthetic_frames(1, height=64, width=64, seed=SEED)[0]
    low = encode_image(frame, 10)
    chosen = encode_image(frame, best_factor)
    print("\nreal encoder kernel on a synthetic frame:")
    print(f"  f=10           : PSNR {low.psnr_db:5.1f} dB, "
          f"compression {low.accuracy:.1%}, {low.block_trials} RD trials/block")
    print(f"  f={best_factor:<13}: PSNR {chosen.psnr_db:5.1f} dB, "
          f"compression {chosen.accuracy:.1%}, "
          f"{chosen.block_trials} RD trials/block")
    print("  higher factor -> smaller output, lower PSNR, more encoder work "
          "(the paper's quadratic demand in f)")


if __name__ == "__main__":
    main()
