#!/usr/bin/env python
"""Splitting one budget across a portfolio of elastic runs.

A group has $150 and 48 hours, and three jobs that all want it: a galaxy
simulation, a sand assembly, and an x264 re-encode.  Each job's accuracy
is elastic — so how should the money be split to maximize total output
quality?  The campaign planner allocates greedily by marginal
quality-per-dollar over each job's exact cost curve, then the
tri-objective frontier shows what the winning job's quality tiers cost.

Run:  python examples/campaign_planner.py
"""

import numpy as np

from repro import Celia, GalaxyApp, SandApp, X264App, ec2_catalog
from repro.core.campaign import CampaignRun, plan_campaign
from repro.core.triobjective import tri_objective_frontier

SEED = 13
DEADLINE_HOURS = 48.0
BUDGET_DOLLARS = 150.0


def main() -> None:
    catalog = ec2_catalog()
    celia = Celia(catalog, seed=SEED)
    galaxy, sand, x264 = GalaxyApp(), SandApp(seed=SEED), X264App(seed=SEED)

    runs = [
        CampaignRun(
            name="galaxy-sim",
            app=galaxy,
            demand=celia.demand_model(galaxy),
            index=celia.min_cost_index(galaxy),
            problem_size=65_536,
            accuracy_levels=np.array([1000, 2000, 4000, 6000, 8000],
                                     dtype=float),
        ),
        CampaignRun(
            name="genome-assembly",
            app=sand,
            demand=celia.demand_model(sand),
            index=celia.min_cost_index(sand),
            problem_size=2_048e6,
            accuracy_levels=np.array([0.2, 0.4, 0.6, 0.8, 1.0]),
            weight=1.5,  # the assembly matters more to this group
        ),
        CampaignRun(
            name="video-reencode",
            app=x264,
            demand=celia.demand_model(x264),
            index=celia.min_cost_index(x264),
            problem_size=8_000,
            accuracy_levels=np.array([10, 20, 30, 40, 50], dtype=float),
        ),
    ]

    for budget in (40.0, BUDGET_DOLLARS, 400.0):
        plan = plan_campaign(runs, DEADLINE_HOURS, budget)
        print(plan.render())
        print()

    # Zoom into the winning run's quality tiers with the 3-D frontier.
    frontier = tri_objective_frontier(
        celia.evaluation(galaxy),
        celia.demand_model(galaxy),
        galaxy.accuracy_score,
        problem_size=65_536,
        accuracy_levels=np.array([2000, 4000, 6000, 8000], dtype=float),
        deadline_hours=24.0,
        budget_dollars=BUDGET_DOLLARS,
    )
    print(frontier.render())


if __name__ == "__main__":
    main()
