#!/usr/bin/env python
"""Spot market vs on-demand: is CELIA right to avoid spot instances?

The paper restricts CELIA to on-demand resources, arguing spot prices'
fluctuations "risk abrupt termination, thus, [make it] difficult to
guarantee time deadline satisfaction".  This study quantifies that
trade-off for the galaxy workload: run CELIA's optimal on-demand plan,
then simulate the *same configuration* bid on the spot market with
checkpointing, across bid levels — reporting the cost saving and the
probability of still making the deadline.

Run:  python examples/spot_market_study.py
"""

from repro import Celia, GalaxyApp, ec2_catalog
from repro.spot import CheckpointPolicy, compare_spot_vs_ondemand

SEED = 17
N_MASSES = 65_536
STEPS = 6_000
DEADLINE_HOURS = 30.0  # some slack over the ~24 h on-demand plan
TRIALS = 40


def main() -> None:
    catalog = ec2_catalog()
    celia = Celia(catalog, seed=SEED)
    app = GalaxyApp()

    demand = celia.demand_gi(app, N_MASSES, STEPS)
    ondemand = celia.min_cost(app, N_MASSES, STEPS, DEADLINE_HOURS)
    print(f"on-demand plan: {list(ondemand.configuration)} — "
          f"{ondemand.time_hours:.1f} h, ${ondemand.cost_dollars:.2f} "
          f"(guaranteed)")

    print(f"\nspot alternative ({TRIALS} Monte-Carlo runs per bid, "
          f"Young-interval checkpointing):")
    print(f"{'bid':>5} {'mean cost':>10} {'saving':>7} {'on-time':>8} "
          f"{'interrupts':>10} {'efficiency':>10}")
    for bid in (0.40, 0.50, 0.65, 0.80, 1.00):
        study = compare_spot_vs_ondemand(
            ondemand, demand, catalog, DEADLINE_HOURS,
            bid_fraction=bid, trials=TRIALS, seed=SEED)
        print(f"{bid:>5.0%} {study.mean_cost:>10.2f} "
              f"{study.mean_saving_fraction:>7.0%} "
              f"{study.on_time_probability:>8.0%} "
              f"{study.mean_interruptions:>10.1f} "
              f"{study.mean_efficiency:>10.0%}")

    print("\ncheckpointing ablation at bid 50%:")
    for label, policy in (
        ("none", CheckpointPolicy.none()),
        ("hourly", CheckpointPolicy(interval_hours=1.0)),
        ("Young (MTTI 8 h)", CheckpointPolicy.young(8.0)),
    ):
        study = compare_spot_vs_ondemand(
            ondemand, demand, catalog, DEADLINE_HOURS,
            bid_fraction=0.5, policy=policy, trials=TRIALS, seed=SEED)
        print(f"  {label:18s}: mean {study.mean_elapsed_hours:5.1f} h / "
              f"${study.mean_cost:6.2f}, on-time "
              f"{study.on_time_probability:4.0%}, "
              f"efficiency {study.mean_efficiency:4.0%}")

    print("\nconclusion: spot cuts cost dramatically but the deadline "
          "becomes a random variable — the paper's reason to optimize "
          "over on-demand resources only.")


if __name__ == "__main__":
    main()
