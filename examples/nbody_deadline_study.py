#!/usr/bin/env python
"""Deadline study for an n-body simulation campaign (galaxy).

A research group must deliver a 262,144-mass galaxy simulation and wants
to know what urgency costs: for deadlines from 72 h down to 6 h, what is
the cheapest cloud configuration, and how does the cost of tightening
compare to the time saved (the paper's Observation 3)?

The study then *verifies* the recommendation by actually executing the
chosen configuration on the discrete-event cloud engine and comparing
predicted vs simulated time and billed cost — the same validation loop
as the paper's Table IV.

Run:  python examples/nbody_deadline_study.py
"""

import numpy as np

from repro import Celia, GalaxyApp, ec2_catalog, run_on_configuration
from repro.core import deadline_tightening_study
from repro.errors import InfeasibleError

SEED = 11
N_MASSES = 262_144
STEPS = 1_000
DEADLINES = [72.0, 48.0, 24.0, 12.0, 6.0]


def main() -> None:
    catalog = ec2_catalog()
    celia = Celia(catalog, seed=SEED)
    app = GalaxyApp()

    demand = celia.demand_gi(app, N_MASSES, STEPS)
    print(f"galaxy({N_MASSES}, {STEPS}): estimated demand "
          f"{demand:,.0f} GI")

    index = celia.min_cost_index(app)
    study = deadline_tightening_study(index, demand, DEADLINES)

    print("\ndeadline -> cheapest configuration:")
    for deadline, cost, config in zip(study.deadlines_hours, study.costs,
                                      study.configurations):
        if config is None:
            print(f"  {deadline:5.0f} h : infeasible "
                  f"(not enough capacity in the whole catalog)")
        else:
            print(f"  {deadline:5.0f} h : ${cost:7.2f}  {list(config)}")

    try:
        reduction, increase = study.tightening(72.0, 24.0)
        print(f"\ntightening 72 h -> 24 h: deadline -{reduction:.0%}, "
              f"cost +{increase:.0%} "
              f"({'cheaper than proportional' if increase < reduction else 'NOT sub-proportional'})")
    except InfeasibleError:
        print("\n72 h -> 24 h comparison infeasible for this demand")

    # Verify the 24 h recommendation against the engine.  Plan against a
    # 10% tightened deadline: the paper's model errors reach ~17%, so a
    # prediction that lands exactly on the deadline would miss it about
    # half the time on the real (simulated) cloud.
    try:
        answer = index.query(demand, 24.0 * 0.9)
        margin_note = "planned with a 10% safety margin"
    except InfeasibleError:
        # The catalog cannot absorb the margin — plan on the raw deadline
        # and accept the risk the validation below quantifies.
        answer = index.query(demand, 24.0)
        margin_note = "no headroom for a safety margin; deadline is at risk"
    print(f"\nverifying {list(answer.configuration)} on the cloud engine "
          f"({margin_note})...")
    report = run_on_configuration(app, N_MASSES, STEPS,
                                  answer.configuration, catalog, seed=SEED)
    time_err = abs(answer.time_hours - report.time_hours) / report.time_hours
    cost_err = abs(answer.cost_dollars - report.cost_dollars) / report.cost_dollars
    print(f"  predicted: {answer.time_hours:5.1f} h  ${answer.cost_dollars:7.2f}")
    print(f"  simulated: {report.time_hours:5.1f} h  ${report.cost_dollars:7.2f}  "
          f"(billed, hourly quantized)")
    print(f"  errors: time {time_err:.1%}, cost {cost_err:.1%} "
          f"(paper's validation band: <17%)")
    print(f"  cluster utilization: {report.utilization:.1%}, "
          f"deadline met: {report.time_hours < 24.0}")

    # How accuracy would scale if the budget were spent differently:
    print("\nfixed 24 h deadline, varying step count (accuracy):")
    for steps in [500, 1000, 2000, 4000]:
        d = celia.demand_gi(app, N_MASSES, steps)
        try:
            a = index.query(d, 24.0)
            print(f"  s={steps:5d}: ${a.cost_dollars:7.2f} "
                  f"accuracy score {app.accuracy_score(steps):.2f}")
        except InfeasibleError:
            print(f"  s={steps:5d}: infeasible within 24 h")


if __name__ == "__main__":
    main()
