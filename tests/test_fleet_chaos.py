"""Fleet chaos: plan determinism, shedding, drain, and live ejection.

Three layers of coverage, cheapest first:

* pure units — fault/plan validation, step expansion, seeded
  frame-drop determinism;
* stub-fleet tests against :class:`FleetFrontend` (no subprocesses) —
  typed shed envelopes at the in-flight caps, the timeline endpoint,
  drain force-closing hung connections, and the worker's narrowed
  ``CancelledError`` handling;
* one end-to-end boot — a SIGSTOP hang on a real worker flows through
  probe ejection and SIGCONT re-admission exactly as the timeline
  contract promises.
"""

import asyncio
import json
import time

import pytest

from repro.errors import ValidationError
from repro.fleet.chaos import (
    FLEET_FAULT_KINDS,
    ChaosInjector,
    FleetChaosPlan,
    FleetFault,
    LinkFaults,
    fleet_chaos_names,
    fleet_chaos_plan,
)
from repro.fleet.frontend import FleetFrontend
from repro.fleet.health import FleetTimeline
from repro.service.planner import PlannerService, ServiceConfig


class TestFleetFault:
    def test_kind_catalog(self):
        assert FLEET_FAULT_KINDS == ("kill", "hang", "slow", "delay",
                                     "drop")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            FleetFault("w0", "explode", 1.0)

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(ValidationError):
            FleetFault("w0", "hang", 1.0)  # no duration
        with pytest.raises(ValidationError):
            FleetFault("w0", "slow", 1.0, duration_s=1.0)  # no delay
        with pytest.raises(ValidationError):
            FleetFault("w0", "drop", 1.0, duration_s=1.0)  # no rate
        with pytest.raises(ValidationError):
            FleetFault("w0", "drop", 1.0, duration_s=1.0, drop_rate=1.5)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValidationError):
            FleetFault("w0", "kill", -1.0)


class TestChaosPlan:
    def test_named_scenarios_build_for_any_fleet_size(self):
        for name in fleet_chaos_names():
            for workers in (1, 2, 3, 5):
                plan = fleet_chaos_plan(name, workers=workers, seed=3)
                assert plan.name == name
                assert plan.seed == 3
                assert all(int(f.worker[1:]) < workers
                           for f in plan.faults)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            fleet_chaos_plan("nope")

    def test_kill_hang_slow_is_the_bench_chain(self):
        plan = fleet_chaos_plan("kill-hang-slow", workers=3)
        assert [f.kind for f in plan.faults] == ["kill", "hang", "slow"]
        assert [f.worker for f in plan.faults] == ["w1", "w2", "w0"]
        assert plan.horizon_s == pytest.approx(7.5)

    def test_steps_expand_windows_in_time_order(self):
        plan = fleet_chaos_plan("kill-hang-slow", workers=3)
        steps = plan.steps()
        assert [(t, action) for t, action, _ in steps] == [
            (1.0, "kill"), (3.5, "hang-start"), (5.5, "hang-end"),
            (6.0, "slow-start"), (7.5, "slow-end")]

    def test_plans_compose(self):
        combined = fleet_chaos_plan("worker-kill") + \
            fleet_chaos_plan("slow-shard")
        assert combined.name == "worker-kill+slow-shard"
        assert len(combined.faults) == 2

    def test_to_dict_round_trip(self):
        plan = fleet_chaos_plan("frame-loss", seed=9)
        data = plan.to_dict()
        rebuilt = FleetChaosPlan(
            name=data["name"], seed=data["seed"],
            faults=tuple(FleetFault(**f) for f in data["faults"]))
        assert rebuilt == plan


class TestLinkFaults:
    def test_drop_pattern_is_seeded_per_worker(self):
        def pattern(seed, worker):
            faults = LinkFaults(drop_rate=0.3, seed=seed,
                                worker_id=worker)
            return [faults.drop() for _ in range(64)]

        assert pattern(0, "w1") == pattern(0, "w1")
        assert pattern(0, "w1") != pattern(1, "w1")
        assert pattern(0, "w1") != pattern(0, "w2")
        assert any(pattern(0, "w1"))
        assert not all(pattern(0, "w1"))

    def test_zero_rate_never_drops(self):
        faults = LinkFaults(delay_s=0.01)
        assert not any(faults.drop() for _ in range(32))


class FakeLink:
    """A controllable worker link for stub-fleet frontend tests."""

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.up = True
        self.faults = None
        self.gate: "asyncio.Event | None" = None
        self.calls = []

    async def call_raw(self, kind, payload=b"", *, timeout_s=None):
        self.calls.append((kind, payload))
        if self.gate is not None:
            await self.gate.wait()
        return 200, b'{"ok": true}'

    async def call(self, request, *, timeout_s=None):
        self.calls.append((request.get("kind"), request))
        return 200, {"ok": True}


class FakeFleet:
    """Single-worker routing surface with a timeline, no processes."""

    def __init__(self):
        self.links = {"w0": FakeLink("w0")}
        self.timeline = FleetTimeline()
        self.default_quota = 2
        self.default_seed = 0
        self.down = frozenset()
        self.warmed_apps = set()
        self.lost = []

    @property
    def worker_ids(self):
        return tuple(sorted(self.links))

    def route(self, key, *, exclude=frozenset()):
        return "w0"

    def link(self, worker_id):
        return self.links[worker_id]

    def note_lost(self, worker_id):
        self.lost.append(worker_id)

    def describe(self):
        return {"workers": []}


SELECT_RAW = json.dumps({"app": "galaxy", "n": 1024, "a": 100,
                         "deadline_hours": 4,
                         "budget_dollars": 10}).encode()


class TestFrontendShedding:
    def test_worker_cap_sheds_with_typed_503(self):
        async def run():
            fleet = FakeFleet()
            frontend = FleetFrontend(fleet, max_inflight=1,
                                     shed_retry_after_s=0.25)
            gate = asyncio.Event()
            fleet.links["w0"].gate = gate
            first = asyncio.ensure_future(
                frontend._handle_request("POST", "/v1/select",
                                         SELECT_RAW))
            await asyncio.sleep(0)  # let it occupy the worker slot
            status, body = await frontend._handle_request(
                "POST", "/v1/select", SELECT_RAW)
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retry_after_s"] == 0.25
            assert "in-flight cap 1" in body["error"]["message"]
            gate.set()
            status, raw = await first
            assert status == 200
            snapshot = frontend.metrics.snapshot()["counters"]
            assert snapshot["fleet_shed_total"] == 1

        asyncio.run(run())

    def test_total_cap_sheds_with_typed_429(self):
        async def run():
            fleet = FakeFleet()
            frontend = FleetFrontend(fleet, max_total_inflight=2)
            frontend._in_flight = 3  # as _serve_one would have set it
            status, body = await frontend._handle_request(
                "POST", "/v1/select", SELECT_RAW)
            assert status == 429
            assert body["error"]["code"] == "too_many_requests"
            assert body["error"]["retry_after_s"] == 1.0

        asyncio.run(run())

    def test_unbounded_by_default(self):
        async def run():
            fleet = FakeFleet()
            frontend = FleetFrontend(fleet)
            gate = asyncio.Event()
            fleet.links["w0"].gate = gate
            tasks = [asyncio.ensure_future(
                frontend._handle_request("POST", "/v1/select",
                                         SELECT_RAW))
                for _ in range(8)]
            await asyncio.sleep(0)
            gate.set()
            for task in tasks:
                status, _ = await task
                assert status == 200

        asyncio.run(run())

    def test_fallback_owner_is_also_capped(self):
        async def run():
            fleet = FakeFleet()
            frontend = FleetFrontend(fleet, max_inflight=1)
            # Occupy w0's slot, then reroute to it: still shed.
            gate = asyncio.Event()
            fleet.links["w0"].gate = gate
            holder = asyncio.ensure_future(
                frontend._handle_request("POST", "/v1/select",
                                         SELECT_RAW))
            await asyncio.sleep(0)
            from repro.fleet.rpc import WorkerGone
            status, body = await frontend._reroute(
                "k", "select", SELECT_RAW,
                lost=WorkerGone("w9", "dead"))
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            gate.set()
            await holder

        asyncio.run(run())


class TestFrontendTimelineAndHealth:
    def test_timeline_endpoint_serves_events_and_normalized(self):
        async def run():
            fleet = FakeFleet()
            fleet.timeline.record("fault-kill", "w1", at_s=1.0)
            fleet.timeline.record("ejected", "w1")
            frontend = FleetFrontend(fleet)
            status, body = await frontend._handle_request(
                "GET", "/fleet/timeline", b"")
            assert status == 200
            assert [e["kind"] for e in body["events"]] == \
                ["fault-kill", "ejected"]
            assert body["normalized"] == {
                "w1": ["fault-kill", "ejected"]}

        asyncio.run(run())

    def test_timeline_endpoint_tolerates_plain_fleets(self):
        async def run():
            fleet = FakeFleet()
            del fleet.timeline
            frontend = FleetFrontend(fleet)
            status, body = await frontend._handle_request(
                "GET", "/fleet/timeline", b"")
            assert status == 200
            assert body == {"events": [], "normalized": {}}

        asyncio.run(run())

    def test_ready_requires_expected_warm_and_no_ejections(self):
        async def run():
            fleet = FakeFleet()
            frontend = FleetFrontend(fleet, expected_warm=("galaxy",))
            health = await frontend._healthz()
            assert health["ready"] is False  # galaxy not warmed yet
            assert health["warm_ok"] is False
            fleet.warmed_apps.add("galaxy")
            health = await frontend._healthz()
            assert health["ready"] is True
            fleet.down = frozenset({"w0"})
            health = await frontend._healthz()
            assert health["ready"] is False
            assert health["ejected"] == ["w0"]

        asyncio.run(run())


class TestFrontendDrain:
    async def _open_client(self, frontend):
        return await asyncio.open_connection("127.0.0.1", frontend.port)

    def test_drain_force_closes_hung_connections(self):
        async def run():
            fleet = FakeFleet()
            fleet.links["w0"].gate = asyncio.Event()  # never set: hung
            frontend = FleetFrontend(fleet)
            await frontend.start()
            reader, writer = await self._open_client(frontend)
            writer.write(b"POST /v1/select HTTP/1.1\r\n"
                         b"Content-Length: %d\r\n\r\n%s"
                         % (len(SELECT_RAW), SELECT_RAW))
            deadline = time.monotonic() + 5
            while frontend.in_flight == 0:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.01)
            completed = await frontend.drain(timeout_s=0.2)
            assert completed is False
            assert not frontend._conn_tasks  # nothing leaked
            assert await reader.read() == b""  # connection closed
            writer.close()

        asyncio.run(run())

    def test_drain_closes_idle_keepalive_connections(self):
        async def run():
            fleet = FakeFleet()
            frontend = FleetFrontend(fleet)
            await frontend.start()
            reader, writer = await self._open_client(frontend)
            writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
            await reader.readuntil(b"\r\n\r\n")  # response head
            completed = await frontend.drain(timeout_s=5.0)
            assert completed is True
            assert not frontend._conn_tasks
            writer.close()

        asyncio.run(run())


class TestWorkerCancellation:
    """Satellite fix: CancelledError only swallowed while draining."""

    class FakeWriter:
        def __init__(self):
            self.closed = False

        def close(self):
            self.closed = True

        async def wait_closed(self):
            pass

    def make_worker(self):
        from repro.fleet.worker import ShardWorker

        service = PlannerService(config=ServiceConfig(
            default_quota=1, cache_dir=False))
        return ShardWorker(service, worker_id="w0",
                           socket_path="/nonexistent.sock")

    def test_midstream_cancellation_propagates(self):
        async def run():
            worker = self.make_worker()
            writer = self.FakeWriter()
            task = asyncio.ensure_future(
                worker._handle_connection(asyncio.StreamReader(), writer))
            await asyncio.sleep(0.01)  # parked on readline
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert task.cancelled()
            assert writer.closed  # cleanup still ran

        asyncio.run(run())

    def test_drain_cancellation_is_absorbed(self):
        async def run():
            worker = self.make_worker()
            worker._draining = True  # as stop() sets before teardown
            writer = self.FakeWriter()
            task = asyncio.ensure_future(
                worker._handle_connection(asyncio.StreamReader(), writer))
            await asyncio.sleep(0.01)
            task.cancel()
            await task  # completes normally: cancellation absorbed
            assert not task.cancelled()
            assert writer.closed

        asyncio.run(run())


class RecordingFleet(FakeFleet):
    """FakeFleet + the supervisor surface ChaosInjector needs."""

    def __init__(self):
        super().__init__()
        self.links["w1"] = FakeLink("w1")
        self.pids = {"w0": None, "w1": None}

    def worker_pid(self, worker_id):
        return self.pids[worker_id]


class TestChaosInjector:
    def test_slow_delay_drop_steps_drive_links_and_timeline(self):
        async def run():
            fleet = RecordingFleet()
            plan = FleetChaosPlan(name="net", seed=5, faults=(
                FleetFault("w1", "slow", 0.0, duration_s=0.01,
                           delay_s=0.05),
                FleetFault("w0", "delay", 0.0, duration_s=0.01,
                           delay_s=0.02),
                FleetFault("w0", "drop", 0.05, duration_s=0.01,
                           drop_rate=0.5),
            ))
            await ChaosInjector(fleet, plan).run()
            # The slow fault flipped the worker's __chaos__ knob on/off.
            chaos_calls = [req for kind, req in fleet.links["w1"].calls
                           if kind == "__chaos__"]
            assert [c["slow_s"] for c in chaos_calls] == [0.05, 0.0]
            # Link faults were installed and removed again.
            assert fleet.links["w0"].faults is None
            assert fleet.timeline.normalized() == {
                "w1": ("fault-slow", "fault-slow-end"),
                "w0": ("fault-delay", "fault-delay-end", "fault-drop",
                       "fault-drop-end"),
            }
            # Scheduled offsets, not wall times, land in the events.
            offsets = {e.kind: e.at_s for e in fleet.timeline.events()}
            assert offsets["fault-drop"] == pytest.approx(0.05)
            assert offsets["fault-drop-end"] == pytest.approx(0.06)

        asyncio.run(run())

    def test_vanished_target_is_recorded_not_fatal(self):
        async def run():
            fleet = RecordingFleet()  # pids are None: nothing to kill
            plan = FleetChaosPlan(name="k", faults=(
                FleetFault("w1", "kill", 0.0),))
            await ChaosInjector(fleet, plan).run()
            kinds = fleet.timeline.normalized()["w1"]
            assert kinds == ("fault-kill", "fault-kill-missed")

        asyncio.run(run())


class TestHangEjectionEndToEnd:
    def test_sigstop_worker_is_ejected_then_readmitted(self):
        from tests.test_fleet import boot_fleet, fleet_config

        async def run():
            config = fleet_config(
                workers=2, probe_interval_s=0.1, probe_timeout_s=0.3,
                probe_max_missed=2, call_timeout_s=2.0)
            fleet, frontend = await boot_fleet(config)
            try:
                plan = FleetChaosPlan(name="hang-test", faults=(
                    FleetFault("w1", "hang", 0.0, duration_s=1.5),))
                await ChaosInjector(fleet, plan).run()
                # The hang window has passed; probes must now readmit.
                deadline = time.monotonic() + 30
                want = ("fault-hang", "ejected", "fault-hang-end",
                        "readmitted")
                while time.monotonic() < deadline:
                    if fleet.timeline.normalized().get("w1") == want:
                        break
                    await asyncio.sleep(0.1)
                assert fleet.timeline.normalized()["w1"] == want
                # The worker was never killed: same pid throughout.
                assert fleet.describe()["workers"][1]["alive"]
            finally:
                await frontend.stop()
                await fleet.stop()

        asyncio.run(run())
