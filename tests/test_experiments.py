"""Integration tests: every paper artifact regenerates with the right shape.

One session-scoped :class:`ExperimentContext` is shared by all tests here,
so the three 10M-configuration evaluations happen once.  Assertions target
the paper's qualitative claims (shapes, orderings, bands) and the
headline quantities with generous tolerances — the reproduction matches
shapes, not testbed-exact numbers (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    observations,
    table3,
    table4,
)
from repro.experiments.common import ExperimentContext, category_slices


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=42)


class TestTable3(object):
    def test_catalog_and_space(self, ctx):
        result = table3.run(ctx)
        assert result.configuration_count == 10_077_695
        text = result.render()
        assert "c4.large" in text and "0.105" in text
        assert "10,077,695" in text


class TestFigure2:
    def test_all_six_shapes(self, ctx):
        result = figure2.run(ctx)
        assert len(result.panels) == 6
        shape = {(p.app_name, p.axis): p.fitted_kind for p in result.panels}
        assert shape[("x264", "n")] in ("linear", "power")
        assert shape[("x264", "a")] == "quadratic"
        assert shape[("galaxy", "n")] in ("quadratic", "power")
        assert shape[("galaxy", "a")] == "linear"
        assert shape[("sand", "n")] in ("linear", "power")
        assert shape[("sand", "a")] == "log"

    def test_fits_are_tight(self, ctx):
        result = figure2.run(ctx)
        for p in result.panels:
            assert p.fit_r2 > 0.99

    def test_series_increase_with_fixed_parameter(self, ctx):
        result = figure2.run(ctx)
        for p in result.panels:
            lo, hi = p.series_gi[0], p.series_gi[-1]
            assert np.all(hi >= lo)  # more accuracy/size -> more demand

    def test_render(self, ctx):
        text = figure2.run(ctx).render()
        assert "galaxy demand vs s" in text


class TestFigure3:
    def test_category_ratios(self, ctx):
        result = figure3.run(ctx)
        for app_name, ch in result.by_app.items():
            from repro.cloud.instance import ResourceCategory

            ratios = ch.category_ratios(ResourceCategory.MEMORY)
            assert ratios[ResourceCategory.COMPUTE] == pytest.approx(2.0,
                                                                     rel=0.12)
            assert ratios[ResourceCategory.GENERAL] == pytest.approx(1.5,
                                                                     rel=0.12)

    def test_normalized_ordering_sand_highest(self, ctx):
        """Figure 3: sand achieves the highest GI/s per dollar."""
        result = figure3.run(ctx)
        for entry_index in range(9):
            sand_norm = result.by_app["sand"].entries[entry_index]
            galaxy_norm = result.by_app["galaxy"].entries[entry_index]
            assert sand_norm.normalized_performance > \
                galaxy_norm.normalized_performance

    def test_render(self, ctx):
        text = figure3.run(ctx).render()
        assert "GI/s per $/h" in text
        assert "within-category spread" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return table4.run(ctx)

    def test_nine_rows(self, result):
        assert len(result.rows) == 9

    def test_errors_within_paper_band(self, result):
        """Paper max errors: 9.5 / 13.1 / 16.7 percent per app."""
        for row in result.rows:
            assert row.max_error_percent < 18.0

    def test_embarrassingly_parallel_app_validates_best(self, result):
        assert result.max_error_for("x264") < result.max_error_for("galaxy") + 5

    def test_predicted_galaxy_cells_match_paper(self, result):
        """The paper's predicted galaxy(65536, 8000) row: 24 h, $126."""
        row = [r for r in result.rows
               if r.app_name == "galaxy" and r.a == 8_000][0]
        assert row.predicted_hours == pytest.approx(24.0, rel=0.06)
        assert row.predicted_cost == pytest.approx(126.0, rel=0.06)

    def test_render(self, result):
        text = result.render()
        assert "max error" in text
        assert "galaxy(65536,8000)" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return figure4.run(ctx, scatter_sample=1000)

    def test_feasible_counts_in_paper_band(self, result):
        galaxy_case = result.case("galaxy")
        sand_case = result.case("sand")
        # Paper: ~5.8M and ~2M feasible of 10,077,695.
        assert 4_500_000 < galaxy_case.feasible_count < 7_000_000
        assert 1_000_000 < sand_case.feasible_count < 3_500_000

    def test_multiple_pareto_points(self, result):
        # Paper: 23 (galaxy) and 58 (sand) — require the same order.
        assert 10 <= result.case("galaxy").pareto_count <= 120
        assert 10 <= result.case("sand").pareto_count <= 120

    def test_cost_span_ratios(self, result):
        lo, hi = result.case("galaxy").selection.cost_span
        assert hi / lo == pytest.approx(1.3, abs=0.15)
        lo, hi = result.case("sand").selection.cost_span
        assert hi / lo == pytest.approx(1.2, abs=0.15)

    def test_scatter_sample_feasible(self, result):
        case = result.case("galaxy")
        assert np.all(case.sample_times_hours < 24.0)
        assert np.all(case.sample_costs < 350.0)

    def test_render(self, result):
        text = result.render()
        assert "Pareto-optimal" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return figure5.run(ctx)

    def test_cost_grows_with_problem_size(self, result):
        for panel in result.panels:
            curve = panel.curves[72.0]
            costs = curve.costs[np.isfinite(curve.costs)]
            assert np.all(np.diff(costs) > 0)

    def test_tighter_deadline_never_cheaper(self, result):
        for panel in result.panels:
            matrix = panel.costs_matrix()  # rows: deadlines ascending
            # cost(6h) >= cost(12h) >= ... >= cost(72h) pointwise.
            for col in range(matrix.shape[1]):
                finite = matrix[np.isfinite(matrix[:, col]), col]
                assert np.all(np.diff(finite) <= 1e-9)

    def test_galaxy_superlinear_sand_linear(self, result):
        """Figure 5's shapes: quadratic-ish for galaxy, linear for sand."""
        g = result.panel("galaxy").curves[72.0]
        ratio_g = g.costs[-1] / g.costs[0]
        size_ratio = g.parameter_values[-1] / g.parameter_values[0]
        assert ratio_g > size_ratio * 2  # much faster than linear
        s = result.panel("sand").curves[72.0]
        ratio_s = s.costs[-1] / s.costs[0]
        size_ratio_s = s.parameter_values[-1] / s.parameter_values[0]
        assert ratio_s == pytest.approx(size_ratio_s, rel=0.25)

    def test_tight_deadlines_become_infeasible_at_scale(self, result):
        g6 = result.panel("galaxy").curves[6.0]
        assert np.isinf(g6.costs[-1])  # n=262144 cannot fit in 6 h

    def test_render(self, result):
        assert "min cost" in result.render()


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return figure6.run(ctx)

    def test_galaxy_cost_linear_in_steps_before_spill(self, result):
        panel = result.panel("galaxy")
        curve = panel.curves[72.0]
        costs = curve.costs[:4]
        steps = panel.accuracies[:4]
        # Roughly proportional in the pre-spill region.
        np.testing.assert_allclose(costs / costs[0], steps / steps[0],
                                   rtol=0.15)

    def test_sand_cost_sublinear_in_threshold(self, result):
        panel = result.panel("sand")
        curve = panel.curves[72.0]
        finite = np.isfinite(curve.costs)
        costs = curve.costs[finite]
        ts = panel.accuracies[finite]
        # Logarithmic: doubling t raises cost by much less than 2x.
        assert costs[-1] / costs[0] < (ts[-1] / ts[0]) * 0.6

    def test_sand_figure6b_headline(self, result):
        """~1.6x accuracy (t 0.6 -> 1.0) for only ~20-30% more cost."""
        panel = result.panel("sand")
        curve = panel.curves[72.0]
        t = panel.accuracies.tolist()
        c60, c100 = curve.costs[t.index(0.6)], curve.costs[t.index(1.0)]
        assert c100 / c60 - 1 == pytest.approx(0.21, abs=0.12)

    def test_galaxy_spill_matches_gradient_break(self, result):
        """Observation 2: gradient jumps exactly at category spills."""
        panel = result.panel("galaxy")
        curve = panel.curves[24.0]
        spills = set(panel.spill_indices[24.0])
        assert spills, "expected at least one spill on the 24 h curve"
        breaks = set(curve.gradient_break_indices(rel_jump=0.1))
        assert spills & breaks, (spills, breaks)

    def test_galaxy_24h_configs_match_paper_annotations(self, result):
        """Paper Fig 6(a): at s=6000 the optimum is all-c4 [5,5,5,0,...];
        at s=8000 it spills into m4."""
        panel = result.panel("galaxy")
        curve = panel.curves[24.0]
        s = panel.accuracies.tolist()
        config_6000 = curve.configurations[s.index(6000)]
        assert config_6000[:3] == (5, 5, 5) or sum(config_6000[3:]) <= 1
        config_8000 = curve.configurations[s.index(8000)]
        assert sum(config_8000[3:6]) > 0  # m4 nodes in use

    def test_render(self, result):
        text = result.render()
        assert "config @24hr" in text


class TestObservations:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return observations.run(ctx)

    def test_observation1_savings_band(self, result):
        # Paper: up to 30% (galaxy), ~20% (sand).
        assert 0.10 < result.obs1.saving_fraction["galaxy"] < 0.40
        assert 0.05 < result.obs1.saving_fraction["sand"] < 0.35

    def test_observation2_elasticity_exceeds_one_after_spill(self, result):
        for app in ("galaxy", "sand"):
            assert result.obs2.elasticity_after_spill[app] > 1.05
            assert result.obs2.elasticity_after_spill[app] > \
                result.obs2.elasticity_before_spill[app]

    def test_observation3_headlines(self, result):
        f, t, reduction, increase = result.obs3.headline["galaxy"]
        assert reduction == pytest.approx(2 / 3, rel=1e-6)
        # Paper: +40%; band allows measurement-seed variation.
        assert 0.25 < increase < 0.55
        assert increase < reduction
        f, t, reduction, increase = result.obs3.headline["sand"]
        assert increase < reduction

    def test_observation3_universal(self, result):
        for study in result.obs3.studies.values():
            assert study.increase_always_smaller_than_reduction()

    def test_render(self, result):
        text = result.render()
        assert "Observation 1" in text
        assert "holds" in text


class TestCommon:
    def test_category_slices(self, ctx):
        slices = category_slices(ctx.catalog)
        assert slices == [slice(0, 3), slice(3, 6), slice(6, 9)]

    def test_app_lookup(self, ctx):
        assert ctx.app("galaxy").name == "galaxy"
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ctx.app("nope")


class TestSensitivityExperiment:
    def test_regret_small_at_paper_error(self, ctx):
        from repro.experiments import sensitivity_exp

        result = sensitivity_exp.run(ctx)
        by_eps = {p.epsilon: p for p in result.result.points}
        # At Table IV's worst error (17%), mean regret stays small.
        assert by_eps[0.17].mean_regret < 0.10
        # Regret is monotone-ish in the error scale at the extremes.
        assert by_eps[0.25].mean_regret >= by_eps[0.02].mean_regret
        assert "regret" in result.render()


class TestRegistryCli:
    def test_list(self, capsys):
        from repro.experiments.registry import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "ablations" in out

    def test_run_one_with_output_dir(self, capsys, tmp_path):
        from repro.experiments.registry import main

        code = main(["table3", "--output-dir", str(tmp_path)])
        assert code == 0
        written = tmp_path / "table3.txt"
        assert written.exists()
        assert "c4.large" in written.read_text()

    def test_unknown_experiment(self):
        from repro.experiments.registry import main

        with pytest.raises(SystemExit):
            main(["figure99"])


class TestSchedulersExperiment:
    def test_granularity_and_strategy_ordering(self, ctx):
        from repro.experiments import schedulers_exp

        result = schedulers_exp.run(ctx)
        # Fine chunking shrinks the work-queue tail.
        assert result.overhead("work queue, fine 128k") < \
            result.overhead("work queue, coarse 1M")
        # The LPT oracle is the best strategy at each granularity.
        for label in ("coarse 1M", "fine 128k"):
            assert result.overhead(f"LPT oracle, {label}") <= \
                result.overhead(f"work queue, {label}") + 1e-9
        # Everything is slower than ideal.
        for name in result.outcomes:
            assert result.overhead(name) >= -1e-9
        assert "Engine ablation" in result.render()


class TestAblationsExperiment:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        from repro.experiments import ablations

        return ablations.run(ctx)

    def test_exhaustive_is_optimal(self, result):
        gaps = {o.strategy: o.optimality_gap for o in result.search
                if o.found}
        assert gaps["exhaustive"] == 0.0
        for name, gap in gaps.items():
            assert gap >= -1e-9, name

    def test_spec_errors_per_app(self, result):
        lo, hi = result.spec_errors["galaxy"]
        assert lo > 0.3  # spec grossly over-promises for galaxy
        lo, hi = result.spec_errors["sand"]
        assert hi < 0.0  # and under-promises for sand

    def test_spot_saves_but_risks(self, result):
        assert result.spot.mean_saving_fraction > 0.3
        assert result.spot.on_time_probability < 1.0

    def test_autoscale_story(self, result):
        static_cost, reactive_cost, rescued = result.autoscale
        assert static_cost <= reactive_cost * 1.10
        assert rescued  # the autoscaler recovers the underestimated run

    def test_render(self, result):
        text = result.render()
        assert "A1" in text and "A2" in text and "A4" in text


class TestAdaptiveExperiment:
    """The adaptive experiment's aggregation and rendering.

    Full ``run(ctx)`` executes 30 controller runs and is covered by
    benchmarks/bench_runtime.py; here one cheap calm cell exercises the
    cell aggregation and the report plumbing end to end.
    """

    @pytest.fixture(scope="class")
    def cell(self, ctx):
        from repro.cloud.catalog import ec2_catalog
        from repro.core.celia import Celia
        from repro.experiments import adaptive_exp

        celia = Celia(ec2_catalog(max_nodes_per_type=2), seed=ctx.seed)
        return adaptive_exp.run_cell(
            celia, ctx.app("galaxy"), "calm", adaptive=False,
            seed=ctx.seed, trials=1)

    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "adaptive" in EXPERIMENTS

    def test_calm_static_cell_hits_deadline(self, cell):
        assert cell.trials == 1
        assert cell.deadline_hits == 1
        assert cell.hit_rate == 1.0
        assert cell.verdicts == ("met",)
        assert cell.replans == 0 and cell.degradations == 0
        assert cell.mean_overrun_dollars == 0.0
        assert 0 < cell.mean_cost_dollars <= 400.0
        assert 0 < cell.mean_elapsed_hours <= 40.0

    def test_render_and_series_shape(self, cell):
        from repro.experiments.adaptive_exp import AdaptiveExperimentResult

        result = AdaptiveExperimentResult(outcomes=(cell,))
        text = result.render()
        assert "calm" in text and "static" in text
        assert "no silent overruns" in text
        series = result.to_series()
        assert series["problem"]["deadline_hours"] == 40.0
        (row,) = series["outcomes"]
        assert row["scenario"] == "calm" and row["mode"] == "static"
        assert row["verdicts"] == ["met"]
