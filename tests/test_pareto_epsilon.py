"""Tests for the ε-nondomination sorter (pareto.py reimplementation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pareto.epsilon import EpsilonArchive, eps_sort


def brute_force_pareto(rows: np.ndarray) -> set[tuple[float, ...]]:
    """Exact nondominated set by pairwise comparison (deduplicated)."""
    out = set()
    for i, a in enumerate(rows):
        dominated = False
        for j, b in enumerate(rows):
            if i == j:
                continue
            if np.all(b <= a) and np.any(b < a):
                dominated = True
                break
        if not dominated:
            out.add(tuple(a))
    return out


class TestExactArchive:
    def test_single_row_accepted(self):
        archive = EpsilonArchive(2)
        assert archive.sortinto([1.0, 2.0])
        assert len(archive) == 1

    def test_dominated_row_rejected(self):
        archive = EpsilonArchive(2)
        archive.sortinto([1.0, 1.0])
        assert not archive.sortinto([2.0, 2.0])
        assert len(archive) == 1

    def test_dominating_row_evicts(self):
        archive = EpsilonArchive(2)
        archive.sortinto([2.0, 2.0], tag="old")
        assert archive.sortinto([1.0, 1.0], tag="new")
        assert len(archive) == 1
        assert archive.tags == ["new"]

    def test_incomparable_rows_coexist(self):
        archive = EpsilonArchive(2)
        archive.sortinto([1.0, 3.0])
        archive.sortinto([3.0, 1.0])
        assert len(archive) == 2

    def test_duplicate_keeps_incumbent(self):
        archive = EpsilonArchive(2)
        archive.sortinto([1.0, 1.0], tag="first")
        assert not archive.sortinto([1.0, 1.0], tag="second")
        assert archive.tags == ["first"]

    def test_wrong_shape_rejected(self):
        archive = EpsilonArchive(2)
        with pytest.raises(ValueError):
            archive.sortinto([1.0])

    def test_non_finite_rejected(self):
        archive = EpsilonArchive(2)
        with pytest.raises(ValueError):
            archive.sortinto([np.inf, 1.0])

    def test_needs_at_least_one_objective(self):
        with pytest.raises(ValueError):
            EpsilonArchive(0)


class TestEpsilonBehaviour:
    def test_same_box_keeps_closest_to_corner(self):
        archive = EpsilonArchive(2, epsilons=[1.0, 1.0])
        archive.sortinto([0.9, 0.9], tag="far")
        assert archive.sortinto([0.1, 0.1], tag="near")
        assert archive.tags == ["near"]
        assert len(archive) == 1

    def test_same_box_rejects_farther_row(self):
        archive = EpsilonArchive(2, epsilons=[1.0, 1.0])
        archive.sortinto([0.1, 0.1], tag="near")
        assert not archive.sortinto([0.9, 0.9], tag="far")
        assert archive.tags == ["near"]

    def test_box_domination_evicts(self):
        archive = EpsilonArchive(2, epsilons=[1.0, 1.0])
        archive.sortinto([5.5, 5.5])
        assert archive.sortinto([0.5, 0.5])
        assert len(archive) == 1

    def test_epsilon_count_must_match(self):
        with pytest.raises(ValueError):
            EpsilonArchive(2, epsilons=[1.0])

    def test_epsilons_must_be_positive(self):
        with pytest.raises(ValueError):
            EpsilonArchive(2, epsilons=[1.0, 0.0])

    def test_coarse_epsilon_thins_frontier(self):
        # 100 points on a fine frontier, huge boxes -> few survivors.
        xs = np.linspace(0, 1, 100)
        rows = np.column_stack([xs, 1 - xs])
        exact_rows, _ = eps_sort(rows)
        coarse_rows, _ = eps_sort(rows, epsilons=[0.25, 0.25])
        assert len(coarse_rows) < len(exact_rows)
        assert len(coarse_rows) >= 1


class TestEpsSort:
    def test_empty_input(self):
        rows, tags = eps_sort(np.empty((0, 2)))
        assert rows.shape[0] == 0
        assert tags == []

    def test_default_tags_are_indices(self):
        rows, tags = eps_sort([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]])
        assert set(tags) == {0, 1}

    def test_custom_tags_align(self):
        rows, tags = eps_sort([[1.0, 3.0], [0.5, 4.0]],
                              tags=["a", "b"])
        assert set(tags) == {"a", "b"}

    def test_tag_length_mismatch(self):
        with pytest.raises(ValueError):
            eps_sort([[1.0, 2.0]], tags=["a", "b"])

    def test_matches_brute_force_on_fixed_set(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 10, size=(50, 2)).astype(float)
        sorted_rows, _ = eps_sort(rows)
        assert {tuple(r) for r in sorted_rows} == brute_force_pareto(rows)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)),
        min_size=1, max_size=40,
    ))
    def test_matches_brute_force_3d(self, points):
        rows = np.asarray(points, dtype=float)
        sorted_rows, _ = eps_sort(rows)
        assert {tuple(r) for r in sorted_rows} == brute_force_pareto(rows)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False),
                  st.floats(0, 100, allow_nan=False)),
        min_size=1, max_size=30,
    ))
    def test_archive_members_mutually_nondominated(self, points):
        rows, _ = eps_sort(np.asarray(points, dtype=float))
        for i in range(rows.shape[0]):
            for j in range(rows.shape[0]):
                if i == j:
                    continue
                a, b = rows[i], rows[j]
                assert not (np.all(a <= b) and np.any(a < b))
