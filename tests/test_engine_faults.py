"""Tests for fault-injected execution."""

import numpy as np
import pytest

from repro.apps.base import ExecutionStyle, Workload
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.engine.faults import FaultModel, simulate_with_failures
from repro.engine.schedulers import simulate_independent
from repro.errors import SimulationError


@pytest.fixture()
def cluster(ec2, x264):
    instances = [
        Instance(instance_id=f"i-{k}", itype=ec2.type_named("c4.large"))
        for k in range(3)
    ]
    return SimCluster(instances, x264)


def workload(n_tasks=100, gi=10.0) -> Workload:
    tasks = np.full(n_tasks, gi)
    return Workload(style=ExecutionStyle.INDEPENDENT,
                    total_gi=float(tasks.sum()), task_gi=tasks)


class TestFaultModel:
    def test_zero_rate_never_crashes(self):
        model = FaultModel(crash_rate_per_hour=0.0)
        times = model.sample_crash_seconds(np.random.default_rng(0), 5)
        assert np.all(np.isinf(times))

    def test_rate_scales_crash_times(self):
        rng = np.random.default_rng(1)
        fast = FaultModel(1.0).sample_crash_seconds(rng, 2000).mean()
        rng = np.random.default_rng(1)
        slow = FaultModel(0.1).sample_crash_seconds(rng, 2000).mean()
        assert slow > fast * 5

    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            FaultModel(crash_rate_per_hour=-1.0)


class TestSimulateWithFailures:
    def test_no_faults_matches_plain_scheduler(self, cluster):
        w = workload()
        outcome = simulate_with_failures(
            w, cluster, FaultModel(0.0), np.random.default_rng(0),
            jitter_sigma=0.0)
        assert outcome.survived
        assert outcome.crashed_nodes == 0
        assert outcome.retried_tasks == 0
        plain = simulate_independent(w, cluster, np.random.default_rng(0),
                                     jitter_sigma=0.0)
        # Same order of magnitude (scheduling order differs: FIFO vs LPT).
        assert outcome.makespan_seconds == pytest.approx(
            plain.makespan_seconds, rel=0.2)

    def test_faults_only_slow_down(self, cluster):
        w = workload(200, 20.0)
        clean = simulate_with_failures(
            w, cluster, FaultModel(0.0), np.random.default_rng(2),
            jitter_sigma=0.0)
        # Moderate hazard: expect some crashes across seeds; find one.
        for seed in range(10):
            faulty = simulate_with_failures(
                w, cluster, FaultModel(3.0), np.random.default_rng(seed),
                jitter_sigma=0.0)
            if faulty.crashed_nodes:
                assert faulty.makespan_seconds >= clean.makespan_seconds - 1e-9
                return
        pytest.fail("no crash materialized across seeds")

    def test_all_nodes_crashing_raises(self, cluster):
        w = workload(500, 100.0)
        with pytest.raises(SimulationError):
            # Hazard so high every node dies almost immediately.
            simulate_with_failures(w, cluster, FaultModel(10_000.0),
                                   np.random.default_rng(3),
                                   jitter_sigma=0.0)

    def test_retries_accounted(self, cluster):
        w = workload(300, 50.0)
        for seed in range(12):
            outcome = simulate_with_failures(
                w, cluster, FaultModel(2.0), np.random.default_rng(seed),
                jitter_sigma=0.0)
            if outcome.retried_tasks:
                assert outcome.wasted_seconds > 0
                assert outcome.crashed_nodes >= 1
                return
        pytest.fail("no retry materialized across seeds")

    def test_bsp_rejected(self, cluster):
        w = Workload(style=ExecutionStyle.BSP, total_gi=10.0, n_steps=2,
                     step_gi=5.0)
        with pytest.raises(SimulationError):
            simulate_with_failures(w, cluster, FaultModel(0.0),
                                   np.random.default_rng(0))


class FixedCrashes(FaultModel):
    """Fault model with exact, caller-chosen per-node crash times."""

    def __init__(self, crash_seconds):
        object.__setattr__(self, "crash_rate_per_hour", 1.0)
        object.__setattr__(self, "_crash_seconds",
                           np.asarray(crash_seconds, dtype=float))

    def sample_crash_seconds(self, rng, n_nodes):
        assert n_nodes == self._crash_seconds.size
        return self._crash_seconds.copy()


class TestCrashEdgeCases:
    """Deterministic boundary behaviour pinned with exact crash times."""

    def two_nodes(self, ec2, x264):
        instances = [
            Instance(instance_id=f"i-{k}", itype=ec2.type_named("c4.large"))
            for k in range(2)
        ]
        return SimCluster(instances, x264)

    def test_all_nodes_crash_before_completion(self, ec2, x264):
        cluster = self.two_nodes(ec2, x264)
        d = 10.0 / cluster.slot_rates()[0]  # seconds per task
        # Every node dies mid-first-task: nothing can ever finish.
        faults = FixedCrashes(np.full(cluster.n_nodes, d / 2))
        with pytest.raises(SimulationError,
                           match="all nodes crashed"):
            simulate_with_failures(workload(20, 10.0), cluster, faults,
                                   np.random.default_rng(0),
                                   jitter_sigma=0.0)

    def test_single_survivor_requeues_lost_tasks(self, ec2, x264):
        cluster = self.two_nodes(ec2, x264)
        rates = cluster.slot_rates()
        d = 10.0 / rates[0]
        vcpus0 = cluster.nodes[0].vcpus
        n_tasks = 11
        # Node 0 dies mid-first-wave; node 1 outlives everything, so
        # every task (including node 0's lost in-flight wave) completes
        # on node 1 alone.
        faults = FixedCrashes([d / 2, np.inf])
        outcome = simulate_with_failures(
            workload(n_tasks, 10.0), cluster, faults,
            np.random.default_rng(0), jitter_sigma=0.0)
        assert outcome.survived
        assert outcome.crashed_nodes == 1
        assert outcome.retried_tasks == vcpus0
        assert outcome.wasted_seconds == pytest.approx(vcpus0 * d / 2)
        # All n_tasks completions land on node 1's slots, greedily packed.
        vcpus1 = cluster.nodes[1].vcpus
        waves = -(-n_tasks // vcpus1)  # ceil
        assert outcome.makespan_seconds == pytest.approx(
            waves * (10.0 / rates[vcpus0]))

    def test_crash_exactly_at_task_boundary_completes_task(self, ec2, x264):
        cluster = self.two_nodes(ec2, x264)
        d = 10.0 / cluster.slot_rates()[0]
        # Node 0 crashes at the precise instant its first tasks finish:
        # the requeue condition is strictly ``finish > crash_at``, so the
        # in-flight work completes and only the *slot* retires.
        faults = FixedCrashes([d, np.inf])
        outcome = simulate_with_failures(
            workload(12, 10.0), cluster, faults,
            np.random.default_rng(0), jitter_sigma=0.0)
        assert outcome.survived
        assert outcome.crashed_nodes == 1
        assert outcome.retried_tasks == 0
        assert outcome.wasted_seconds == 0.0

    def test_bit_stable_under_fixed_seed(self, cluster):
        w = workload(200, 20.0)

        def attempt(seed):
            try:
                return simulate_with_failures(
                    w, cluster, FaultModel(30.0),
                    np.random.default_rng(seed))
            except SimulationError:
                return "all-crashed"

        crashed = 0
        for seed in range(8):
            runs = [attempt(seed) for _ in range(2)]
            # Exact equality, not approx: same draws, same event path —
            # including seeds where the hazard wipes out every node.
            assert runs[0] == runs[1]
            if runs[0] != "all-crashed":
                crashed += runs[0].crashed_nodes
        assert crashed > 0  # the hazard actually fired somewhere
