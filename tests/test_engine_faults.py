"""Tests for fault-injected execution."""

import numpy as np
import pytest

from repro.apps.base import ExecutionStyle, Workload
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.engine.faults import FaultModel, simulate_with_failures
from repro.engine.schedulers import simulate_independent
from repro.errors import SimulationError


@pytest.fixture()
def cluster(ec2, x264):
    instances = [
        Instance(instance_id=f"i-{k}", itype=ec2.type_named("c4.large"))
        for k in range(3)
    ]
    return SimCluster(instances, x264)


def workload(n_tasks=100, gi=10.0) -> Workload:
    tasks = np.full(n_tasks, gi)
    return Workload(style=ExecutionStyle.INDEPENDENT,
                    total_gi=float(tasks.sum()), task_gi=tasks)


class TestFaultModel:
    def test_zero_rate_never_crashes(self):
        model = FaultModel(crash_rate_per_hour=0.0)
        times = model.sample_crash_seconds(np.random.default_rng(0), 5)
        assert np.all(np.isinf(times))

    def test_rate_scales_crash_times(self):
        rng = np.random.default_rng(1)
        fast = FaultModel(1.0).sample_crash_seconds(rng, 2000).mean()
        rng = np.random.default_rng(1)
        slow = FaultModel(0.1).sample_crash_seconds(rng, 2000).mean()
        assert slow > fast * 5

    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            FaultModel(crash_rate_per_hour=-1.0)


class TestSimulateWithFailures:
    def test_no_faults_matches_plain_scheduler(self, cluster):
        w = workload()
        outcome = simulate_with_failures(
            w, cluster, FaultModel(0.0), np.random.default_rng(0),
            jitter_sigma=0.0)
        assert outcome.survived
        assert outcome.crashed_nodes == 0
        assert outcome.retried_tasks == 0
        plain = simulate_independent(w, cluster, np.random.default_rng(0),
                                     jitter_sigma=0.0)
        # Same order of magnitude (scheduling order differs: FIFO vs LPT).
        assert outcome.makespan_seconds == pytest.approx(
            plain.makespan_seconds, rel=0.2)

    def test_faults_only_slow_down(self, cluster):
        w = workload(200, 20.0)
        clean = simulate_with_failures(
            w, cluster, FaultModel(0.0), np.random.default_rng(2),
            jitter_sigma=0.0)
        # Moderate hazard: expect some crashes across seeds; find one.
        for seed in range(10):
            faulty = simulate_with_failures(
                w, cluster, FaultModel(3.0), np.random.default_rng(seed),
                jitter_sigma=0.0)
            if faulty.crashed_nodes:
                assert faulty.makespan_seconds >= clean.makespan_seconds - 1e-9
                return
        pytest.fail("no crash materialized across seeds")

    def test_all_nodes_crashing_raises(self, cluster):
        w = workload(500, 100.0)
        with pytest.raises(SimulationError):
            # Hazard so high every node dies almost immediately.
            simulate_with_failures(w, cluster, FaultModel(10_000.0),
                                   np.random.default_rng(3),
                                   jitter_sigma=0.0)

    def test_retries_accounted(self, cluster):
        w = workload(300, 50.0)
        for seed in range(12):
            outcome = simulate_with_failures(
                w, cluster, FaultModel(2.0), np.random.default_rng(seed),
                jitter_sigma=0.0)
            if outcome.retried_tasks:
                assert outcome.wasted_seconds > 0
                assert outcome.crashed_nodes >= 1
                return
        pytest.fail("no retry materialized across seeds")

    def test_bsp_rejected(self, cluster):
        w = Workload(style=ExecutionStyle.BSP, total_gi=10.0, n_steps=2,
                     step_gi=5.0)
        with pytest.raises(SimulationError):
            simulate_with_failures(w, cluster, FaultModel(0.0),
                                   np.random.default_rng(0))
