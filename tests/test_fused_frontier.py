"""Tests for the fused sweep→frontier pipeline (:mod:`repro.core.sweepkernel`).

The contract under test is *bit-identity*: the fused kernel must write
the same bytes the straightforward decode-then-matmul sweep writes, the
witness-filtered per-chunk candidates must equal an exact per-chunk
Pareto scan, and the frontier merged from candidates must match the
cold full-scan :class:`FrontierIndex` no matter how the sweep was
chunked, parallelised, fault-injected or resumed.
"""

import numpy as np
import pytest

from repro.cache import SweepCheckpoint, evaluation_cache_key
from repro.cloud.catalog import make_catalog
from repro.core import sweepkernel
from repro.core.capacity import capacity_per_type
from repro.core.configspace import ConfigurationSpace, SpaceEvaluation
from repro.core.selection import FrontierIndex
from repro.core.sweepkernel import (
    ChunkKernel,
    chunk_frontier_candidates,
    frontier_candidates_from_values,
)
from repro.parallel import FaultPlan, SupervisorConfig, evaluate_resilient
from repro.parallel.supervisor import SweepInterrupted

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]


def space_and_caps(quota=3):
    catalog = make_catalog(ROWS, quota=quota)
    return ConfigurationSpace(catalog), np.array([2.0, 4.2, 1.5])


def fast_config(**overrides) -> SupervisorConfig:
    knobs = dict(poll_interval_s=0.02, backoff_base_s=0.01,
                 backoff_cap_s=0.05, shutdown_grace_s=0.5)
    knobs.update(overrides)
    return SupervisorConfig(**knobs)


def reference_sweep(space, caps):
    """The pre-fusion sweep: decode, cast, two matvecs per chunk."""
    w = capacity_per_type(caps)
    capacity = np.empty(space.size)
    unit_cost = np.empty(space.size)
    for start, chunk in space.iter_chunks():
        f = chunk.astype(np.float64)
        capacity[start - 1:start - 1 + len(chunk)] = f @ w
        unit_cost[start - 1:start - 1 + len(chunk)] = f @ space.catalog.prices
    return capacity, unit_cost


def brute_candidates(capacity, unit_cost, base_row):
    """Exact local Pareto rows by the O(k^2) definition."""
    ratio = unit_cost / capacity
    rows = []
    for i in range(capacity.size):
        dominated = np.any(
            (capacity >= capacity[i]) & (ratio <= ratio[i])
            & ((capacity > capacity[i]) | (ratio < ratio[i])))
        if not dominated:
            rows.append(i + base_row)
    return np.asarray(rows, dtype=np.int64)


class TestChunkKernel:
    def test_evaluate_matches_reference_sweep(self):
        space, caps = space_and_caps()
        evaluation = space.evaluate(caps)
        ref_cap, ref_cost = reference_sweep(space, caps)
        assert evaluation.capacity_gips.tobytes() == ref_cap.tobytes()
        assert evaluation.unit_cost_per_hour.tobytes() == ref_cost.tobytes()

    def test_internal_tiling_is_invisible(self, monkeypatch):
        """KERNEL_TILE is an execution detail: a tiny tile must produce
        the same bytes as one covering the whole space."""
        space, caps = space_and_caps()
        w = capacity_per_type(caps)
        prices = space.catalog.prices
        wide = ChunkKernel(space.strides, space.radices, w, prices,
                           max_chunk=space.size)
        monkeypatch.setattr(sweepkernel, "KERNEL_TILE", 7)
        narrow = ChunkKernel(space.strides, space.radices, w, prices,
                             max_chunk=space.size)
        assert narrow._tile_rows == 7
        out = [np.empty(space.size) for _ in range(4)]
        wide.evaluate_into(1, space.size + 1, out[0], out[1])
        narrow.evaluate_into(1, space.size + 1, out[2], out[3])
        assert out[0].tobytes() == out[2].tobytes()
        assert out[1].tobytes() == out[3].tobytes()

    def test_rejects_empty_chunks(self):
        space, caps = space_and_caps(quota=2)
        with pytest.raises(ValueError):
            ChunkKernel(space.strides, space.radices,
                        capacity_per_type(caps), space.catalog.prices,
                        max_chunk=0)


class TestWitnessFilterExactness:
    @pytest.mark.parametrize("tile", [1, 2, 7, 64, 10_000])
    def test_matches_brute_force(self, tile):
        rng = np.random.default_rng(7)
        capacity = rng.uniform(1.0, 50.0, size=500)
        unit_cost = rng.uniform(0.1, 5.0, size=500)
        got = chunk_frontier_candidates(capacity, unit_cost, 123, tile=tile)
        expected = brute_candidates(capacity, unit_cost, 123)
        assert np.array_equal(got, expected)

    def test_ties_keep_duplicates(self):
        """Equal (capacity, ratio) points are mutually nondominating; the
        filter must keep all of them, exactly like the full scan."""
        capacity = np.array([4.0, 4.0, 4.0, 2.0, 8.0])
        unit_cost = np.array([1.0, 1.0, 1.0, 2.0, 2.0])
        got = chunk_frontier_candidates(capacity, unit_cost, 0, tile=2)
        expected = brute_candidates(capacity, unit_cost, 0)
        assert np.array_equal(got, expected)

    def test_empty_chunk(self):
        got = chunk_frontier_candidates(np.empty(0), np.empty(0), 0, tile=4)
        assert got.size == 0 and got.dtype == np.int64

    def test_from_values_is_chunk_grid_invariant(self):
        space, caps = space_and_caps()
        evaluation = space.evaluate(caps, collect_candidates=False)
        capacity = evaluation.capacity_gips
        unit_cost = evaluation.unit_cost_per_hour
        frontiers = []
        for chunk_size in (5, 64, space.size):
            rows = frontier_candidates_from_values(
                capacity, unit_cost, chunk_size=chunk_size)
            index = FrontierIndex(evaluation, candidates=rows)
            frontiers.append(index.frontier_rows.tobytes())
        assert len(set(frontiers)) == 1


class TestFusedSweepIdentity:
    """The merged frontier equals the cold two-pass build, byte for byte,
    however the sweep ran."""

    def expected_frontier(self, space, caps, chunk_size):
        evaluation = space.evaluate(caps, chunk_size=chunk_size,
                                    collect_candidates=False)
        assert evaluation.frontier_candidates() is None
        return FrontierIndex(evaluation)

    def index_from(self, space, capacity, unit_cost, candidates):
        evaluation = SpaceEvaluation(space=space, capacity_gips=capacity,
                                     unit_cost_per_hour=unit_cost)
        return FrontierIndex(evaluation, candidates=candidates)

    def assert_same_frontier(self, a, b):
        assert a.frontier_rows.tobytes() == b.frontier_rows.tobytes()
        assert a._frontier_capacity.tobytes() == b._frontier_capacity.tobytes()
        assert a._frontier_ratio.tobytes() == b._frontier_ratio.tobytes()

    def test_serial_fused(self):
        space, caps = space_and_caps()
        evaluation = space.evaluate(caps, chunk_size=16)
        candidates = evaluation.frontier_candidates()
        assert candidates is not None and candidates.size
        fused = FrontierIndex(evaluation, candidates=candidates)
        self.assert_same_frontier(fused,
                                  self.expected_frontier(space, caps, 16))

    def test_supervised_fused(self):
        space, caps = space_and_caps()
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=8, config=fast_config())
        assert stats.frontier_candidates is not None
        fused = self.index_from(space, capacity, unit_cost,
                                stats.frontier_candidates)
        self.assert_same_frontier(fused,
                                  self.expected_frontier(space, caps, 8))

    def test_supervised_fused_with_killed_worker(self):
        space, caps = space_and_caps()
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4,
            faults=FaultPlan.kill_worker(0, at_span=0, at_chunk=1),
            config=fast_config())
        assert stats.workers_lost >= 1
        fused = self.index_from(space, capacity, unit_cost,
                                stats.frontier_candidates)
        self.assert_same_frontier(fused,
                                  self.expected_frontier(space, caps, 4))

    def test_checkpoint_resume_fused(self, tmp_path):
        space, caps = space_and_caps()
        key = evaluation_cache_key(space.catalog, caps)
        cp = SweepCheckpoint(tmp_path / "cp", key=key,
                             space_size=space.size, chunk_size=4)
        with pytest.raises(SweepInterrupted):
            evaluate_resilient(space, caps, workers=2, chunk_size=4,
                               checkpoint=cp,
                               config=fast_config(stop_after_spans=2))
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4, checkpoint=cp,
            config=fast_config())
        assert stats.spans_resumed == 2
        fused = self.index_from(space, capacity, unit_cost,
                                stats.frontier_candidates)
        self.assert_same_frontier(fused,
                                  self.expected_frontier(space, caps, 4))

    def test_resume_without_candidate_shards_recomputes(self, tmp_path):
        """Candidate shards from an older layout (or lost to corruption)
        must be recomputed from the restored values, not trusted."""
        space, caps = space_and_caps()
        key = evaluation_cache_key(space.catalog, caps)
        cp = SweepCheckpoint(tmp_path / "cp", key=key,
                             space_size=space.size, chunk_size=4)
        with pytest.raises(SweepInterrupted):
            evaluate_resilient(space, caps, workers=2, chunk_size=4,
                               checkpoint=cp,
                               config=fast_config(stop_after_spans=2))
        for cand in (tmp_path / "cp").glob("cand-*.npy"):
            cand.unlink()
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4, checkpoint=cp,
            config=fast_config())
        fused = self.index_from(space, capacity, unit_cost,
                                stats.frontier_candidates)
        self.assert_same_frontier(fused,
                                  self.expected_frontier(space, caps, 4))

    def test_collect_candidates_off_still_selects(self):
        space, caps = space_and_caps(quota=2)
        evaluation = space.evaluate(caps, collect_candidates=False)
        index = evaluation.frontier_index()
        reference = self.expected_frontier(space, caps, 16)
        self.assert_same_frontier(index, reference)


class TestEvaluationPlumbs:
    def test_frontier_index_uses_fused_candidates(self):
        space, caps = space_and_caps(quota=2)
        evaluation = space.evaluate(caps)
        index = evaluation.frontier_index()
        cold = FrontierIndex(space.evaluate(caps, collect_candidates=False))
        assert index.frontier_rows.tobytes() == cold.frontier_rows.tobytes()

    def test_decode_still_validates_range(self):
        space, _ = space_and_caps(quota=2)
        with pytest.raises(Exception):
            space.decode(np.array([0], dtype=np.int64))
        with pytest.raises(Exception):
            space.decode(np.array([space.size + 1], dtype=np.int64))
