"""Tests for instance types and instances."""

import pytest

from repro.cloud.instance import (
    Instance,
    InstanceType,
    ResourceCategory,
    StorageKind,
)
from repro.errors import ValidationError


def make_type(**overrides) -> InstanceType:
    base = dict(
        name="c4.large",
        category=ResourceCategory.COMPUTE,
        vcpus=2,
        frequency_ghz=2.9,
        memory_gb=3.75,
        storage=StorageKind.EBS,
        local_storage_gb=0.0,
        price_per_hour=0.105,
    )
    base.update(overrides)
    return InstanceType(**base)


class TestResourceCategory:
    def test_from_prefix(self):
        assert ResourceCategory.from_prefix("c4") is ResourceCategory.COMPUTE
        assert ResourceCategory.from_prefix("m4") is ResourceCategory.GENERAL
        assert ResourceCategory.from_prefix("r3") is ResourceCategory.MEMORY

    def test_unknown_prefix(self):
        with pytest.raises(ValidationError):
            ResourceCategory.from_prefix("t2")


class TestInstanceType:
    def test_size_label(self):
        assert make_type(name="c4.2xlarge", vcpus=8).size_label == "2xlarge"

    def test_invalid_vcpus(self):
        with pytest.raises(ValidationError):
            make_type(vcpus=0)

    def test_invalid_price(self):
        with pytest.raises(ValidationError):
            make_type(price_per_hour=0.0)

    def test_invalid_frequency(self):
        with pytest.raises(ValidationError):
            make_type(frequency_ghz=-1)

    def test_invalid_memory(self):
        with pytest.raises(ValidationError):
            make_type(memory_gb=0)

    def test_local_storage_consistency(self):
        with pytest.raises(ValidationError):
            make_type(storage=StorageKind.LOCAL_SSD, local_storage_gb=0.0)
        with pytest.raises(ValidationError):
            make_type(storage=StorageKind.EBS, local_storage_gb=32.0)

    def test_spec_upper_bound(self):
        t = make_type()
        assert t.spec_gips_upper_bound() == pytest.approx(2 * 2.9)
        assert t.spec_gips_upper_bound(0.5) == pytest.approx(2.9)

    def test_spec_upper_bound_rejects_bad_ipc(self):
        with pytest.raises(ValidationError):
            make_type().spec_gips_upper_bound(0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_type().vcpus = 4


class TestInstance:
    def test_uptime(self):
        inst = Instance(instance_id="i-1", itype=make_type(),
                        launched_at_hours=1.0)
        assert inst.running
        assert inst.uptime_hours(3.5) == pytest.approx(2.5)

    def test_terminated_uptime_frozen(self):
        inst = Instance(instance_id="i-1", itype=make_type())
        inst.terminated_at_hours = 2.0
        assert not inst.running
        assert inst.uptime_hours(10.0) == pytest.approx(2.0)

    def test_termination_before_launch_rejected(self):
        inst = Instance(instance_id="i-1", itype=make_type(),
                        launched_at_hours=5.0)
        inst.terminated_at_hours = 1.0
        with pytest.raises(ValidationError):
            inst.uptime_hours(10.0)

    def test_contention_must_be_positive(self):
        with pytest.raises(ValidationError):
            Instance(instance_id="i-1", itype=make_type(),
                     contention_factor=0.0)
