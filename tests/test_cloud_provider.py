"""Tests for the provider simulator, virtualization model and ledger."""

import numpy as np
import pytest

from repro.cloud.billing import BillingLedger
from repro.cloud.instance import ResourceCategory
from repro.cloud.pricing import HourlyQuantizedBilling, LinearBilling
from repro.cloud.provider import CloudProvider
from repro.cloud.virtualization import VirtualizationModel
from repro.errors import ConfigurationError, ProvisioningError, QuotaExceededError


class TestVirtualizationModel:
    def test_noiseless_factory(self):
        model = VirtualizationModel.noiseless()
        rng = np.random.default_rng(0)
        assert model.sample_contention(rng) == 1.0
        np.testing.assert_allclose(model.sample_jitter(rng, 4), np.ones(4))

    def test_contention_in_half_open_interval(self):
        model = VirtualizationModel(contention_sigma=0.05)
        rng = np.random.default_rng(1)
        samples = [model.sample_contention(rng) for _ in range(200)]
        assert all(0.5 <= s <= 1.0 for s in samples)
        assert np.mean(samples) < 1.0  # systematically below nominal

    def test_jitter_unit_median(self):
        model = VirtualizationModel(jitter_sigma=0.1)
        rng = np.random.default_rng(2)
        jitter = model.sample_jitter(rng, 4001)
        assert abs(np.median(jitter) - 1.0) < 0.02

    def test_overhead_lookup(self):
        model = VirtualizationModel()
        assert 0 < model.overhead_for(ResourceCategory.COMPUTE) < 1
        assert model.efficiency_for(ResourceCategory.COMPUTE) == \
            pytest.approx(1 - model.overhead_for(ResourceCategory.COMPUTE))

    def test_invalid_sigma_rejected(self):
        with pytest.raises(Exception):
            VirtualizationModel(contention_sigma=-0.1)


class TestProvisioning:
    def test_provision_counts_and_types(self, small_catalog):
        provider = CloudProvider(small_catalog, seed=0)
        lease = provider.provision([2, 1, 0])
        assert lease.node_count == 3
        names = [inst.itype.name for inst in lease.instances]
        assert names == ["a.small", "a.small", "a.big"]
        np.testing.assert_array_equal(provider.in_use, [2, 1, 0])

    def test_empty_configuration_rejected(self, small_catalog):
        provider = CloudProvider(small_catalog)
        with pytest.raises(ConfigurationError):
            provider.provision([0, 0, 0])

    def test_negative_counts_rejected(self, small_catalog):
        provider = CloudProvider(small_catalog)
        with pytest.raises(ConfigurationError):
            provider.provision([-1, 1, 0])

    def test_wrong_width_rejected(self, small_catalog):
        provider = CloudProvider(small_catalog)
        with pytest.raises(ConfigurationError):
            provider.provision([1, 1])

    def test_quota_enforced(self, small_catalog):
        provider = CloudProvider(small_catalog)
        with pytest.raises(QuotaExceededError):
            provider.provision([3, 0, 0])

    def test_quota_across_leases(self, small_catalog):
        provider = CloudProvider(small_catalog)
        provider.provision([2, 0, 0])
        with pytest.raises(QuotaExceededError):
            provider.provision([1, 0, 0])
        np.testing.assert_array_equal(provider.available(), [0, 2, 2])

    def test_unique_instance_ids(self, small_catalog):
        provider = CloudProvider(small_catalog)
        lease = provider.provision([2, 2, 2])
        ids = [inst.instance_id for inst in lease.instances]
        assert len(set(ids)) == len(ids)

    def test_contention_deterministic_per_seed(self, small_catalog):
        lease_a = CloudProvider(small_catalog, seed=5).provision([2, 0, 0])
        lease_b = CloudProvider(small_catalog, seed=5).provision([2, 0, 0])
        assert [i.contention_factor for i in lease_a.instances] == \
            [i.contention_factor for i in lease_b.instances]


class TestTermination:
    def test_terminate_releases_quota_and_bills(self, small_catalog):
        provider = CloudProvider(small_catalog,
                                 billing_model=LinearBilling(), seed=0)
        lease = provider.provision([1, 1, 0])
        billed = provider.terminate(lease, now_hours=2.0)
        assert billed == pytest.approx(2.0 * (0.10 + 0.21))
        assert not lease.active
        np.testing.assert_array_equal(provider.in_use, [0, 0, 0])
        assert provider.ledger.total() == pytest.approx(billed)

    def test_hourly_quantization(self, small_catalog):
        provider = CloudProvider(small_catalog,
                                 billing_model=HourlyQuantizedBilling(),
                                 seed=0)
        lease = provider.provision([1, 0, 0])
        billed = provider.terminate(lease, now_hours=1.2)
        assert billed == pytest.approx(0.10 * 2)

    def test_double_terminate_rejected(self, small_catalog):
        provider = CloudProvider(small_catalog)
        lease = provider.provision([1, 0, 0])
        provider.terminate(lease, now_hours=1.0)
        with pytest.raises(ProvisioningError):
            provider.terminate(lease, now_hours=2.0)

    def test_terminate_before_start_rejected(self, small_catalog):
        provider = CloudProvider(small_catalog)
        lease = provider.provision([1, 0, 0], now_hours=5.0)
        with pytest.raises(ProvisioningError):
            provider.terminate(lease, now_hours=1.0)

    def test_active_lease_listing(self, small_catalog):
        provider = CloudProvider(small_catalog)
        lease = provider.provision([1, 0, 0])
        assert provider.active_leases() == [lease]
        provider.terminate(lease, now_hours=1.0)
        assert provider.active_leases() == []


class TestLedger:
    def test_entries_and_totals(self):
        ledger = BillingLedger()
        ledger.record(lease_id=1, instance_id="i-1", type_name="a",
                      uptime_hours=1.0, amount=2.0)
        ledger.record(lease_id=1, instance_id="i-2", type_name="b",
                      uptime_hours=2.0, amount=3.0)
        ledger.record(lease_id=2, instance_id="i-3", type_name="a",
                      uptime_hours=1.0, amount=5.0)
        assert len(ledger) == 3
        assert ledger.total() == pytest.approx(10.0)
        assert ledger.total_for_lease(1) == pytest.approx(5.0)
        assert ledger.by_type() == {"a": 7.0, "b": 3.0}

    def test_entries_are_copies(self):
        ledger = BillingLedger()
        ledger.record(lease_id=1, instance_id="i", type_name="a",
                      uptime_hours=1.0, amount=1.0)
        ledger.entries.clear()
        assert len(ledger) == 1
