"""Tests for memory-feasibility constraints (select enforce_memory)."""

import numpy as np
import pytest

from repro.core.configspace import ConfigurationSpace
from repro.core.selection import select_configurations
from repro.errors import ConfigurationError, ValidationError


class TestMaskUsingTypes:
    def test_marks_users_of_type(self, small_catalog, small_space):
        mask = small_space.mask_using_types([0])
        for row in range(small_space.size):
            config = small_space.decode(row + 1)[0]
            assert mask[row] == (config[0] > 0)

    def test_empty_indices(self, small_space):
        assert not small_space.mask_using_types([]).any()

    def test_multiple_types(self, small_space):
        mask = small_space.mask_using_types([0, 2])
        # Only configurations using exclusively type 1 stay unmarked.
        unmarked = np.flatnonzero(~mask)
        for row in unmarked:
            config = small_space.decode(row + 1)[0]
            assert config[0] == 0 and config[2] == 0

    def test_out_of_range(self, small_space):
        with pytest.raises(ConfigurationError):
            small_space.mask_using_types([5])


class TestSelectionWithExclusion:
    def test_exclusion_reduces_feasible_set(self, small_catalog,
                                            small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        free = select_configurations(evaluation, 5e4, 10.0, 10.0)
        mask = space.mask_using_types([0])
        constrained = select_configurations(evaluation, 5e4, 10.0, 10.0,
                                            exclude_mask=mask)
        assert constrained.feasible_count < free.feasible_count
        for p in constrained.pareto:
            assert p.configuration[0] == 0

    def test_mask_shape_validated(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        with pytest.raises(ValidationError):
            select_configurations(evaluation, 5e4, 10.0, 10.0,
                                  exclude_mask=np.zeros(3, dtype=bool))


class TestApplicationMemoryModels:
    def test_defaults_fit_every_paper_type(self, ec2, galaxy, sand, x264):
        """At the paper's evaluation scales, all nine types qualify —
        preserving the reproduction (memory enforcement changes nothing
        unless problems outgrow Table III's memory)."""
        for app, n, a in ((galaxy, 65_536, 8_000), (sand, 8_192e6, 0.32),
                          (x264, 32_000, 20)):
            per_vcpu = app.min_memory_gb_per_vcpu(n, a)
            for t in ec2:
                assert t.memory_gb >= t.vcpus * per_vcpu

    def test_galaxy_memory_grows_with_n(self, galaxy):
        assert galaxy.min_memory_gb_per_vcpu(1_000_000, 100) > \
            galaxy.min_memory_gb_per_vcpu(10_000, 100)

    def test_huge_galaxy_excludes_lean_types(self, celia_ec2, galaxy):
        """A 100M-mass galaxy (7.3 GB/process) cannot run on c4 types
        (1.875 GB per vCPU) — memory_infeasible_types flags them."""
        bad = celia_ec2.memory_infeasible_types(galaxy, 100_000_000, 100)
        names = [celia_ec2.catalog.names[i] for i in bad]
        assert "c4.2xlarge" in names
        assert "r3.2xlarge" not in names  # 61 GB / 8 vCPU = 7.6 GB

    def test_enforce_memory_in_select(self, celia_ec2, galaxy):
        """Constrained selection keeps only memory-feasible frontiers."""
        free = celia_ec2.select(galaxy, 100_000_000, 1,
                                deadline_hours=50_000.0,
                                budget_dollars=500_000.0)
        constrained = celia_ec2.select(galaxy, 100_000_000, 1,
                                       deadline_hours=50_000.0,
                                       budget_dollars=500_000.0,
                                       enforce_memory=True)
        assert free.feasible_count > 0
        assert constrained.feasible_count < free.feasible_count
        bad = set(celia_ec2.memory_infeasible_types(galaxy, 100_000_000, 1))
        assert bad
        for p in constrained.pareto:
            assert all(p.configuration[i] == 0 for i in bad)

    def test_enforce_memory_noop_at_paper_scale(self, celia_ec2, galaxy):
        a = celia_ec2.select(galaxy, 65_536, 2_000, 48.0, 350.0)
        b = celia_ec2.select(galaxy, 65_536, 2_000, 48.0, 350.0,
                             enforce_memory=True)
        assert a.feasible_count == b.feasible_count
