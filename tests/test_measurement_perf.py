"""Tests for the simulated perf counter and machine specs."""

import pytest

from repro.errors import MeasurementError, ValidationError
from repro.measurement.machines import LOCAL_XEON_E5_2630_V4, MachineSpec
from repro.measurement.perf import PerfCounter


class TestMachineSpec:
    def test_paper_server(self):
        assert LOCAL_XEON_E5_2630_V4.cores == 10
        assert LOCAL_XEON_E5_2630_V4.threads == 20
        assert LOCAL_XEON_E5_2630_V4.frequency_ghz == 2.2

    def test_compatibility(self):
        assert LOCAL_XEON_E5_2630_V4.compatible_with(
            "x86_64", "haswell-broadwell")
        assert not LOCAL_XEON_E5_2630_V4.compatible_with("arm64", "neoverse")

    def test_validation(self):
        with pytest.raises(ValidationError):
            MachineSpec(name="bad", cores=0, threads=0, frequency_ghz=2.0)
        with pytest.raises(ValidationError):
            MachineSpec(name="bad", cores=4, threads=2, frequency_ghz=2.0)
        with pytest.raises(ValidationError):
            MachineSpec(name="bad", cores=4, threads=8, frequency_ghz=0.0)


class TestPerfCounter:
    def test_reading_close_to_ground_truth(self, simple_app):
        perf = PerfCounter(seed=0, noise_sigma=0.005)
        reading = perf.measure(simple_app, 100, 2.0)
        truth = simple_app.demand_gi(100, 2.0)
        assert reading.instructions_gi == pytest.approx(truth, rel=0.03)

    def test_noiseless_reading_is_exact(self, simple_app):
        perf = PerfCounter(seed=0, noise_sigma=0.0)
        reading = perf.measure(simple_app, 100, 2.0)
        assert reading.instructions_gi == simple_app.demand_gi(100, 2.0)

    def test_repeat_reduces_noise(self, simple_app):
        noisy = PerfCounter(seed=1, noise_sigma=0.05)
        truth = simple_app.demand_gi(100, 2.0)
        single = abs(noisy.measure(simple_app, 100, 2.0).instructions_gi - truth)
        averaged = abs(
            noisy.measure(simple_app, 100, 2.0, repeat=64).instructions_gi
            - truth)
        assert averaged < single + 1e-9

    def test_deterministic_per_seed(self, simple_app):
        a = PerfCounter(seed=3).measure(simple_app, 10, 1.0)
        b = PerfCounter(seed=3).measure(simple_app, 10, 1.0)
        assert a.instructions_gi == b.instructions_gi

    def test_elapsed_time_consistent_with_rate(self, simple_app):
        perf = PerfCounter(seed=0, noise_sigma=0.0)
        reading = perf.measure(simple_app, 100, 2.0)
        # Local server: 20 threads * 2.2 GHz * local IPC (1.0).
        assert reading.rate_gips == pytest.approx(44.0)

    def test_incompatible_machine_rejected(self, simple_app):
        arm = MachineSpec(name="graviton", cores=16, threads=16,
                          frequency_ghz=2.5, isa="arm64",
                          microarchitecture="neoverse")
        perf = PerfCounter(machine=arm)
        with pytest.raises(MeasurementError):
            perf.measure(simple_app, 10, 1.0)

    def test_invalid_repeat(self, simple_app):
        with pytest.raises(MeasurementError):
            PerfCounter().measure(simple_app, 10, 1.0, repeat=0)

    def test_negative_noise_rejected(self):
        with pytest.raises(MeasurementError):
            PerfCounter(noise_sigma=-0.1)
