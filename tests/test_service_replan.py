"""Tests for the planning service's replan endpoint and metrics."""

import asyncio

import pytest

from repro.cloud.catalog import make_catalog
from repro.errors import ValidationError
from repro.service import (
    PlannerClient,
    PlannerServer,
    PlannerService,
    ServiceConfig,
)

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]

#: galaxy(65536, 8000) demand under the test catalog's measurement —
#: large enough that tight envelopes force degradation.
FULL_DEMAND_GI = 1.067e7


def make_service(**overrides) -> PlannerService:
    overrides.setdefault("default_quota", 2)
    overrides.setdefault("cache_dir", False)
    return PlannerService(
        config=ServiceConfig(**overrides),
        catalog_factory=lambda quota: make_catalog(ROWS, quota=quota),
    )


def replan(service, *args, **kwargs):
    return asyncio.run(service.replan(*args, **kwargs))


class TestReplanPayloads:
    def test_feasible_residual_plan(self):
        service = make_service()
        response = replan(service, "galaxy", 1e6, 1000.0, 10_000.0)
        result = response["result"]
        assert response["kind"] == "replan"
        assert result["feasible"] and not result["degraded"]
        assert sum(result["configuration"]) >= 1
        assert result["time_hours"] <= 1000.0
        assert result["cost_dollars"] <= 10_000.0

    def test_degraded_answer_when_infeasible_with_params(self):
        service = make_service()
        response = replan(service, "galaxy", FULL_DEMAND_GI, 48.0, 350.0,
                          n=65536, accuracy=8000)
        result = response["result"]
        assert result["feasible"] and result["degraded"]
        assert result["accuracy"] < 8000
        assert 0 < result["accuracy_score"] < 1
        assert result["time_hours"] <= 48.0
        assert result["cost_dollars"] <= 350.0

    def test_infeasible_without_params_says_how_to_degrade(self):
        service = make_service()
        response = replan(service, "galaxy", FULL_DEMAND_GI, 48.0, 350.0)
        result = response["result"]
        assert not result["feasible"] and not result["degraded"]
        assert "supply n and accuracy" in result["detail"]

    def test_infeasible_even_at_floor_is_explicit(self):
        service = make_service()
        response = replan(service, "galaxy", FULL_DEMAND_GI, 0.001, 0.5,
                          n=65536, accuracy=8000)
        result = response["result"]
        assert not result["feasible"]
        assert result["accuracy_floor"] == 1000.0
        assert "accuracy floor" in result["detail"]

    def test_efficiency_inflates_the_query(self):
        service = make_service()
        full = replan(service, "galaxy", 1e6, 1000.0, 10_000.0)
        slow = replan(service, "galaxy", 1e6, 1000.0, 10_000.0,
                      efficiency=0.5)
        # Half-efficiency fleets need roughly double the planned time on
        # the same cheapest configuration.
        assert slow["result"]["time_hours"] > full["result"]["time_hours"]

    def test_validation(self):
        service = make_service()
        with pytest.raises(ValidationError):
            replan(service, "galaxy", 0.0, 10.0, 100.0)
        with pytest.raises(ValidationError):
            replan(service, "galaxy", 1e6, 10.0, 100.0, efficiency=0.0)
        with pytest.raises(ValidationError):
            replan(service, "galaxy", 1e6, 10.0, 100.0, efficiency=1.5)


class TestReplanMetrics:
    def test_counters_track_replans_and_degradations(self):
        service = make_service()
        replan(service, "galaxy", 1e6, 1000.0, 10_000.0)
        replan(service, "galaxy", FULL_DEMAND_GI, 48.0, 350.0,
               n=65536, accuracy=8000)
        counters = service.metrics.snapshot()["counters"]
        assert counters["replans_total"] == 2
        assert counters["degradations_total"] == 1
        assert counters["requests_replan"] == 2

    def test_replans_are_not_cached(self):
        service = make_service()
        first = replan(service, "galaxy", 1e6, 1000.0, 10_000.0)
        second = replan(service, "galaxy", 1e6, 1000.0, 10_000.0)
        assert first["cached"] is False
        assert second["cached"] is False
        assert first["result"] == second["result"]


class TestReplanOverHttp:
    def test_round_trip_matches_in_process(self):
        service = make_service()

        async def run():
            server = PlannerServer(service)
            await server.start()
            try:
                client = PlannerClient(port=server.port)
                loop = asyncio.get_running_loop()
                http = await loop.run_in_executor(
                    None, lambda: client.replan(
                        "galaxy", remaining_gi=FULL_DEMAND_GI,
                        residual_deadline_hours=48.0,
                        residual_budget_dollars=350.0,
                        n=65536, accuracy=8000))
                direct = await service.replan(
                    "galaxy", FULL_DEMAND_GI, 48.0, 350.0,
                    n=65536.0, accuracy=8000.0)
                return http, direct
            finally:
                await server.stop()

        http, direct = asyncio.run(run())
        assert http["result"] == direct["result"]
        assert http["result"]["degraded"]
