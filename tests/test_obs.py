"""Unit tests for ``repro.obs``: tracing, metrics, profiling, export."""

import json
import pickle
import threading
import time

import pytest

from repro.errors import ValidationError
from repro.obs.export import (
    export_chrome_trace,
    read_trace,
    spans_only,
    to_chrome_trace,
    trace_summary,
)
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    labeled_name,
    merge_snapshots,
    render_text,
    reset_global_registry,
)
from repro.obs.profile import (
    ProfileStore,
    get_store,
    merge_rows,
    profile_block,
    render_tables,
    reset_store,
)
from repro.obs.trace import (
    SpanContext,
    Tracer,
    configure_tracing,
    get_tracer,
    make_span_record,
    reset_tracing,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    """Isolate the process-global tracer/registry/store per test."""
    monkeypatch.delenv("CELIA_TRACE", raising=False)
    monkeypatch.delenv("CELIA_PROFILE", raising=False)
    reset_tracing()
    reset_global_registry()
    reset_store()
    yield
    reset_tracing()
    reset_global_registry()
    reset_store()


class TestSpans:
    def test_nesting_builds_parent_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        records = tracer.records()
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer_rec = records
        assert inner["parent_id"] == outer.span_id
        assert inner["trace_id"] == outer_rec["trace_id"]
        assert outer_rec["parent_id"] is None
        assert inner["wall_s"] >= 0.0 and inner["cpu_s"] >= 0.0

    def test_explicit_parent_overrides_ambient(self):
        tracer = Tracer(enabled=True)
        remote = SpanContext("feedfacefeedface", "cafebabecafebabe")
        with tracer.span("ambient"):
            with tracer.span("child", parent=remote):
                pass
        child = tracer.records()[0]
        assert child["trace_id"] == "feedfacefeedface"
        assert child["parent_id"] == "cafebabecafebabe"

    def test_exception_marks_error_status(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        record = tracer.records()[0]
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_attributes_are_typed(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as span:
            span.set_attribute("ok", 1)
            with pytest.raises(ValidationError):
                span.set_attribute("bad", [1, 2])
        assert tracer.records()[0]["attrs"] == {"ok": 1}

    def test_disabled_tracer_is_shared_noop(self):
        tracer = Tracer()
        first = tracer.span("a", {"x": 1})
        second = tracer.span("b")
        assert first is second  # one shared object, nothing allocated
        with first as span:
            span.set_attribute("ignored", "fine")
        assert tracer.records() == []
        assert first.context is None

    def test_current_context(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_context().span_id == ""
        with tracer.span("a") as span:
            assert tracer.current_context() == span.context
        disabled = Tracer()
        assert disabled.current_context() is None


class TestSpanContext:
    def test_survives_pickling(self):
        ctx = SpanContext("aaaa", "bbbb")
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        assert SpanContext.from_tuple(ctx.to_tuple()) == ctx
        assert SpanContext.from_tuple(None) is None

    def test_make_span_record_parents_on_context(self):
        ctx = SpanContext("tttt", "pppp")
        record = make_span_record("w", ctx, start_s=1.0, wall_s=0.5,
                                  cpu_s=0.25, attrs={"k": 1})
        assert record["kind"] == "span"
        assert record["trace_id"] == "tttt"
        assert record["parent_id"] == "pppp"
        assert record["attrs"] == {"k": 1}
        json.dumps(record)  # must be JSON-clean as-is

    def test_make_span_record_without_context_is_rootless(self):
        record = make_span_record("w", None, start_s=0.0, wall_s=0.0,
                                  cpu_s=0.0)
        assert record["parent_id"] is None


class TestTracerExport:
    def test_jsonl_streaming_and_truncation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(export_path=path)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["one", "two"]
        tracer.configure(path)  # a new run truncates the file
        assert path.read_text() == ""

    def test_global_tracer_configuration(self, tmp_path):
        assert not tracing_enabled()
        tracer = configure_tracing(tmp_path / "t.jsonl")
        assert tracing_enabled()
        assert tracer is get_tracer()
        tracer.disable()
        assert not tracing_enabled()

    def test_env_var_enables_tracing(self, monkeypatch, tmp_path):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("CELIA_TRACE", str(path))
        reset_tracing()
        tracer = get_tracer()
        assert tracer.enabled
        assert tracer.export_path == path
        monkeypatch.setenv("CELIA_TRACE", "1")
        reset_tracing()
        tracer = get_tracer()
        assert tracer.enabled and tracer.export_path is None


class TestMetrics:
    def test_labeled_name_sorts_keys(self):
        assert labeled_name("m") == "m"
        assert labeled_name("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        registry = MetricsRegistry()
        registry.counter("m", labels={"b": "2", "a": "1"}).increment()
        registry.counter("m", labels={"a": "1", "b": "2"}).increment()
        assert registry.snapshot()["counters"] == {'m{a="1",b="2"}': 2}

    def test_merge_snapshots_later_wins(self):
        first = MetricsRegistry()
        first.counter("shared").increment(1)
        first.gauge("only_first").set(3)
        second = MetricsRegistry()
        second.counter("shared").increment(5)
        second.histogram("lat").observe(0.5)
        merged = merge_snapshots(first.snapshot(), second.snapshot())
        assert merged["counters"]["shared"] == 5
        assert merged["gauges"]["only_first"] == 3.0
        assert merged["histograms"]["lat"]["count"] == 1

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").increment(7)
        registry.gauge("queue_depth").set(2)
        registry.histogram("lat", labels={"kind": "select"}).observe(0.25)
        registry.histogram("empty")
        text = render_text(registry.snapshot())
        assert "requests_total 7\n" in text
        assert "queue_depth 2\n" in text
        assert 'lat_count{kind="select"} 1\n' in text
        assert 'lat_p50{kind="select"} 0.25\n' in text
        assert "empty_p99 nan\n" in text

    def test_global_registry_thread_safety(self):
        registry = global_registry()
        assert registry is global_registry()

        def hammer():
            for _ in range(1000):
                registry.counter("hits").increment()
                registry.histogram("lat").observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 8000
        assert snapshot["histograms"]["lat"]["count"] == 8000

    def test_reset_global_registry(self):
        global_registry().counter("x").increment()
        reset_global_registry()
        assert global_registry().snapshot()["counters"] == {}


class TestProfile:
    def test_profile_block_collects_rows(self):
        with profile_block("test.phase", force=True):
            sum(range(1000))
        store = get_store()
        assert store.blocks("test.phase") == 1
        rows = store.tables()["test.phase"]
        assert rows and {"function", "calls", "total_s",
                         "cumulative_s"} <= set(rows[0])

    def test_profile_block_records_into_trace(self, tmp_path):
        configure_tracing(tmp_path / "p.jsonl")
        with profile_block("traced.phase", force=True):
            sum(range(100))
        records = read_trace(tmp_path / "p.jsonl")
        profiles = [r for r in records if r.get("kind") == "profile"]
        assert len(profiles) == 1
        assert profiles[0]["phase"] == "traced.phase"

    def test_disabled_block_is_cheap_and_inert(self):
        start = time.perf_counter()
        for _ in range(10_000):
            with profile_block("never") as profiler:
                assert profiler is None
        elapsed = time.perf_counter() - start
        # The overhead guard: 10k disabled entries must stay far under
        # any meaningful fraction of a run (50 µs each is already 10x
        # what the bare contextmanager costs).
        assert elapsed < 0.5
        assert get_store().tables() == {}

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("CELIA_PROFILE", "1")
        with profile_block("via.env"):
            pass
        assert get_store().blocks("via.env") == 1

    def test_merge_rows_sums_shared_functions(self):
        a = [{"function": "f", "calls": 1, "total_s": 0.1,
              "cumulative_s": 0.2}]
        b = [{"function": "f", "calls": 2, "total_s": 0.3,
              "cumulative_s": 0.4},
             {"function": "g", "calls": 1, "total_s": 0.0,
              "cumulative_s": 1.0}]
        merged = merge_rows(a, b)
        assert merged[0]["function"] == "g"  # sorted by cumulative
        f_row = next(r for r in merged if r["function"] == "f")
        assert f_row["calls"] == 3
        assert f_row["cumulative_s"] == pytest.approx(0.6)

    def test_store_isolated_instances(self):
        store = ProfileStore()
        store.add("p", [{"function": "f", "calls": 1, "total_s": 0.0,
                         "cumulative_s": 0.0}])
        assert store.blocks("p") == 1
        assert get_store().blocks("p") == 0
        store.clear()
        assert store.tables() == {}

    def test_render_tables(self):
        assert "CELIA_PROFILE" in render_tables({})
        text = render_tables({"p": [{"function": "f", "calls": 2,
                                     "total_s": 0.5, "cumulative_s": 1.0}]})
        assert "phase: p" in text and "f" in text


def _span(name, start, wall, **extra):
    record = make_span_record(name, SpanContext("t", ""), start_s=start,
                              wall_s=wall, cpu_s=wall / 2)
    record.update(extra)
    return record


class TestExportAndSummary:
    def test_summary_coverage_with_gap(self):
        records = [_span("a", 0.0, 1.0), _span("b", 2.0, 1.0)]
        summary = trace_summary(records)
        assert summary["spans"] == 2
        assert summary["window_s"] == pytest.approx(3.0)
        assert summary["coverage"] == pytest.approx(2.0 / 3.0)

    def test_summary_overlap_counts_once(self):
        records = [_span("a", 0.0, 2.0), _span("b", 1.0, 2.0)]
        assert trace_summary(records)["coverage"] == pytest.approx(1.0)

    def test_summary_aggregates_and_errors(self):
        records = [_span("a", 0.0, 1.0), _span("a", 1.0, 3.0),
                   _span("b", 0.0, 0.5, status="error"),
                   {"kind": "profile", "phase": "p", "rows": []}]
        summary = trace_summary(records)
        assert summary["errors"] == 1
        assert summary["profile_records"] == 1
        assert summary["by_name"]["a"] == {
            "count": 2, "wall_s": pytest.approx(4.0),
            "cpu_s": pytest.approx(2.0), "max_wall_s": pytest.approx(3.0)}
        assert trace_summary([]) == {
            "spans": 0, "errors": 0, "window_s": 0.0, "coverage": 0.0,
            "profile_records": 0, "by_name": {}}

    def test_chrome_conversion(self):
        records = [_span("sweep.span", 1.0, 0.5, pid=42),
                   {"kind": "profile", "phase": "p", "pid": 42,
                    "rows": [{"function": "f"}]}]
        chrome = to_chrome_trace(records)
        assert chrome["displayTimeUnit"] == "ms"
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        instant = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 1 and len(instant) == 1
        assert complete[0]["ts"] == pytest.approx(1e6)
        assert complete[0]["dur"] == pytest.approx(5e5)
        assert complete[0]["pid"] == 42
        assert complete[0]["cat"] == "sweep"

    def test_export_round_trip(self, tmp_path):
        src = tmp_path / "t.jsonl"
        src.write_text(json.dumps(_span("a", 0.0, 1.0)) + "\n")
        out = tmp_path / "t.chrome.json"
        assert export_chrome_trace(src, out) == 1
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["name"] == "a"

    def test_read_trace_errors(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            read_trace(tmp_path / "missing.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ValidationError, match="bad.jsonl:2"):
            read_trace(bad)

    def test_spans_only(self):
        records = [{"kind": "span"}, {"kind": "profile"}, {"name": "x"}]
        assert len(spans_only(records)) == 2  # missing kind counts as span
