"""Tests for the vectorized 2-D frontier utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pareto.epsilon import eps_sort
from repro.pareto.frontier import (
    attainment_surface,
    dominates,
    frontier_cost_span,
    hypervolume_2d,
    knee_point_2d,
    pareto_indices_2d,
    pareto_mask_2d,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1, 1], [2, 2])

    def test_weak_plus_strict(self):
        assert dominates([1, 2], [1, 3])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([1, 3], [3, 1])


class TestParetoMask2D:
    def test_empty(self):
        assert pareto_mask_2d(np.array([]), np.array([])).size == 0

    def test_single_point(self):
        assert pareto_mask_2d(np.array([1.0]), np.array([1.0])).tolist() == [True]

    def test_simple_frontier(self):
        f = np.array([1.0, 2.0, 3.0, 2.0])
        s = np.array([3.0, 2.0, 1.0, 3.0])
        mask = pareto_mask_2d(f, s)
        assert mask.tolist() == [True, True, True, False]

    def test_duplicates_on_frontier_all_kept(self):
        f = np.array([1.0, 1.0, 2.0])
        s = np.array([1.0, 1.0, 0.5])
        mask = pareto_mask_2d(f, s)
        assert mask.tolist() == [True, True, True]

    def test_equal_first_objective_strict_second_dominates(self):
        f = np.array([1.0, 1.0])
        s = np.array([2.0, 1.0])
        assert pareto_mask_2d(f, s).tolist() == [False, True]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pareto_mask_2d(np.array([1.0]), np.array([1.0, 2.0]))

    @settings(max_examples=80, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        min_size=1, max_size=60,
    ))
    def test_matches_eps_sort_exact(self, points):
        """The O(n log n) scan equals the reference archive's survivors."""
        arr = np.asarray(points, dtype=float)
        mask = pareto_mask_2d(arr[:, 0], arr[:, 1])
        scan_set = {tuple(r) for r in arr[mask]}
        archive_rows, _ = eps_sort(arr)
        archive_set = {tuple(r) for r in archive_rows}
        assert scan_set == archive_set

    def test_indices_sorted_by_first_objective(self):
        rng = np.random.default_rng(3)
        f = rng.random(100)
        s = rng.random(100)
        idx = pareto_indices_2d(f, s)
        assert np.all(np.diff(f[idx]) >= 0)
        # On a frontier the second objective is non-increasing.
        assert np.all(np.diff(s[idx]) <= 0)


class TestFrontierMetrics:
    def test_cost_span(self):
        lo, hi, ratio = frontier_cost_span(np.array([126.0, 140.0, 167.0]))
        assert lo == 126.0
        assert hi == 167.0
        assert ratio == pytest.approx(167 / 126)

    def test_cost_span_empty_rejected(self):
        with pytest.raises(ValueError):
            frontier_cost_span(np.array([]))

    def test_cost_span_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            frontier_cost_span(np.array([0.0, 1.0]))

    def test_hypervolume_unit_square(self):
        # Single point at origin, reference (1, 1): area 1.
        assert hypervolume_2d(np.array([0.0]), np.array([0.0]),
                              (1.0, 1.0)) == pytest.approx(1.0)

    def test_hypervolume_staircase(self):
        f = np.array([0.0, 0.5])
        s = np.array([0.5, 0.0])
        hv = hypervolume_2d(f, s, (1.0, 1.0))
        assert hv == pytest.approx(0.75)

    def test_hypervolume_ignores_points_beyond_reference(self):
        hv = hypervolume_2d(np.array([2.0]), np.array([2.0]), (1.0, 1.0))
        assert hv == 0.0

    def test_hypervolume_monotone_in_points(self):
        rng = np.random.default_rng(5)
        f = rng.random(30)
        s = rng.random(30)
        hv_all = hypervolume_2d(f, s, (1.5, 1.5))
        hv_some = hypervolume_2d(f[:5], s[:5], (1.5, 1.5))
        assert hv_all >= hv_some - 1e-12

    def test_knee_point_on_l_shaped_frontier(self):
        # The corner of an L is the knee.
        f = np.array([0.0, 0.0, 0.1, 1.0])
        s = np.array([1.0, 1.0, 0.1, 0.0])
        knee = knee_point_2d(f, s)
        assert (f[knee], s[knee]) == (0.1, 0.1)

    def test_knee_point_two_points_returns_first(self):
        idx = knee_point_2d(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        assert idx in (0, 1)

    def test_knee_point_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point_2d(np.array([]), np.array([]))

    def test_knee_point_degenerate_frontier_no_warning(self):
        """All-equal objectives (duplicates) must not divide by zero."""
        f = np.array([1.0, 1.0, 1.0])
        s = np.array([2.0, 2.0, 2.0])
        with np.errstate(divide="raise", invalid="raise"):
            knee = knee_point_2d(f, s)
        assert knee == 0

    def test_knee_point_degenerate_one_axis(self):
        """A frontier flat in one objective returns its first point."""
        # Only duplicates can flatten a frontier axis: distinct frontier
        # points are strictly ordered in both objectives.
        f = np.array([1.0, 1.0, 1.0, 9.0])
        s = np.array([3.0, 3.0, 3.0, 9.0])  # (9, 9) is dominated
        with np.errstate(divide="raise", invalid="raise"):
            knee = knee_point_2d(f, s)
        assert (f[knee], s[knee]) == (1.0, 3.0)


class TestAttainmentSurface:
    def test_running_minimum(self):
        f = np.array([1.0, 2.0, 3.0])
        s = np.array([5.0, 3.0, 4.0])
        out = attainment_surface(f, s, np.array([0.5, 1.0, 2.5, 10.0]))
        assert out[0] == np.inf
        assert out[1] == 5.0
        assert out[2] == 3.0
        assert out[3] == 3.0

    def test_is_min_cost_for_deadline_semantics(self):
        # attainment at deadline q = min cost among configs with T <= q.
        times = np.array([10.0, 20.0, 30.0])
        costs = np.array([100.0, 60.0, 80.0])
        out = attainment_surface(times, costs, np.array([15.0, 25.0, 35.0]))
        np.testing.assert_allclose(out, [100.0, 60.0, 60.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            attainment_surface(np.array([1.0]), np.array([1.0, 2.0]),
                               np.array([1.0]))


class TestNondominatedRank:
    def test_front_zero_is_pareto_set(self):
        from repro.pareto.frontier import nondominated_rank_2d

        rng = np.random.default_rng(7)
        f = rng.random(60)
        s = rng.random(60)
        ranks = nondominated_rank_2d(f, s)
        np.testing.assert_array_equal(ranks == 0, pareto_mask_2d(f, s))

    def test_all_ranks_assigned(self):
        from repro.pareto.frontier import nondominated_rank_2d

        rng = np.random.default_rng(8)
        f = rng.integers(0, 10, 50).astype(float)
        s = rng.integers(0, 10, 50).astype(float)
        ranks = nondominated_rank_2d(f, s)
        assert np.all(ranks >= 0)

    def test_each_front_nondominated_within_itself(self):
        from repro.pareto.frontier import nondominated_rank_2d

        rng = np.random.default_rng(9)
        f = rng.integers(0, 8, 40).astype(float)
        s = rng.integers(0, 8, 40).astype(float)
        ranks = nondominated_rank_2d(f, s)
        for r in range(ranks.max() + 1):
            idx = np.flatnonzero(ranks == r)
            for i in idx:
                for j in idx:
                    if i != j:
                        assert not dominates((f[i], s[i]), (f[j], s[j]))

    def test_higher_rank_dominated_by_lower(self):
        from repro.pareto.frontier import nondominated_rank_2d

        f = np.array([0.0, 1.0, 2.0])
        s = np.array([0.0, 1.0, 2.0])
        ranks = nondominated_rank_2d(f, s)
        np.testing.assert_array_equal(ranks, [0, 1, 2])

    def test_max_rank_caps_peeling(self):
        from repro.pareto.frontier import nondominated_rank_2d

        f = np.arange(10, dtype=float)
        s = np.arange(10, dtype=float)
        ranks = nondominated_rank_2d(f, s, max_rank=3)
        assert ranks.max() == 3
        assert np.count_nonzero(ranks == 3) == 7
