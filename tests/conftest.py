"""Shared fixtures.

Expensive artefacts (the full Table III catalog's 10M-configuration
evaluation, the experiment context) are session-scoped so the whole suite
pays for them once; most unit tests use the small 3-type catalog instead.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

# Pinned Hypothesis profile for CI: per-example deadlines are meaningless
# on shared runners (a noisy neighbour fails a healthy test), and
# derandomization keeps every matrix entry running the identical example
# set — a red build always reproduces locally with HYPOTHESIS_PROFILE=ci.
hypothesis_settings.register_profile("ci", deadline=None, derandomize=True)
_profile = os.environ.get(
    "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "default")
hypothesis_settings.load_profile(_profile)

from repro.apps import GalaxyApp, SandApp, X264App
from repro.apps.base import PerformanceProfile
from repro.apps.demand import LinearTerm, QuadraticTerm, SeparableDemand
from repro.apps.synthetic import SyntheticApp
from repro.cloud.catalog import Catalog, ec2_catalog, make_catalog
from repro.cloud.instance import ResourceCategory
from repro.core.celia import Celia
from repro.core.configspace import ConfigurationSpace
from repro.engine.runner import EngineConfig


@pytest.fixture(scope="session", autouse=True)
def _isolated_evaluation_cache(tmp_path_factory):
    """Point the persistent evaluation cache at a session tmpdir.

    Keeps the suite from reading or writing the user's real
    ``~/.cache/celia`` (tests must be hermetic and not leave hundreds of
    megabytes behind).
    """
    from repro.cache import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("celia-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def ec2() -> Catalog:
    """The paper's nine-type catalog, quota 5."""
    return ec2_catalog()


@pytest.fixture()
def small_catalog() -> Catalog:
    """A 3-type catalog with quota 2: 26 configurations, brute-forceable."""
    return make_catalog(
        [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
         ("b.small", 2, 2.5, 0.16)],
        quota=2,
    )


@pytest.fixture()
def small_capacities(small_catalog) -> np.ndarray:
    """A made-up measured-capacity vector matching ``small_catalog``."""
    return np.array([2.0, 4.2, 1.5])


@pytest.fixture()
def simple_app() -> SyntheticApp:
    """A deterministic synthetic app: D = n * (1 + 0.5 a^2) GI."""
    return SyntheticApp(
        SeparableDemand(
            size_term=LinearTerm(slope=1.0),
            accuracy_term=QuadraticTerm(a=1.0, b=0.0, c=0.5),
            scale=1.0,
        ),
        profile=PerformanceProfile(
            ipc_by_category={
                ResourceCategory.COMPUTE: 1.0,
                ResourceCategory.GENERAL: 0.8,
                ResourceCategory.MEMORY: 0.6,
            },
            local_ipc=1.0,
        ),
        name="simple",
        task_size_sigma=0.0,
    )


@pytest.fixture()
def ideal_engine() -> EngineConfig:
    """Deterministic, overhead-free engine config."""
    return EngineConfig.ideal()


@pytest.fixture(scope="session")
def celia_ec2() -> Celia:
    """A CELIA instance on the full catalog, shared across the session.

    Characterizations and space evaluations are cached inside, so the
    first test touching an app pays the cost once.
    """
    return Celia(ec2_catalog(), seed=42)


@pytest.fixture(scope="session")
def galaxy() -> GalaxyApp:
    return GalaxyApp()


@pytest.fixture(scope="session")
def sand() -> SandApp:
    return SandApp(seed=42)


@pytest.fixture(scope="session")
def x264() -> X264App:
    return X264App(seed=42)


def brute_force_space(catalog: Catalog) -> np.ndarray:
    """All non-empty configurations of a catalog via itertools (small only)."""
    import itertools

    quotas = catalog.quotas
    rows = [
        np.array(combo)
        for combo in itertools.product(*[range(q + 1) for q in quotas])
        if sum(combo) > 0
    ]
    return np.vstack(rows)


@pytest.fixture()
def small_space(small_catalog) -> ConfigurationSpace:
    return ConfigurationSpace(small_catalog)
