"""Tests for the spot market subsystem (:mod:`repro.market`).

Covers the seeded price streams (determinism, floor clipping, mean
reversion, family correlation), interruption draws (bid monotonicity,
cross-process reproducibility), bid policies, the mixed purchase
planner, the spot fleet, the chaos scenarios' market surges, and — the
subsystem's headline guarantee — byte-identical double runs of the
market-enabled controller under both new chaos scenarios.
"""

import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import application_by_name
from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.errors import ValidationError
from repro.market import (
    AdaptiveBid,
    FixedFractionBid,
    MarketPolicy,
    OnDemandCapBid,
    SpotExpectedBilling,
    SpotFleet,
    SpotMarket,
    SpotMarketConfig,
    bid_policy,
    bid_policy_names,
    purchase_plan,
    split_configuration,
)
from repro.runtime import AdaptiveController, RuntimeConfig
from repro.runtime.chaos import chaos_scenario

#: Short-horizon config: fast paths, plenty of steps for statistics.
SHORT = SpotMarketConfig(horizon_hours=48.0)


@pytest.fixture(scope="module")
def ec2m():
    """The nine-type catalog (quota irrelevant to the market)."""
    return ec2_catalog()


@pytest.fixture()
def market(ec2m):
    return SpotMarket(ec2m, SHORT, seed=7)


class TestSpotMarketConfig:
    @pytest.mark.parametrize("kwargs", [
        {"mean_fraction": 0.0},
        {"mean_fraction": 1.5},
        {"theta": 0.0},
        {"sigma": -0.1},
        {"floor_fraction": 1.5},
        {"floor_fraction": -0.1},
        {"family_correlation": 1.5},
        {"step_hours": 0.0},
        {"horizon_hours": -1.0},
        {"reclaim_rate_per_hour": -0.01},
        {"price_surge": 0.0},
        {"volatility_surge": -1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            SpotMarketConfig(**kwargs)

    def test_defaults_valid(self):
        config = SpotMarketConfig()
        assert config.mean_fraction == 0.35
        assert config.horizon_hours == pytest.approx(24.0 * 14)


class TestPricePaths:
    def test_identical_seeds_identical_paths(self, ec2m):
        a = SpotMarket(ec2m, SHORT, seed=11)
        b = SpotMarket(ec2m, SHORT, seed=11)
        for itype in ec2m:
            np.testing.assert_array_equal(a.price_path(itype.name),
                                          b.price_path(itype.name))

    def test_different_seeds_differ(self, ec2m):
        a = SpotMarket(ec2m, SHORT, seed=11)
        b = SpotMarket(ec2m, SHORT, seed=12)
        assert not np.array_equal(a.price_path("c4.large"),
                                  b.price_path("c4.large"))

    def test_query_order_independence(self, ec2m):
        names = [itype.name for itype in ec2m]
        forward = SpotMarket(ec2m, SHORT, seed=3)
        backward = SpotMarket(ec2m, SHORT, seed=3)
        paths_fwd = {n: forward.price_path(n) for n in names}
        paths_bwd = {n: backward.price_path(n) for n in reversed(names)}
        for n in names:
            np.testing.assert_array_equal(paths_fwd[n], paths_bwd[n])

    def test_paths_are_read_only_and_cached(self, market):
        path = market.price_path("m4.large")
        assert path is market.price_path("m4.large")
        with pytest.raises(ValueError):
            path[0] = 0.0

    def test_floor_clipping(self, ec2m):
        config = SpotMarketConfig(sigma=3.0, floor_fraction=0.5,
                                  horizon_hours=48.0)
        market = SpotMarket(ec2m, config, seed=5)
        for itype in ec2m:
            path = market.price_path(itype.name)
            floor = config.floor_fraction * market.mean_price(itype.name)
            assert np.all(path >= floor - 1e-12)

    def test_mean_reversion(self, ec2m):
        config = SpotMarketConfig(sigma=0.05, horizon_hours=200.0,
                                  step_hours=0.5)
        market = SpotMarket(ec2m, config, seed=1)
        mean = market.mean_price("c4.xlarge")
        path = market.price_path("c4.xlarge")
        assert abs(path.mean() - mean) < 0.1 * mean

    def test_family_correlation_extremes(self, ec2m):
        def increment_corr(rho):
            config = SpotMarketConfig(family_correlation=rho,
                                      floor_fraction=0.0,
                                      horizon_hours=96.0)
            market = SpotMarket(ec2m, config, seed=9)
            a = np.diff(market.price_path("c4.large"))
            b = np.diff(market.price_path("c4.xlarge"))
            return float(np.corrcoef(a / a.std(), b / b.std())[0, 1])

        assert increment_corr(1.0) > 0.99
        assert abs(increment_corr(0.0)) < 0.2
        assert increment_corr(1.0) > increment_corr(0.0)

    def test_same_family_co_moves_more_than_cross_family(self, ec2m):
        config = SpotMarketConfig(floor_fraction=0.0, horizon_hours=96.0)
        market = SpotMarket(ec2m, config, seed=9)
        c4l = np.diff(market.price_path("c4.large"))
        c4x = np.diff(market.price_path("c4.xlarge"))
        r3l = np.diff(market.price_path("r3.large"))
        same = np.corrcoef(c4l, c4x)[0, 1]
        cross = np.corrcoef(c4l, r3l)[0, 1]
        assert same > cross

    def test_price_at(self, market):
        path = market.price_path("c4.large")
        assert market.price_at("c4.large", 0.0) == path[0]
        # Beyond the horizon clamps to the last grid value.
        assert market.price_at("c4.large", 10_000.0) == path[-1]
        with pytest.raises(ValidationError):
            market.price_at("c4.large", -1.0)

    def test_surge_scales_mean(self, ec2m):
        calm = SpotMarket(ec2m, SHORT, seed=2)
        surged = SpotMarket(
            ec2m, SpotMarketConfig(horizon_hours=48.0, price_surge=2.0),
            seed=2)
        assert surged.mean_price("c4.large") == pytest.approx(
            2.0 * calm.mean_price("c4.large"))


class TestSpotCost:
    def test_validation(self, market):
        with pytest.raises(ValidationError):
            market.spot_cost("c4.large", 2.0, 1.0)
        assert market.spot_cost("c4.large", 1.0, 1.0) == 0.0

    def test_piecewise_constant_integral(self, market):
        step = market.config.step_hours
        path = market.price_path("c4.large")
        # One full grid cell costs exactly price × step.
        assert market.spot_cost("c4.large", 0.0, step) == pytest.approx(
            float(path[0]) * step)
        # Additivity over adjacent intervals.
        total = market.spot_cost("c4.large", 0.0, 1.7)
        split = (market.spot_cost("c4.large", 0.0, 0.85)
                 + market.spot_cost("c4.large", 0.85, 1.7))
        assert total == pytest.approx(split)

    def test_extends_past_horizon_at_last_price(self, market):
        h = market.config.horizon_hours
        last = float(market.price_path("c4.large")[-1])
        assert market.spot_cost("c4.large", h + 5.0, h + 7.0) == \
            pytest.approx(2.0 * last)


class TestInterruptions:
    def test_bid_above_max_never_crosses(self, market):
        ceiling = float(market.price_path("c4.large").max())
        assert market.first_bid_crossing("c4.large", ceiling + 1.0) == \
            float("inf")

    def test_bid_below_start_crosses_immediately(self, market):
        path = market.price_path("c4.large")
        assert market.first_bid_crossing("c4.large",
                                         float(path[0]) * 0.5) == 0.0

    @given(st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=0.01, max_value=1.0))
    def test_crossing_monotone_in_bid(self, f1, f2):
        market = SpotMarket(ec2_catalog(), SHORT, seed=13)
        od = market.catalog.type_named("m4.xlarge").price_per_hour
        lo, hi = sorted((f1, f2))
        assert (market.first_bid_crossing("m4.xlarge", lo * od)
                <= market.first_bid_crossing("m4.xlarge", hi * od))

    def test_interruption_never_after_crossing(self, market):
        bid = market.catalog.type_named("c4.large").price_per_hour
        crossing = market.first_bid_crossing("c4.large", bid)
        hit = market.first_interruption("c4.large", bid, lease_key=4)
        assert hit <= crossing

    def test_zero_reclaim_rate_is_pure_crossing(self, market):
        bid = 0.6 * market.catalog.type_named("c4.large").price_per_hour
        assert market.first_interruption(
            "c4.large", bid, reclaim_rate_per_hour=0.0) == \
            market.first_bid_crossing("c4.large", bid)

    def test_reproducible_per_lease_key(self, ec2m):
        config = SpotMarketConfig(horizon_hours=48.0,
                                  reclaim_rate_per_hour=0.5)
        a = SpotMarket(ec2m, config, seed=21)
        b = SpotMarket(ec2m, config, seed=21)
        bid = ec2m.type_named("r3.large").price_per_hour
        assert a.first_interruption("r3.large", bid, lease_key=1) == \
            b.first_interruption("r3.large", bid, lease_key=1)
        # Distinct leases of the same type draw distinct reclaim times.
        assert a.first_interruption("r3.large", bid, lease_key=1) != \
            a.first_interruption("r3.large", bid, lease_key=2)


class TestCrossProcessReproducibility:
    """Identical seeds reproduce identical markets in a fresh process."""

    SCRIPT = """\
import json
from repro.cloud.catalog import ec2_catalog
from repro.market import SpotMarket, SpotMarketConfig

market = SpotMarket(ec2_catalog(),
                    SpotMarketConfig(horizon_hours=48.0,
                                     reclaim_rate_per_hour=0.3),
                    seed=17)
print(json.dumps({
    "head": market.price_path("c4.xlarge")[:8].tolist(),
    "cost": market.spot_cost("c4.xlarge", 0.0, 10.0),
    "hit": market.first_interruption(
        "c4.xlarge", 0.5 * market.catalog.type_named(
            "c4.xlarge").price_per_hour, lease_key=3),
}))
"""

    def test_subprocess_matches_in_process(self, ec2m):
        market = SpotMarket(
            ec2m, SpotMarketConfig(horizon_hours=48.0,
                                   reclaim_rate_per_hour=0.3),
            seed=17)
        expected = {
            "head": market.price_path("c4.xlarge")[:8].tolist(),
            "cost": market.spot_cost("c4.xlarge", 0.0, 10.0),
            "hit": market.first_interruption(
                "c4.xlarge", 0.5 * ec2m.type_named(
                    "c4.xlarge").price_per_hour, lease_key=3),
        }
        proc = subprocess.run([sys.executable, "-c", self.SCRIPT],
                              capture_output=True, text=True, check=True)
        # json round-trips doubles exactly, so equality is bit-level.
        assert json.loads(proc.stdout) == expected


class TestBidPolicies:
    def test_registry(self):
        assert bid_policy_names() == ("fixed-fraction", "on-demand-cap",
                                      "adaptive")
        for name in bid_policy_names():
            policy = bid_policy(name)
            assert policy.name == name
            assert "\n" not in policy.describe()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown bid policy"):
            bid_policy("wing-it")

    def test_fixed_fraction(self, market):
        od = market.catalog.type_named("c4.large").price_per_hour
        assert FixedFractionBid(0.4).bid_price(market, "c4.large") == \
            pytest.approx(0.4 * od)
        with pytest.raises(ValidationError):
            FixedFractionBid(0.0)

    def test_on_demand_cap(self, market):
        od = market.catalog.type_named("m4.large").price_per_hour
        assert OnDemandCapBid().bid_price(market, "m4.large") == od

    def test_adaptive_tracks_surge_up_to_cap(self, ec2m):
        calm = SpotMarket(ec2m, SHORT, seed=2)
        surged = SpotMarket(
            ec2m, SpotMarketConfig(horizon_hours=48.0, price_surge=2.2),
            seed=2)
        policy = AdaptiveBid()
        od = ec2m.type_named("c4.large").price_per_hour
        assert policy.bid_price(surged, "c4.large") > \
            policy.bid_price(calm, "c4.large")
        assert policy.bid_price(surged, "c4.large") <= od
        with pytest.raises(ValidationError):
            AdaptiveBid(margin=0.5)
        with pytest.raises(ValidationError):
            AdaptiveBid(cap_fraction=0.0)


class TestExpectedBilling:
    def test_linear_at_the_mean_fraction(self):
        billing = SpotExpectedBilling(mean_fraction=0.35)
        assert billing.amount_due(1.0, 10.0) == pytest.approx(3.5)

    def test_for_market_matches_config(self, ec2m):
        market = SpotMarket(
            ec2m, SpotMarketConfig(horizon_hours=48.0, price_surge=2.0),
            seed=0)
        billing = SpotExpectedBilling.for_market(market)
        assert billing.amount_due(1.0, 1.0) == pytest.approx(0.7)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SpotExpectedBilling(mean_fraction=0.0)
        with pytest.raises(ValidationError):
            SpotExpectedBilling(price_surge=0.0)


class TestSplitConfiguration:
    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=1, max_size=9),
           st.floats(min_value=0.0, max_value=1.0))
    def test_partition(self, counts, fraction):
        ondemand, spot = split_configuration(tuple(counts), fraction)
        assert all(o >= 0 and s >= 0 for o, s in zip(ondemand, spot))
        assert tuple(o + s for o, s in zip(ondemand, spot)) == tuple(counts)

    def test_endpoints_exact(self):
        config = (2, 0, 1)
        assert split_configuration(config, 0.0) == (config, (0, 0, 0))
        assert split_configuration(config, 1.0) == ((0, 0, 0), config)

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            split_configuration((1,), 1.5)


class TestMarketPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"spot_fraction": -0.1},
        {"spot_fraction": 1.5},
        {"fallback_after_interruptions": 0},
        {"min_slack_fraction": 1.0},
        {"bid_policy": "yolo"},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            MarketPolicy(**kwargs)

    def test_default_slack_below_planner_guarantee(self):
        # The planner guarantees ~(1 − deadline_safety) slack; the
        # default policy must not demand more or spot never engages.
        assert MarketPolicy().min_slack_fraction < \
            1.0 - RuntimeConfig().deadline_safety


class TestPurchasePlan:
    CONFIG = (2, 1, 0, 0, 2, 0, 0, 0, 1)

    def test_expected_never_above_on_demand(self, market):
        plan = purchase_plan(market, self.CONFIG, MarketPolicy(),
                             duration_hours=12.0)
        assert plan.expected_cost_dollars <= plan.ondemand_cost_dollars
        assert 0.0 <= plan.interruption_risk <= 1.0
        assert 0.0 <= plan.expected_saving_fraction < 1.0
        assert plan.spot_nodes == sum(plan.spot)
        for s, b in zip(plan.spot, plan.bids):
            assert (b > 0) == (s > 0)

    def test_zero_spot_fraction_prices_pure_on_demand(self, market):
        plan = purchase_plan(market, self.CONFIG,
                             MarketPolicy(spot_fraction=0.0),
                             duration_hours=12.0)
        assert plan.spot_nodes == 0
        assert plan.expected_cost_dollars == \
            pytest.approx(plan.ondemand_cost_dollars)
        assert plan.expected_saving_fraction == pytest.approx(0.0)

    def test_validation(self, market):
        with pytest.raises(ValidationError):
            purchase_plan(market, (1, 2), MarketPolicy(), duration_hours=1.0)
        with pytest.raises(ValidationError):
            purchase_plan(market, self.CONFIG, MarketPolicy(),
                          duration_hours=-1.0)


class TestSpotFleet:
    SPOT = (1, 0, 0, 0, 2, 0, 0, 0, 0)

    @pytest.fixture()
    def fleet(self, market):
        return SpotFleet(market, seed=5)

    def test_launch_shape_and_pools(self, fleet):
        allocation = fleet.launch(self.SPOT, bid_policy("on-demand-cap"),
                                  now_hours=0.0, lease_key=0)
        assert len(allocation.nodes) == sum(self.SPOT)
        assert allocation.active
        # Nodes of the same type share one pool: one bid, one
        # interruption time.
        m4 = [n for n in allocation.nodes
              if n.instance.itype.name == "m4.xlarge"]
        assert len(m4) == 2
        assert m4[0].bid_price == m4[1].bid_price
        assert m4[0].interruption_at_hours == m4[1].interruption_at_hours

    def test_launch_validation(self, fleet):
        with pytest.raises(ValidationError):
            fleet.launch((0,) * 9, bid_policy("on-demand-cap"),
                         now_hours=0.0, lease_key=0)
        with pytest.raises(ValidationError):
            fleet.launch((1, 0), bid_policy("on-demand-cap"),
                         now_hours=0.0, lease_key=0)

    def test_bill_monotone_and_capped_by_bid(self, fleet):
        allocation = fleet.launch(self.SPOT, bid_policy("fixed-fraction"),
                                  now_hours=0.0, lease_key=0)
        assert fleet.bill_at(allocation, 0.0) == 0.0
        bills = [fleet.bill_at(allocation, t) for t in (1.0, 2.0, 4.0, 8.0)]
        assert all(b1 <= b2 + 1e-12 for b1, b2 in zip(bills, bills[1:]))
        # While held, a node never pays above its bid.
        for horizon, bill in zip((1.0, 2.0, 4.0, 8.0), bills):
            cap = sum(n.bid_price * (n.held_until(horizon)
                                     - n.instance.launched_at_hours)
                      for n in allocation.nodes)
            assert bill <= cap + 1e-9

    def test_terminate_settles_once(self, fleet):
        allocation = fleet.launch(self.SPOT, bid_policy("on-demand-cap"),
                                  now_hours=1.0, lease_key=0)
        bill = fleet.terminate(allocation, now_hours=3.0)
        assert bill == pytest.approx(fleet.spent_dollars)
        assert not allocation.active
        assert allocation.billed_amount == bill
        with pytest.raises(ValidationError):
            fleet.terminate(allocation, now_hours=4.0)

    def test_terminate_before_start_rejected(self, fleet):
        allocation = fleet.launch(self.SPOT, bid_policy("on-demand-cap"),
                                  now_hours=2.0, lease_key=0)
        with pytest.raises(ValidationError):
            fleet.terminate(allocation, now_hours=1.0)


class TestChaosMarketConfigs:
    def test_calm_is_nominal(self):
        config = chaos_scenario("calm").market_config()
        base = SpotMarketConfig()
        assert config.price_surge == base.price_surge
        assert config.reclaim_rate_per_hour == base.reclaim_rate_per_hour

    def test_spot_squeeze_raises_reclaims(self):
        config = chaos_scenario("spot-squeeze").market_config()
        assert config.reclaim_rate_per_hour == pytest.approx(
            SpotMarketConfig().reclaim_rate_per_hour + 0.15)

    def test_price_spike_surges(self):
        config = chaos_scenario("price-spike").market_config()
        assert config.price_surge == pytest.approx(2.2)
        assert config.volatility_surge == pytest.approx(3.0)


class TestMarketRunsAreByteIdentical:
    """The tentpole guarantee: market-enabled double runs replay exactly."""

    PROBLEM = (65536, 8000, 40.0, 400.0)

    @pytest.fixture(scope="class")
    def celia2(self):
        return Celia(ec2_catalog(max_nodes_per_type=2), seed=42)

    @pytest.fixture(scope="class")
    def galaxy_app(self):
        return application_by_name("galaxy", seed=42)

    def run_market(self, celia2, galaxy_app, scenario, **policy):
        controller = AdaptiveController(
            celia2, galaxy_app, scenario=chaos_scenario(scenario),
            config=RuntimeConfig(), seed=123,
            market_policy=MarketPolicy(**policy))
        return controller.execute(*self.PROBLEM)

    @pytest.mark.parametrize("scenario", ["spot-squeeze", "price-spike"])
    def test_double_run_byte_identical(self, celia2, galaxy_app, scenario):
        first = self.run_market(celia2, galaxy_app, scenario)
        second = self.run_market(celia2, galaxy_app, scenario)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)
        assert first.market is True
        assert first.cost_dollars <= first.budget_dollars

    def test_spot_experiment_cell_replays(self, celia2, galaxy_app):
        from repro.experiments.spot_exp import run_cell

        first = run_cell(celia2, galaxy_app, "spot-squeeze", "mixed",
                         seed=42, trials=1)
        second = run_cell(celia2, galaxy_app, "spot-squeeze", "mixed",
                          seed=42, trials=1)
        assert first == second
        assert first.budget_overruns == 0
