"""Tests for the ASCII plotting utilities."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.asciiplot import ascii_lines, ascii_scatter


class TestScatter:
    def test_contains_markers_and_labels(self):
        x = np.linspace(0, 10, 50)
        y = x**2
        out = ascii_scatter(x, y, xlabel="time", ylabel="cost",
                            title="demo")
        assert "demo" in out
        assert "time" in out
        assert "cost" in out
        assert "." in out

    def test_overlay_drawn_on_top(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        out = ascii_scatter(x, y, overlay_x=x, overlay_y=y)
        assert "*" in out
        # Overlay covers the base markers at identical positions.
        assert "." not in out.split("\n", 1)[0]

    def test_axis_limits_in_output(self):
        x = np.array([2.0, 8.0])
        y = np.array([100.0, 400.0])
        out = ascii_scatter(x, y)
        assert "2" in out and "8" in out
        assert "100" in out and "400" in out

    def test_constant_values_padded(self):
        out = ascii_scatter(np.array([1.0, 1.0]), np.array([5.0, 5.0]))
        assert "." in out

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            ascii_scatter(np.array([1.0]), np.array([1.0, 2.0]))

    def test_too_small_grid(self):
        with pytest.raises(ValidationError):
            ascii_scatter(np.array([1.0]), np.array([1.0]), width=2)

    def test_all_points_inside_grid(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(200), rng.random(200)
        out = ascii_scatter(x, y, width=40, height=10)
        body_lines = [l for l in out.splitlines() if "|" in l]
        assert len(body_lines) == 10


class TestLines:
    def test_legend_and_markers(self):
        x = np.linspace(1, 10, 10)
        out = ascii_lines(x, {"6hr": x * 2, "24hr": x})
        assert "legend:" in out
        assert "o=6hr" in out
        assert "x=24hr" in out

    def test_infeasible_points_skipped(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, np.inf, 3.0])
        out = ascii_lines(x, {"s": y})
        assert "legend" in out  # renders despite the inf

    def test_needs_series(self):
        with pytest.raises(ValidationError):
            ascii_lines(np.array([1.0]), {})

    def test_too_many_series(self):
        x = np.array([1.0, 2.0])
        series = {f"s{k}": x for k in range(9)}
        with pytest.raises(ValidationError):
            ascii_lines(x, series)

    def test_series_shape_mismatch(self):
        with pytest.raises(ValidationError):
            ascii_lines(np.array([1.0, 2.0]), {"s": np.array([1.0])})

    def test_all_infinite_series_rejected(self):
        x = np.array([1.0, 2.0])
        with pytest.raises(ValidationError):
            ascii_lines(x, {"s": np.array([np.inf, np.inf])})
