"""End-to-end planner fleet: parity, routing, failure handling.

These tests boot real fleets — worker subprocesses behind Unix-domain
sockets, the asyncio HTTP front end on an ephemeral port — and drive
them over HTTP, asserting the contracts the architecture advertises:

* a select answered by a shard is **byte-identical** to the in-process
  ``dispatch_request`` answer (the front end forwards worker bytes
  verbatim, the worker serializes exactly like ``celia serve``);
* repeats of a request hit the shard's result cache and then the
  worker's serialized-response memo;
* a killed worker's keys re-route to the fallback owner without the
  client seeing an error, and the monitor respawns the worker;
* a graceful restart through ``POST /fleet/restart`` drains, respawns
  and re-admits the worker.
"""

import asyncio
import json
import os
import signal
import time
import urllib.error
import urllib.request

from repro.fleet import FleetConfig, PlannerFleet
from repro.fleet.frontend import FleetFrontend
from repro.fleet.hashing import warm_key
from repro.obs.metrics import label_snapshot, merge_snapshots
from repro.service.planner import PlannerService, ServiceConfig
from repro.service.server import dispatch_request

SELECT_BODY = {"app": "galaxy", "n": 65536, "a": 2000,
               "deadline_hours": 48, "budget_dollars": 350}


def fleet_config(**overrides):
    defaults = dict(workers=2, port=0, quota=2, cache_dir=False,
                    monitor_interval_s=0.2, connect_timeout_s=60.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


async def boot_fleet(config):
    fleet = PlannerFleet(config)
    await fleet.start()
    frontend = FleetFrontend(fleet, host="127.0.0.1", port=0)
    await frontend.start()
    return fleet, frontend


async def http(port, method, path, body=None):
    """One blocking HTTP exchange, off-loop; returns (status, bytes)."""

    def go():
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    return await asyncio.get_running_loop().run_in_executor(None, go)


def seed_owned_by(fleet, worker_id, quota=2):
    """A seed whose warm key the ring assigns to ``worker_id``."""
    for seed in range(64):
        if fleet.route(warm_key("galaxy", quota, seed)) == worker_id:
            return seed
    raise AssertionError(f"no seed in 0..63 routes to {worker_id}")


class TestLabelSnapshot:
    SNAP = {
        "counters": {"requests_select": 4,
                     'hits{kind="select"}': 2},
        "gauges": {"queue_depth": 1.0},
        "histograms": {"latency_s": {"count": 4}},
    }

    def test_labels_fold_into_every_series(self):
        out = label_snapshot(self.SNAP, {"worker": "w0"})
        assert out["counters"]['requests_select{worker="w0"}'] == 4
        assert out["gauges"]['queue_depth{worker="w0"}'] == 1.0
        assert out["histograms"]['latency_s{worker="w0"}'] == {"count": 4}

    def test_existing_labels_kept_and_sorted(self):
        out = label_snapshot(self.SNAP, {"worker": "w0"})
        assert out["counters"]['hits{kind="select",worker="w0"}'] == 2

    def test_new_label_wins_collision(self):
        out = label_snapshot({"counters": {'x{worker="old"}': 1}},
                             {"worker": "new"})
        assert out["counters"] == {'x{worker="new"}': 1}

    def test_empty_labels_is_identity(self):
        assert label_snapshot(self.SNAP, {}) is self.SNAP

    def test_relabeled_worker_snapshots_merge_without_collision(self):
        merged = merge_snapshots(
            label_snapshot({"counters": {"requests_select": 1}},
                           {"worker": "w0"}),
            label_snapshot({"counters": {"requests_select": 2}},
                           {"worker": "w1"}))
        assert merged["counters"] == {
            'requests_select{worker="w0"}': 1,
            'requests_select{worker="w1"}': 2,
        }


class TestFleetEndToEnd:
    def test_select_parity_routing_and_repeat_caching(self):
        async def run():
            fleet, frontend = await boot_fleet(fleet_config())
            try:
                port = frontend.port
                status, health = await http(port, "GET", "/healthz")
                assert status == 200
                assert json.loads(health)["ready"] is True

                # One seed per worker so both shards serve.
                seeds = [seed_owned_by(fleet, wid)
                         for wid in fleet.worker_ids]
                responses = {}
                for seed in seeds:
                    status, raw = await http(
                        port, "POST", "/v1/select",
                        {**SELECT_BODY, "seed": seed})
                    assert status == 200, raw
                    responses[seed] = raw

                # Byte parity with the single-process dispatch path.
                service = PlannerService(config=ServiceConfig(
                    default_quota=2, cache_dir=False))
                for seed, raw in responses.items():
                    status, body = await dispatch_request(
                        service, {"kind": "select", **SELECT_BODY,
                                  "seed": seed})
                    assert status == 200
                    assert raw == json.dumps(body).encode("utf-8"), seed

                # Repeats: shard result cache, then the raw-byte memo.
                repeat_body = {**SELECT_BODY, "seed": seeds[0]}
                status, second = await http(port, "POST", "/v1/select",
                                            repeat_body)
                assert json.loads(second)["cached"] is True
                status, third = await http(port, "POST", "/v1/select",
                                           repeat_body)
                assert third == second

                status, raw = await http(port, "GET", "/metrics")
                counters = json.loads(raw)["counters"]
                for wid in fleet.worker_ids:
                    assert counters[f'fleet_routed{{worker="{wid}"}}'] >= 1
                    assert counters[
                        f'requests_select{{worker="{wid}"}}'] >= 1
                assert any(k.startswith("raw_response_hits")
                           and v >= 1 for k, v in counters.items()), \
                    counters

                status, text = await http(port, "GET", "/metrics.txt")
                assert status == 200
                assert b'fleet_routed{worker="w0"}' in text

                status, raw = await http(port, "GET", "/fleet")
                topology = json.loads(raw)
                assert [w["id"] for w in topology["workers"]] == \
                    list(fleet.worker_ids)
                assert all(w["alive"] and w["routable"]
                           for w in topology["workers"])
            finally:
                await frontend.stop()
                await fleet.stop()

        asyncio.run(run())

    def test_killed_worker_reroutes_then_respawns(self):
        async def run():
            fleet, frontend = await boot_fleet(fleet_config())
            try:
                port = frontend.port
                victim = fleet.worker_ids[0]
                seed = seed_owned_by(fleet, victim)
                body = {**SELECT_BODY, "seed": seed}

                pid = next(w["pid"] for w in fleet.describe()["workers"]
                           if w["id"] == victim)
                os.kill(pid, signal.SIGKILL)

                # The very next request for the dead shard's key must
                # still be answered — rerouted to the fallback owner.
                status, raw = await http(port, "POST", "/v1/select", body)
                assert status == 200, raw
                assert json.loads(raw)["result"]["feasible_count"] > 0

                snapshot = frontend.metrics.snapshot()["counters"]
                assert snapshot["fleet_reroutes_total"] >= 1

                # The monitor respawns the worker and re-admits it.
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    workers = fleet.describe()["workers"]
                    if all(w["alive"] and w["routable"] for w in workers):
                        break
                    await asyncio.sleep(0.2)
                else:
                    raise AssertionError(f"{victim} never rejoined")

                status, raw = await http(port, "POST", "/v1/select", body)
                assert status == 200, raw
            finally:
                await frontend.stop()
                await fleet.stop()

        asyncio.run(run())

    def test_graceful_restart_endpoint_and_warm_owner(self):
        async def run():
            # Slow monitor: the explicit restart should do the work.
            fleet, frontend = await boot_fleet(
                fleet_config(monitor_interval_s=30.0))
            try:
                port = frontend.port
                owner = await fleet.warm("galaxy")
                assert owner == fleet.route(
                    warm_key("galaxy", fleet.default_quota,
                             fleet.default_seed))

                status, raw = await http(port, "POST", "/fleet/restart",
                                         {"worker": "w0"})
                assert status == 200
                assert json.loads(raw) == {"restarted": "w0"}
                workers = fleet.describe()["workers"]
                assert all(w["alive"] and w["routable"] for w in workers)

                # Warm state is gone but rebuilds lazily, bit-identical.
                seed = seed_owned_by(fleet, "w0")
                status, raw = await http(port, "POST", "/v1/select",
                                         {**SELECT_BODY, "seed": seed})
                assert status == 200, raw
                assert json.loads(raw)["cached"] is False

                status, raw = await http(port, "POST", "/fleet/restart",
                                         {"worker": "w9"})
                assert status == 404
            finally:
                await frontend.stop()
                await fleet.stop()

        asyncio.run(run())
