"""Unit-conversion and quantity tests."""

import math

import pytest

from repro import units


class TestConversions:
    def test_giga_instructions_round_trip(self):
        assert units.giga_instructions(units.instructions_from_gi(3.5)) == 3.5

    def test_hours_seconds_round_trip(self):
        assert units.seconds_to_hours(units.hours_to_seconds(7.25)) == 7.25

    def test_one_hour_is_3600_seconds(self):
        assert units.hours_to_seconds(1) == 3600

    def test_gips_to_gi_per_hour(self):
        assert units.gips_to_gi_per_hour(2.0) == 7200.0

    def test_gi_per_hour_to_gips(self):
        assert units.gi_per_hour_to_gips(7200.0) == 2.0

    def test_dollars_per_hour_to_per_second(self):
        assert units.dollars_per_hour_to_per_second(3600.0) == pytest.approx(1.0)


class TestRate:
    def test_from_gips_and_instructions(self):
        rate = units.Rate.from_instructions_per_second(2e9)
        assert rate.gips == pytest.approx(2.0)
        assert rate.instructions_per_second == pytest.approx(2e9)

    def test_scaling_by_vcpus(self):
        per_vcpu = units.Rate.from_gips(1.4)
        whole = per_vcpu * 4
        assert whole.gips == pytest.approx(5.6)

    def test_right_multiplication(self):
        assert (3 * units.Rate.from_gips(1.0)).gips == pytest.approx(3.0)

    def test_addition(self):
        total = units.Rate.from_gips(1.0) + units.Rate.from_gips(2.5)
        assert total.gips == pytest.approx(3.5)

    def test_comparison(self):
        assert units.Rate.from_gips(1.0) < units.Rate.from_gips(2.0)
        assert units.Rate.from_gips(2.0) <= units.Rate.from_gips(2.0)

    def test_normalized_performance(self):
        # Figure 3's metric: GI/s per $/h.
        rate = units.Rate.from_gips(2.751)
        assert rate.per_dollar_hour(0.105) == pytest.approx(26.2, rel=1e-3)

    def test_normalized_performance_rejects_free_resources(self):
        with pytest.raises(ValueError):
            units.Rate.from_gips(1.0).per_dollar_hour(0.0)

    def test_gi_per_hour(self):
        assert units.Rate.from_gips(1.0).gi_per_hour == pytest.approx(3600.0)


class TestPrice:
    def test_cost_for_duration(self):
        assert units.Price(0.105).cost_for(10) == pytest.approx(1.05)

    def test_dollars_per_second(self):
        assert units.Price(3.6).dollars_per_second == pytest.approx(0.001)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            units.Price(-0.1)

    def test_non_finite_price_rejected(self):
        with pytest.raises(ValueError):
            units.Price(math.nan)

    def test_arithmetic(self):
        total = units.Price(0.105) + units.Price(0.209)
        assert total.dollars_per_hour == pytest.approx(0.314)
        assert (units.Price(0.1) * 5).dollars_per_hour == pytest.approx(0.5)


class TestFormatting:
    def test_format_duration_days_hours_minutes(self):
        assert units.format_duration(25.5) == "1d 1h 30m"

    def test_format_duration_minutes_only(self):
        assert units.format_duration(0.25) == "15m"

    def test_format_duration_zero(self):
        assert units.format_duration(0) == "0m"

    def test_format_duration_negative(self):
        assert units.format_duration(-1.5) == "-1h 30m"

    def test_format_money(self):
        assert units.format_money(1234.5) == "$1,234.50"
        assert units.format_money(-3) == "-$3.00"

    def test_format_instructions_scales(self):
        assert units.format_instructions(2.5e6) == "2.50 PI"
        assert units.format_instructions(2.5e3) == "2.50 TI"
        assert units.format_instructions(2.5) == "2.50 GI"
