"""Tests for the cluster view."""

import numpy as np
import pytest

from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.errors import SimulationError


def make_instances(catalog, app, spec):
    """spec: list of (type_name, contention)."""
    out = []
    for k, (name, contention) in enumerate(spec):
        out.append(Instance(instance_id=f"i-{k}",
                            itype=catalog.type_named(name),
                            contention_factor=contention))
    return out


class TestSimCluster:
    def test_rates_apply_contention(self, ec2, galaxy):
        instances = make_instances(ec2, galaxy,
                                   [("c4.large", 1.0), ("c4.large", 0.9)])
        cluster = SimCluster(instances, galaxy)
        nominal = galaxy.true_rate_gips(ec2.type_named("c4.large"))
        np.testing.assert_allclose(cluster.node_rates(),
                                   [nominal, 0.9 * nominal])
        np.testing.assert_allclose(cluster.node_nominal_rates(),
                                   [nominal, nominal])
        np.testing.assert_allclose(cluster.node_contentions(), [1.0, 0.9])

    def test_totals(self, ec2, galaxy):
        instances = make_instances(ec2, galaxy,
                                   [("c4.large", 1.0), ("c4.xlarge", 1.0)])
        cluster = SimCluster(instances, galaxy)
        assert cluster.n_nodes == 2
        assert cluster.total_vcpus == 6
        assert cluster.total_rate_gips == pytest.approx(
            galaxy.true_rate_gips(ec2.type_named("c4.large"))
            + galaxy.true_rate_gips(ec2.type_named("c4.xlarge")))

    def test_slot_rates_expand_vcpus(self, ec2, galaxy):
        instances = make_instances(ec2, galaxy, [("c4.xlarge", 1.0)])
        cluster = SimCluster(instances, galaxy)
        slots = cluster.slot_rates()
        assert slots.shape == (4,)
        np.testing.assert_allclose(slots, slots[0])
        assert slots.sum() == pytest.approx(cluster.total_rate_gips)

    def test_ideal_seconds(self, ec2, galaxy):
        instances = make_instances(ec2, galaxy, [("c4.large", 1.0)])
        cluster = SimCluster(instances, galaxy)
        rate = cluster.total_rate_gips
        assert cluster.ideal_seconds(rate * 100) == pytest.approx(100.0)

    def test_empty_cluster_rejected(self, galaxy):
        with pytest.raises(SimulationError):
            SimCluster([], galaxy)

    def test_nonpositive_work_rejected(self, ec2, galaxy):
        instances = make_instances(ec2, galaxy, [("c4.large", 1.0)])
        cluster = SimCluster(instances, galaxy)
        with pytest.raises(SimulationError):
            cluster.ideal_seconds(0.0)
