"""Tests for the accuracy/problem-size planner (inverse CELIA)."""

import numpy as np
import pytest

from repro.core.configspace import ConfigurationSpace
from repro.core.optimizer import MinCostIndex
from repro.core.planner import max_accuracy_plan, max_problem_size_plan
from repro.errors import InfeasibleError, ValidationError
from repro.measurement.baseline import DemandSamples
from repro.measurement.fitting import fit_separable_demand


@pytest.fixture()
def index(small_catalog, small_capacities):
    evaluation = ConfigurationSpace(small_catalog).evaluate(small_capacities)
    return MinCostIndex(evaluation)


@pytest.fixture()
def fitted_demand():
    """Fitted model of D(n, a) = 10 * n * a (linear in both)."""
    sizes = np.array([1.0, 2.0, 4.0, 8.0])
    accs = np.array([1.0, 2.0, 4.0, 8.0])
    demand = 10.0 * np.outer(sizes, accs)
    samples = DemandSamples(app_name="lin", sizes=sizes, accuracies=accs,
                            demand_gi=demand)
    return fit_separable_demand(samples)


class TestMaxAccuracyPlan:
    def test_budget_is_binding(self, index, fitted_demand):
        plan = max_accuracy_plan(fitted_demand, index, problem_size=100,
                                 accuracy_range=(1.0, 1000.0),
                                 deadline_hours=100.0, budget_dollars=2.0)
        # cost grows with a; the plan must nearly exhaust the budget.
        assert plan.answer.cost_dollars <= 2.0
        assert plan.answer.cost_dollars > 2.0 * 0.98
        assert plan.knob == "accuracy"

    def test_monotone_in_budget(self, index, fitted_demand):
        small = max_accuracy_plan(fitted_demand, index, 100, (1.0, 1e4),
                                  100.0, 1.0)
        large = max_accuracy_plan(fitted_demand, index, 100, (1.0, 1e4),
                                  100.0, 4.0)
        assert large.value > small.value

    def test_monotone_in_deadline(self, index, fitted_demand):
        # Very tight deadline caps capacity, hence accuracy.
        tight = max_accuracy_plan(fitted_demand, index, 100, (1.0, 1e6),
                                  0.5, 1e9)
        loose = max_accuracy_plan(fitted_demand, index, 100, (1.0, 1e6),
                                  5.0, 1e9)
        assert loose.value >= tight.value

    def test_whole_range_affordable(self, index, fitted_demand):
        plan = max_accuracy_plan(fitted_demand, index, 1, (1.0, 2.0),
                                 100.0, 1e9)
        assert plan.value == 2.0

    def test_nothing_affordable(self, index, fitted_demand):
        with pytest.raises(InfeasibleError):
            max_accuracy_plan(fitted_demand, index, 1e9, (1.0, 2.0),
                              0.001, 0.001)

    def test_integral_knob(self, index, fitted_demand):
        plan = max_accuracy_plan(fitted_demand, index, 100, (1, 1000),
                                 100.0, 2.0, integral=True)
        assert plan.value == int(plan.value)

    def test_invalid_inputs(self, index, fitted_demand):
        with pytest.raises(ValidationError):
            max_accuracy_plan(fitted_demand, index, 1, (2.0, 1.0), 1.0, 1.0)
        with pytest.raises(ValidationError):
            max_accuracy_plan(fitted_demand, index, 1, (1.0, 2.0), 0.0, 1.0)

    def test_describe(self, index, fitted_demand):
        plan = max_accuracy_plan(fitted_demand, index, 1, (1.0, 2.0),
                                 100.0, 1e9)
        assert "max accuracy" in plan.describe()


class TestMaxProblemSizePlan:
    def test_budget_is_binding(self, index, fitted_demand):
        plan = max_problem_size_plan(fitted_demand, index, accuracy=1.0,
                                     size_range=(1, 10**9),
                                     deadline_hours=100.0,
                                     budget_dollars=2.0, integral=True)
        assert plan.knob == "problem_size"
        assert plan.answer.cost_dollars <= 2.0
        # One more unit of problem size must be unaffordable.
        bigger_demand = fitted_demand.gi(plan.value * 1.01, 1.0)
        from repro.core.planner import _affordable

        assert _affordable(index, bigger_demand, 100.0, 2.0) is None

    def test_deadline_binding_case(self, index, fitted_demand):
        # Huge budget, tight-ish deadline: capacity ceiling binds.
        plan = max_problem_size_plan(fitted_demand, index, accuracy=1.0,
                                     size_range=(1, 10**9),
                                     deadline_hours=1.0,
                                     budget_dollars=1e9, integral=True)
        max_capacity = index.max_capacity_gips
        max_demand = max_capacity * 3600.0
        assert fitted_demand.gi(plan.value, 1.0) <= max_demand * 1.01

    def test_paper_galaxy_plan(self, celia_ec2, galaxy):
        """End-to-end: largest galaxy that fits 24 h and $100."""
        from repro.core.planner import max_problem_size_plan as plan_fn

        demand = celia_ec2.demand_model(galaxy)
        index = celia_ec2.min_cost_index(galaxy)
        plan = plan_fn(demand, index, accuracy=1000,
                       size_range=(8192, 10**6), deadline_hours=24.0,
                       budget_dollars=100.0, integral=True)
        assert 100_000 < plan.value < 300_000
        assert plan.answer.cost_dollars <= 100.0
