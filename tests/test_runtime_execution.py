"""Tests for fluid-rate lease execution (:mod:`repro.runtime.execution`)."""

import numpy as np
import pytest

from repro.engine.faults import FaultModel
from repro.errors import ValidationError
from repro.runtime.execution import LeaseExecution

HOUR_S = 3600.0


def execution(rates, crash_at, start=0.0) -> LeaseExecution:
    return LeaseExecution(np.asarray(rates, dtype=float),
                          np.asarray(crash_at, dtype=float), start)


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            execution([1.0, 1.0], [np.inf])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            execution([-1.0], [np.inf])

    def test_advance_backwards_rejected(self):
        ex = execution([1.0], [np.inf], start=2.0)
        with pytest.raises(ValidationError):
            ex.advance(1.0, 100.0)


class TestAdvance:
    def test_exact_integration_no_crashes(self):
        ex = execution([1.0, 1.0], [np.inf, np.inf])
        result = ex.advance(1.0, 1e9)
        assert result.now_hours == 1.0
        assert result.work_done_gi == pytest.approx(2.0 * HOUR_S)
        assert result.crashed == ()
        assert not result.completed and not result.stalled

    def test_completion_stops_early(self):
        ex = execution([2.0], [np.inf])
        result = ex.advance(10.0, 2.0 * HOUR_S)  # exactly one hour of work
        assert result.completed
        assert result.now_hours == pytest.approx(1.0)
        assert result.work_done_gi == pytest.approx(2.0 * HOUR_S)

    def test_crash_mid_advance_is_piecewise_exact(self):
        # Node 0 dies at 0.5 h: work = 2 rates x 0.5 h + 1 rate x 0.5 h.
        ex = execution([1.0, 1.0], [0.5, np.inf])
        result = ex.advance(1.0, 1e9)
        assert result.crashed == (0,)
        assert ex.surviving_nodes == 1
        assert result.work_done_gi == pytest.approx(1.5 * HOUR_S)

    def test_all_crashed_stalls(self):
        ex = execution([1.0, 1.0], [0.5, 0.5])
        result = ex.advance(2.0, 1e9)
        assert result.stalled and not result.completed
        assert result.crashed == (0, 1)
        assert result.work_done_gi == pytest.approx(1.0 * HOUR_S)
        assert result.now_hours == 0.5  # time stops where progress stops

    def test_work_does_not_accrue_before_start(self):
        ex = execution([1.0], [np.inf], start=1.0)
        result = ex.advance(2.0, 1e9)
        assert result.work_done_gi == pytest.approx(1.0 * HOUR_S)


class TestProjection:
    def test_projected_finish_ignores_future_crashes(self):
        ex = execution([1.0, 1.0], [5.0, np.inf])
        # The monitor cannot see crash times: projection uses live rate.
        assert ex.projected_finish_hours(2.0 * HOUR_S) == pytest.approx(1.0)

    def test_projection_when_done_or_dead(self):
        ex = execution([1.0], [np.inf], start=3.0)
        assert ex.projected_finish_hours(0.0) == 3.0
        dead = execution([1.0], [0.1], start=0.2)
        assert dead.projected_finish_hours(10.0) == np.inf


class TestLaunch:
    def test_same_seed_same_execution(self):
        nominal = np.array([2.0, 2.0, 2.0])

        def build():
            return LeaseExecution.launch(
                nominal, start_hours=0.0,
                fault_model=FaultModel(crash_rate_per_hour=0.5),
                straggler_fraction=0.5, straggler_slowdown=4.0,
                seed=13, lease_id=2)

        a, b = build(), build()
        np.testing.assert_array_equal(a.crash_at, b.crash_at)
        np.testing.assert_array_equal(a.rates, b.rates)

    def test_stragglers_slow_a_seeded_subset(self):
        nominal = np.full(64, 4.0)
        ex = LeaseExecution.launch(
            nominal, start_hours=0.0, fault_model=FaultModel(0.0),
            straggler_fraction=0.5, straggler_slowdown=4.0,
            seed=1, lease_id=0)
        slowed = np.count_nonzero(ex.rates == 1.0)
        assert set(np.unique(ex.rates)) == {1.0, 4.0}
        assert 0 < slowed < 64  # a strict, seeded subset

    def test_zero_fraction_leaves_rates_untouched(self):
        nominal = np.full(8, 3.0)
        ex = LeaseExecution.launch(
            nominal, start_hours=0.0, fault_model=FaultModel(0.0),
            straggler_fraction=0.0, straggler_slowdown=4.0,
            seed=1, lease_id=0)
        np.testing.assert_array_equal(ex.rates, nominal)
