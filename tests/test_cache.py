"""Tests for the persistent evaluation cache (:mod:`repro.cache`)."""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cache import (
    CACHE_DIR_ENV,
    EvaluationCache,
    default_cache_dir,
    evaluation_cache_key,
)
from repro.cloud.catalog import make_catalog
from repro.core.celia import Celia
from repro.core.configspace import ConfigurationSpace
from repro.core.selection import FrontierIndex


@pytest.fixture()
def evaluated(small_catalog, small_capacities):
    space = ConfigurationSpace(small_catalog)
    return space, space.evaluate(small_capacities)


class TestCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        assert EvaluationCache().cache_dir == tmp_path / "env"

    def test_explicit_dir_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        cache = EvaluationCache(tmp_path / "explicit")
        assert cache.cache_dir == tmp_path / "explicit"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir() == Path.home() / ".cache" / "celia"


class TestCacheKey:
    def test_key_depends_on_capacities(self, small_catalog, small_capacities):
        k1 = evaluation_cache_key(small_catalog, small_capacities)
        k2 = evaluation_cache_key(small_catalog, small_capacities * 1.0001)
        assert k1 != k2

    def test_key_depends_on_catalog(self, small_catalog, small_capacities):
        other = make_catalog(
            [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
             ("b.small", 2, 2.5, 0.17)],  # one price changed
            quota=2,
        )
        assert evaluation_cache_key(small_catalog, small_capacities) != \
            evaluation_cache_key(other, small_capacities)

    def test_key_depends_on_quota(self, small_capacities):
        rows = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
                ("b.small", 2, 2.5, 0.16)]
        assert evaluation_cache_key(make_catalog(rows, quota=2),
                                    small_capacities) != \
            evaluation_cache_key(make_catalog(rows, quota=3),
                                 small_capacities)

    def test_key_is_stable(self, small_catalog, small_capacities):
        k1 = evaluation_cache_key(small_catalog, small_capacities)
        k2 = evaluation_cache_key(small_catalog, small_capacities.copy())
        assert k1 == k2


class TestRoundTrip:
    def test_store_then_load(self, evaluated, small_capacities, tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        assert cache.load(space, small_capacities) is None
        cache.store(evaluation, small_capacities)
        loaded = cache.load(space, small_capacities)
        assert loaded is not None
        assert (cache.misses, cache.hits) == (1, 1)
        assert loaded.capacity_gips.tobytes() == \
            evaluation.capacity_gips.tobytes()
        assert loaded.unit_cost_per_hour.tobytes() == \
            evaluation.unit_cost_per_hour.tobytes()

    def test_loaded_arrays_are_memory_mapped(self, evaluated,
                                             small_capacities, tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        cache.store(evaluation, small_capacities)
        loaded = cache.load(space, small_capacities)
        assert isinstance(loaded.capacity_gips, np.memmap)

    def test_hash_mismatch_is_a_miss(self, evaluated, small_capacities,
                                     tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        cache.store(evaluation, small_capacities)
        assert cache.load(space, small_capacities * 2.0) is None

    def test_corrupt_meta_is_a_miss(self, evaluated, small_capacities,
                                    tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        key = cache.store(evaluation, small_capacities)
        (tmp_path / f"{key}.meta.json").write_text("{not json")
        assert cache.load(space, small_capacities) is None

    def test_truncated_array_is_a_miss(self, evaluated, small_capacities,
                                       tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        key = cache.store(evaluation, small_capacities)
        short = np.zeros(space.size - 1)
        with open(tmp_path / f"{key}.capacity.npy", "wb") as fh:
            np.save(fh, short)
        assert cache.load(space, small_capacities) is None

    def test_entries_and_clear(self, evaluated, small_capacities, tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        key = cache.store(evaluation, small_capacities)
        entries = cache.entries()
        assert [e.key for e in entries] == [key]
        assert entries[0].space_size == space.size
        assert cache.total_bytes() == entries[0].bytes_on_disk > 0
        assert cache.clear() == 1
        assert cache.entries() == []


class TestConcurrentWriters:
    def test_second_store_reuses_existing_entry(self, evaluated,
                                                small_capacities, tmp_path):
        """The loser of a warm-up race must not rewrite the artefacts."""
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        key = cache.store(evaluation, small_capacities)
        paths = [tmp_path / f"{key}.meta.json",
                 tmp_path / f"{key}.capacity.npy",
                 tmp_path / f"{key}.unit_cost.npy"]
        before = [p.stat().st_mtime_ns for p in paths]
        assert cache.store(evaluation, small_capacities) == key
        assert [p.stat().st_mtime_ns for p in paths] == before

    def test_stale_entry_is_rewritten(self, evaluated, small_capacities,
                                      tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        key = cache.store(evaluation, small_capacities)
        short = np.zeros(space.size - 1)
        with open(tmp_path / f"{key}.capacity.npy", "wb") as fh:
            np.save(fh, short)
        assert cache.store(evaluation, small_capacities) == key
        assert cache.load(space, small_capacities) is not None

    def test_two_processes_race_without_corruption(self, evaluated,
                                                   small_capacities,
                                                   tmp_path):
        """Two processes warming the same key concurrently: the entry
        stays valid and bit-identical to a locally computed evaluation."""
        space, evaluation = evaluated
        cache_dir = tmp_path / "cache"
        latch = tmp_path / "latch"
        latch.mkdir()
        program = """
import sys, time
from pathlib import Path
import numpy as np
from repro.cache import EvaluationCache
from repro.cloud.catalog import make_catalog
from repro.core.configspace import ConfigurationSpace

cache_dir, latch, who = Path(sys.argv[1]), Path(sys.argv[2]), sys.argv[3]
catalog = make_catalog(
    [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
     ("b.small", 2, 2.5, 0.16)], quota=2)
space = ConfigurationSpace(catalog)
caps = np.array([2.0, 4.2, 1.5])
evaluation = space.evaluate(caps)
cache = EvaluationCache(cache_dir)
(latch / f"ready-{who}").touch()
while not (latch / "go").exists():
    time.sleep(0.002)
for _ in range(3):  # several rounds widen the race window
    key = cache.store(evaluation, caps)
loaded = cache.load(space, caps)
assert loaded is not None, "racing store corrupted the entry"
assert loaded.capacity_gips.tobytes() == evaluation.capacity_gips.tobytes()
print(key)
"""
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", program, str(cache_dir), str(latch),
                 who],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
                env=env)
            for who in ("a", "b")
        ]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not all(
                (latch / f"ready-{w}").exists() for w in ("a", "b")):
            time.sleep(0.01)
        (latch / "go").touch()
        outputs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), \
            [err for _, err in outputs]
        keys = {out.strip() for out, _ in outputs}
        assert len(keys) == 1  # both resolved the same content hash

        # The surviving entry round-trips bit-identically.
        cache = EvaluationCache(cache_dir)
        loaded = cache.load(space, small_capacities)
        assert loaded is not None
        assert loaded.capacity_gips.tobytes() == \
            evaluation.capacity_gips.tobytes()
        assert loaded.unit_cost_per_hour.tobytes() == \
            evaluation.unit_cost_per_hour.tobytes()
        assert len(cache.entries()) == 1


class TestCeliaIntegration:
    def test_second_instance_reuses_cache(self, small_catalog, simple_app,
                                          tmp_path, monkeypatch):
        first = Celia(small_catalog, seed=7, cache_dir=tmp_path)
        first.evaluation(simple_app)
        assert first.evaluation_cache.misses == 1

        # A fresh instance (fresh in-memory caches) must hit the disk
        # cache; forbid the sweep outright to prove no recompute happens.
        second = Celia(small_catalog, seed=7, cache_dir=tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("swept despite a warm cache")

        monkeypatch.setattr(ConfigurationSpace, "evaluate", boom)
        evaluation = second.evaluation(simple_app)
        assert second.evaluation_cache.hits == 1
        assert evaluation.capacity_gips.shape == (second.space.size,)

    def test_cache_disabled(self, small_catalog, simple_app, tmp_path):
        celia = Celia(small_catalog, seed=7, cache_dir=False)
        assert celia.evaluation_cache is None
        celia.evaluation(simple_app)  # must not raise nor write anywhere
        assert list(tmp_path.iterdir()) == []

    def test_fresh_process_warm_start_skips_sweep(self, small_catalog,
                                                  tmp_path):
        """Acceptance check: a second *process* performs no sweep."""
        program = """
import sys
from repro.apps.synthetic import SyntheticApp
from repro.apps.base import PerformanceProfile
from repro.apps.demand import LinearTerm, QuadraticTerm, SeparableDemand
from repro.cloud.catalog import make_catalog
from repro.cloud.instance import ResourceCategory
from repro.core.celia import Celia
import repro.core.configspace as cs

app = SyntheticApp(
    SeparableDemand(size_term=LinearTerm(slope=1.0),
                    accuracy_term=QuadraticTerm(a=1.0, b=0.0, c=0.5),
                    scale=1.0),
    profile=PerformanceProfile(
        ipc_by_category={ResourceCategory.COMPUTE: 1.0,
                         ResourceCategory.GENERAL: 0.8,
                         ResourceCategory.MEMORY: 0.6},
        local_ipc=1.0),
    name="simple", task_size_sigma=0.0)
catalog = make_catalog(
    [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
     ("b.small", 2, 2.5, 0.16)], quota=2)
celia = Celia(catalog, seed=7)
if sys.argv[1] == "warm":
    def boom(*args, **kwargs):
        raise AssertionError("swept despite a warm cache")
    cs.ConfigurationSpace.evaluate = boom
celia.evaluation(app)
print("hits", celia.evaluation_cache.hits,
      "misses", celia.evaluation_cache.misses)
"""
        env = dict(os.environ, CELIA_CACHE_DIR=str(tmp_path),
                   PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        cold = subprocess.run([sys.executable, "-c", program, "cold"],
                              capture_output=True, text=True, env=env)
        assert cold.returncode == 0, cold.stderr
        assert "hits 0 misses 1" in cold.stdout
        warm = subprocess.run([sys.executable, "-c", program, "warm"],
                              capture_output=True, text=True, env=env)
        assert warm.returncode == 0, warm.stderr
        assert "hits 1 misses 0" in warm.stdout


class TestIndexSnapshots:
    """Persistence of the frontier index (mmap'd warm starts)."""

    def build_index(self, evaluation):
        index = FrontierIndex(
            evaluation, candidates=evaluation.frontier_candidates())
        index.ensure_feasibility()
        return index

    def test_round_trip_is_bit_identical_and_mmapped(
            self, evaluated, small_capacities, tmp_path):
        space, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        cache.store(evaluation, small_capacities)
        index = self.build_index(evaluation)
        cache.store_index(index, small_capacities)

        warm_eval = cache.load(space, small_capacities)
        loaded = cache.load_index(warm_eval, small_capacities)
        assert loaded is not None
        assert isinstance(loaded._capacity_sorted, np.memmap)
        assert loaded.frontier_rows.tobytes() == \
            index.frontier_rows.tobytes()
        assert loaded._frontier_capacity.tobytes() == \
            index._frontier_capacity.tobytes()
        demand = float(evaluation.capacity_gips.max()) * 3600.0
        a = index.select(demand, 24.0, 350.0)
        b = loaded.select(demand, 24.0, 350.0)
        assert a.feasible_count == b.feasible_count
        assert [p.configuration for p in a.pareto] == \
            [p.configuration for p in b.pareto]

    def test_missing_snapshot_is_a_miss(self, evaluated, small_capacities,
                                        tmp_path):
        _, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        assert cache.load_index(evaluation, small_capacities) is None

    def test_block_size_mismatch_is_a_miss(self, evaluated,
                                           small_capacities, tmp_path):
        _, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        cache.store_index(self.build_index(evaluation), small_capacities)
        assert cache.load_index(evaluation, small_capacities,
                                block_size=7) is None

    @pytest.mark.parametrize("damage", ["truncate", "corrupt_meta",
                                        "delete_array"])
    def test_damaged_snapshot_falls_back_to_rebuild(
            self, evaluated, small_capacities, tmp_path, damage):
        _, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        cache.store_index(self.build_index(evaluation), small_capacities)
        arrays = sorted(tmp_path.glob("*.index-b*.capacity_sorted.npy"))
        metas = sorted(tmp_path.glob("*.index-b*.meta.json"))
        assert arrays and metas
        if damage == "truncate":
            raw = arrays[0].read_bytes()
            arrays[0].write_bytes(raw[:len(raw) // 2])
        elif damage == "corrupt_meta":
            metas[0].write_text("{not json", encoding="utf-8")
        else:
            arrays[0].unlink()
        assert cache.load_index(evaluation, small_capacities) is None

    def test_info_and_clear_cover_snapshots(self, evaluated,
                                            small_capacities, tmp_path):
        _, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        cache.store(evaluation, small_capacities)
        cache.store_index(self.build_index(evaluation), small_capacities)
        (snap,) = cache.index_snapshots()
        assert snap.key == evaluation_cache_key(
            ConfigurationSpace(evaluation.space.catalog).catalog,
            small_capacities)
        assert snap.space_size == evaluation.space.size
        assert snap.bytes_on_disk > 0
        # snapshot metas must not masquerade as evaluation entries
        assert len(cache.entries()) == 1
        assert cache.clear() == 1
        assert cache.index_snapshots() == []
        assert cache.load_index(evaluation, small_capacities) is None

    def test_store_is_idempotent(self, evaluated, small_capacities,
                                 tmp_path):
        _, evaluation = evaluated
        cache = EvaluationCache(tmp_path)
        index = self.build_index(evaluation)
        cache.store_index(index, small_capacities)
        before = sorted((p.name, p.stat().st_mtime_ns)
                        for p in tmp_path.glob("*.index-b*"))
        cache.store_index(index, small_capacities)
        after = sorted((p.name, p.stat().st_mtime_ns)
                       for p in tmp_path.glob("*.index-b*"))
        assert before == after  # valid snapshot -> no rewrite


class TestCeliaSnapshotWarmStart:
    def test_selection_index_persists_and_reloads(self, small_catalog,
                                                  simple_app, tmp_path):
        first = Celia(small_catalog, seed=7, cache_dir=tmp_path)
        first.selection_index(simple_app)
        assert first.last_index_from_snapshot is False
        assert first.evaluation_cache.index_snapshots()

        second = Celia(small_catalog, seed=7, cache_dir=tmp_path)
        index = second.selection_index(simple_app)
        assert second.last_index_from_snapshot is True
        assert second.last_index_load_s >= 0.0
        assert index.frontier_rows.tobytes() == \
            first.selection_index(simple_app).frontier_rows.tobytes()
