"""Tests for the three paper applications (x264, galaxy, sand)."""

import numpy as np
import pytest

from repro.apps import (
    ExecutionStyle,
    SandApp,
    X264App,
    application_by_name,
    paper_applications,
)
from repro.cloud.catalog import ec2_catalog
from repro.cloud.instance import ResourceCategory
from repro.errors import ValidationError


class TestRegistry:
    def test_three_applications(self):
        apps = paper_applications()
        assert set(apps) == {"x264", "galaxy", "sand"}

    def test_lookup(self):
        assert application_by_name("galaxy").name == "galaxy"

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            application_by_name("hadoop")


class TestDemandShapes:
    """Figure 2's six relationships, asserted on ground truth."""

    def test_x264_linear_in_n(self, x264):
        d1 = x264.demand_gi(8, 20)
        d2 = x264.demand_gi(16, 20)
        assert d2 == pytest.approx(2 * d1, rel=1e-9)

    def test_x264_quadratic_in_f(self, x264):
        # Fit a quadratic exactly through three points; a fourth must match.
        fs = np.array([10.0, 20.0, 40.0])
        ds = np.array([x264.demand_gi(1, f) for f in fs])
        coeffs = np.polyfit(fs, ds, 2)
        predicted = np.polyval(coeffs, 30.0)
        assert x264.demand_gi(1, 30) == pytest.approx(predicted, rel=1e-6)

    def test_galaxy_quadratic_in_n(self, galaxy):
        d1 = galaxy.demand_gi(8192, 1000)
        d2 = galaxy.demand_gi(16384, 1000)
        assert d2 == pytest.approx(4 * d1, rel=1e-9)

    def test_galaxy_linear_in_s(self, galaxy):
        d1 = galaxy.demand_gi(8192, 1000)
        d2 = galaxy.demand_gi(8192, 3000)
        assert d2 == pytest.approx(3 * d1, rel=1e-9)

    def test_sand_linear_in_n(self, sand):
        d1 = sand.demand_gi(1_000_000, 0.32)
        d2 = sand.demand_gi(3_000_000, 0.32)
        assert d2 == pytest.approx(3 * d1, rel=1e-9)

    def test_sand_log_in_t(self, sand):
        # Sub-linear: doubling t must less-than-double demand.
        d1 = sand.demand_gi(1_000_000, 0.25)
        d2 = sand.demand_gi(1_000_000, 0.5)
        assert d1 < d2 < 2 * d1

    def test_figure2_magnitudes(self, galaxy, sand, x264):
        """Ground truth lands on the paper's figure axes (DESIGN.md §4)."""
        # Fig 2(b): galaxy(65536, 2000) ~ 2.5-2.7 PI.
        assert galaxy.demand_gi(65536, 2000) == pytest.approx(2.66e6, rel=0.05)
        # Fig 2(c): sand(64M, 0.04) ~ 80-90 TI.
        assert sand.demand_gi(64e6, 0.04) == pytest.approx(8.0e4, rel=0.1)
        # Fig 2(d): x264(2, 50) ~ 3.5 TI.
        assert x264.demand_gi(2, 50) == pytest.approx(3.5e3, rel=0.05)


class TestParameterValidation:
    def test_x264_domain(self, x264):
        with pytest.raises(ValidationError):
            x264.validate_params(0, 20)
        with pytest.raises(ValidationError):
            x264.validate_params(2.5, 20)
        with pytest.raises(ValidationError):
            x264.validate_params(2, 52)
        x264.validate_params(2, 51)

    def test_galaxy_domain(self, galaxy):
        with pytest.raises(ValidationError):
            galaxy.validate_params(1, 100)
        with pytest.raises(ValidationError):
            galaxy.validate_params(100, 0)
        galaxy.validate_params(2, 1)

    def test_sand_domain(self, sand):
        with pytest.raises(ValidationError):
            sand.validate_params(1e6, 0.0)
        with pytest.raises(ValidationError):
            sand.validate_params(1e6, 1.5)
        sand.validate_params(1e6, 1.0)


class TestWorkloads:
    def test_x264_one_task_per_clip(self, x264):
        w = x264.workload(16, 20)
        assert w.style is ExecutionStyle.INDEPENDENT
        assert w.n_tasks == 16
        assert w.task_gi.sum() == pytest.approx(x264.demand_gi(16, 20))

    def test_x264_task_heterogeneity_controlled(self):
        app = X264App(task_size_sigma=0.0)
        w = app.workload(8, 20)
        np.testing.assert_allclose(w.task_gi, w.task_gi[0])

    def test_galaxy_bsp_steps(self, galaxy):
        w = galaxy.workload(8192, 100)
        assert w.style is ExecutionStyle.BSP
        assert w.n_steps == 100
        assert w.step_gi * 100 == pytest.approx(galaxy.demand_gi(8192, 100))
        assert w.comm_seconds_per_step > 0

    def test_sand_chunking(self, sand):
        w = sand.workload(4_000_000_000, 0.32)
        assert w.style is ExecutionStyle.WORKQUEUE
        assert w.n_tasks == 4000
        assert w.task_gi.sum() == pytest.approx(
            sand.demand_gi(4_000_000_000, 0.32))

    def test_sand_minimum_tasks_for_small_inputs(self, sand):
        w = sand.workload(1_000_000, 0.32)
        assert w.n_tasks == 64  # adaptive chunk shrink

    def test_workload_is_deterministic(self):
        a = SandApp(seed=9).workload(2_000_000, 0.5)
        b = SandApp(seed=9).workload(2_000_000, 0.5)
        np.testing.assert_allclose(a.task_gi, b.task_gi)


class TestPerformanceProfiles:
    def test_figure3_normalized_targets(self, galaxy, sand, x264):
        """True rates hit the Figure 3 calibration (DESIGN.md §4)."""
        catalog = ec2_catalog()
        c4l = catalog.type_named("c4.large")
        assert galaxy.true_rate_gips(c4l) / 0.105 == pytest.approx(26.2, rel=0.01)
        assert sand.true_rate_gips(c4l) / 0.105 == pytest.approx(80.0, rel=0.01)
        assert x264.true_rate_gips(c4l) / 0.105 == pytest.approx(55.0, rel=0.01)

    def test_category_ratios(self, galaxy):
        """c4 ~ 2x and m4 ~ 1.5x r3 in GI/s per dollar (Section IV-C)."""
        catalog = ec2_catalog()
        norm = {}
        for name in ("c4.large", "m4.large", "r3.large"):
            t = catalog.type_named(name)
            norm[name] = galaxy.true_rate_gips(t) / t.price_per_hour
        assert norm["c4.large"] / norm["r3.large"] == pytest.approx(2.0, rel=0.02)
        assert norm["m4.large"] / norm["r3.large"] == pytest.approx(1.5, rel=0.02)

    def test_rate_scales_with_vcpus(self, galaxy):
        catalog = ec2_catalog()
        large = galaxy.true_rate_gips(catalog.type_named("c4.large"))
        xlarge = galaxy.true_rate_gips(catalog.type_named("c4.xlarge"))
        assert xlarge == pytest.approx(2 * large, rel=1e-9)

    def test_unknown_category_rejected(self, galaxy):
        from repro.apps.base import PerformanceProfile

        profile = PerformanceProfile(
            ipc_by_category={ResourceCategory.COMPUTE: 1.0})
        with pytest.raises(ValidationError):
            profile.ipc_for(ResourceCategory.MEMORY)


class TestAccuracyScores:
    def test_monotone_in_knob(self, galaxy, sand, x264):
        assert x264.accuracy_score(40) > x264.accuracy_score(20)
        assert galaxy.accuracy_score(8000) > galaxy.accuracy_score(1000)
        assert sand.accuracy_score(0.8) > sand.accuracy_score(0.4)

    def test_bounded(self, galaxy, sand, x264):
        for score in (x264.accuracy_score(51), galaxy.accuracy_score(100000),
                      sand.accuracy_score(1.0)):
            assert 0 < score <= 1
