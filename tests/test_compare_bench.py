"""Tests for the benchmark comparison gate (benchmarks/compare_bench.py).

The script is not an importable package module, so these tests run it
the way CI does: as a subprocess, asserting exit codes and messages.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "benchmarks" / "compare_bench.py"


def compare(*argv) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, argv)],
        capture_output=True, text=True, cwd=REPO_ROOT)


def write_report(path: Path, metrics: dict) -> Path:
    path.write_text(json.dumps(metrics))
    return path


class TestBadReports:
    def test_missing_baseline_exits_2_with_message(self, tmp_path):
        current = write_report(tmp_path / "current.json", {"wall_s": 1.0})
        result = compare(tmp_path / "nope.json", current)
        assert result.returncode == 2
        assert "error:" in result.stderr
        assert "does not exist" in result.stderr
        assert "Traceback" not in result.stderr

    def test_missing_current_names_the_role(self, tmp_path):
        baseline = write_report(tmp_path / "base.json", {"wall_s": 1.0})
        result = compare(baseline, tmp_path / "nope.json")
        assert result.returncode == 2
        assert "current report" in result.stderr

    def test_malformed_json_exits_2_with_line_number(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text('{"wall_s": 1.0')  # truncated mid-write
        current = write_report(tmp_path / "current.json", {"wall_s": 1.0})
        result = compare(baseline, current)
        assert result.returncode == 2
        assert "not valid JSON" in result.stderr
        assert "Traceback" not in result.stderr

    def test_non_object_top_level_exits_2(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text("[1, 2, 3]")
        current = write_report(tmp_path / "current.json", {"wall_s": 1.0})
        result = compare(baseline, current)
        assert result.returncode == 2
        assert "must be a JSON object" in result.stderr


class TestComparison:
    def test_equal_reports_pass(self, tmp_path):
        baseline = write_report(tmp_path / "base.json", {"sweep_wall_s": 2.0})
        current = write_report(tmp_path / "curr.json", {"sweep_wall_s": 2.0})
        result = compare(baseline, current)
        assert result.returncode == 0
        assert "1 shared timing metric" in result.stdout

    def test_large_regression_fails(self, tmp_path):
        baseline = write_report(tmp_path / "base.json", {"sweep_wall_s": 1.0})
        current = write_report(tmp_path / "curr.json", {"sweep_wall_s": 10.0})
        result = compare(baseline, current)
        assert result.returncode == 1
        assert "REGRESSION" in result.stderr

    def test_tiny_metrics_ignored_as_noise(self, tmp_path):
        baseline = write_report(tmp_path / "base.json", {"wall_s": 0.001})
        current = write_report(tmp_path / "curr.json", {"wall_s": 0.01})
        result = compare(baseline, current)
        assert result.returncode == 0
