"""Tests for the shared utilities (RNG plumbing, tables, math helpers)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.mathutil import (
    approx_gradient,
    geometric_mean,
    monotone_nondecreasing,
    monotone_nonincreasing,
    percent_error,
    relative_error,
)
from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.tables import TextTable


class TestRng:
    def test_same_keys_same_seed(self):
        assert spawn_seed(1, "galaxy", 65536) == spawn_seed(1, "galaxy", 65536)

    def test_different_root_different_seed(self):
        assert spawn_seed(1, "galaxy") != spawn_seed(2, "galaxy")

    def test_different_keys_different_seed(self):
        assert spawn_seed(1, "galaxy") != spawn_seed(1, "sand")

    def test_key_concatenation_is_not_ambiguous(self):
        assert spawn_seed(1, "ab", "c") != spawn_seed(1, "a", "bc")

    def test_derive_rng_streams_are_reproducible(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_derive_rng_streams_are_independent(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.allclose(a, b)

    @given(st.integers(0, 2**31), st.text(max_size=20))
    def test_spawn_seed_in_64bit_range(self, root, key):
        seed = spawn_seed(root, key)
        assert 0 <= seed < 2**64


class TestTextTable:
    def test_render_basic(self):
        t = TextTable(["Type", "Cost"], aligns="lr", title="Catalog")
        t.add_row(["c4.large", 0.105])
        out = t.render()
        assert "Catalog" in out
        assert "c4.large" in out
        assert "0.105" in out

    def test_alignment(self):
        t = TextTable(["L", "R"], aligns="lr")
        t.add_row(["x", "y"])
        body = t.render().splitlines()[-1]
        assert body.startswith("x")
        assert body.endswith("y")

    def test_wrong_cell_count_rejected(self):
        t = TextTable(["A", "B"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_bad_aligns_rejected(self):
        with pytest.raises(ValueError):
            TextTable(["A"], aligns="x")
        with pytest.raises(ValueError):
            TextTable(["A", "B"], aligns="l")

    def test_len_counts_rows(self):
        t = TextTable(["A"])
        assert len(t) == 0
        t.add_row([1])
        assert len(t) == 1

    def test_markdown_render(self):
        t = TextTable(["A", "B"], aligns="lr")
        t.add_row(["x", 1.5])
        md = t.render_markdown()
        assert md.splitlines()[0] == "| A | B |"
        assert "---:" in md  # right-aligned column
        assert "| x | 1.5 |" in md

    def test_float_format_applied(self):
        t = TextTable(["V"], float_format="{:.3f}")
        t.add_row([1 / 3])
        assert "0.333" in t.render()


class TestMathUtil:
    def test_relative_error(self):
        assert relative_error(11, 10) == pytest.approx(0.1)
        assert relative_error(9, 10) == pytest.approx(0.1)

    def test_percent_error_matches_table_iv_convention(self):
        # x264 row: predicted 21 h vs actual 19 h -> ~10.5%.
        assert percent_error(21, 19) == pytest.approx(10.526, rel=1e-3)

    def test_relative_error_zero_actual_raises(self):
        with pytest.raises(ZeroDivisionError):
            relative_error(1, 0)

    def test_approx_gradient_linear(self):
        x = np.array([0.0, 1.0, 2.0])
        y = 3 * x + 1
        np.testing.assert_allclose(approx_gradient(x, y), [3.0, 3.0])

    def test_approx_gradient_needs_distinct_x(self):
        with pytest.raises(ValueError):
            approx_gradient(np.array([1.0, 1.0]), np.array([1.0, 2.0]))

    def test_approx_gradient_needs_two_points(self):
        with pytest.raises(ValueError):
            approx_gradient(np.array([1.0]), np.array([1.0]))

    def test_geometric_mean(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))

    def test_monotone_helpers(self):
        assert monotone_nondecreasing(np.array([1, 1, 2]))
        assert not monotone_nondecreasing(np.array([2, 1]))
        assert monotone_nonincreasing(np.array([3, 2, 2]))
        assert not monotone_nonincreasing(np.array([1, 2]))

    @given(st.lists(st.floats(1e-3, 1e3), min_size=1, max_size=20))
    def test_geometric_mean_between_min_and_max(self, values):
        arr = np.array(values)
        gm = geometric_mean(arr)
        assert arr.min() - 1e-9 <= gm <= arr.max() + 1e-9
