"""Consistent-hash ring: determinism, stability, and balance.

The fleet's whole restart story rests on two properties of
`repro.fleet.hashing.HashRing`:

* **Determinism** — routing is a pure function of (key, membership).
  Two processes, or two boots a week apart, agree on every placement;
  the CI fleet-smoke job asserts this end to end and these tests pin
  it down in-process.
* **Stability** — membership changes remap only the keys that *must*
  move: adding a worker steals keys only for itself, removing one
  reassigns only its own keys.  That is what makes a rolling restart
  invalidate one shard's warm state instead of the whole fleet's.
"""

import pytest

from repro.errors import ValidationError
from repro.fleet.hashing import DEFAULT_VNODES, HashRing, ring_hash, warm_key


def keys(count):
    return [warm_key(f"app{i % 7}", quota=i % 3 + 1, seed=i) for i in
            range(count)]


class TestHashPrimitives:
    def test_ring_hash_is_stable_across_runs(self):
        """blake2b, not the per-process-salted builtin hash: these
        exact values are what any other process computes too."""
        assert ring_hash("galaxy|2|0") == 0x8A849257113CEBAA
        assert ring_hash("x264|5|0") == 0xDDDFC57CF2C6F798
        assert ring_hash("a") != ring_hash("b")

    def test_warm_key_canonical_form(self):
        assert warm_key("galaxy", 2, 7) == "galaxy|2|7"
        assert warm_key("x264", quota=5, seed=0) == "x264|5|0"


class TestDeterminism:
    def test_two_rings_agree_on_every_placement(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order is irrelevant
        for key in keys(500):
            assert a.route(key) == b.route(key)

    def test_routing_is_repeatable(self):
        ring = HashRing(["w0", "w1"])
        sample = keys(100)
        assert [ring.route(k) for k in sample] == \
            [ring.route(k) for k in sample]


class TestStability:
    def test_adding_a_worker_steals_only_for_itself(self):
        """Every key that moves must move TO the new worker — no
        reshuffling among the existing members."""
        before = HashRing(["w0", "w1", "w2", "w3"])
        sample = keys(2000)
        placement = {k: before.route(k) for k in sample}
        before.add_worker("w4")
        moved = 0
        for key in sample:
            owner = before.route(key)
            if owner != placement[key]:
                assert owner == "w4", (key, placement[key], owner)
                moved += 1
        # A fifth worker should take roughly 1/5 of the keyspace; allow
        # a wide band for vnode-placement variance.
        assert 0.05 < moved / len(sample) < 0.40, moved

    def test_removing_a_worker_moves_only_its_keys(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        sample = keys(2000)
        placement = {k: ring.route(k) for k in sample}
        ring.remove_worker("w2")
        for key in sample:
            if placement[key] != "w2":
                assert ring.route(key) == placement[key], key

    def test_exclusion_equals_removal(self):
        """A down worker's keys land exactly where they would live if
        it left the ring — the fallback during a restart agrees with
        the permanent placement."""
        full = HashRing(["w0", "w1", "w2"])
        without = HashRing(["w0", "w1", "w2"])
        without.remove_worker("w1")
        for key in keys(500):
            assert full.route(key, exclude={"w1"}) == without.route(key)

    def test_add_then_remove_round_trips(self):
        ring = HashRing(["w0", "w1"])
        sample = keys(500)
        placement = {k: ring.route(k) for k in sample}
        ring.add_worker("w2")
        ring.remove_worker("w2")
        assert {k: ring.route(k) for k in sample} == placement


class TestEjectionChurn:
    """Repeated eject/re-admit cycles — the health monitor's usage.

    Ejection is modeled as routing with an exclusion set while ring
    membership stays fixed; these tests pin the contract the fleet's
    resilience layer relies on: at *every* intermediate step of an
    eject/re-admit sequence, exclusion routing agrees with a ring from
    which the ejected workers were permanently removed, and the whole
    sequence is deterministic on replay.
    """

    WORKERS = ["w0", "w1", "w2", "w3"]
    # A churn storm: eject (True) / re-admit (False) events as the
    # health monitor might emit them — overlapping ejections included.
    SEQUENCE = [("w1", True), ("w3", True), ("w1", False), ("w2", True),
                ("w3", False), ("w1", True), ("w2", False), ("w1", False)]

    def test_churn_agrees_with_permanent_removal_at_every_step(self):
        ring = HashRing(self.WORKERS)
        sample = keys(300)
        ejected: set = set()
        for worker, eject in self.SEQUENCE:
            ejected.add(worker) if eject else ejected.discard(worker)
            rebuilt = HashRing([w for w in self.WORKERS
                                if w not in ejected])
            for key in sample:
                assert ring.route(key, exclude=ejected) == \
                    rebuilt.route(key), (key, ejected)

    def test_churn_routing_is_deterministic_on_replay(self):
        sample = keys(200)

        def replay():
            ring = HashRing(self.WORKERS)
            ejected: set = set()
            trace = []
            for worker, eject in self.SEQUENCE:
                ejected.add(worker) if eject else ejected.discard(worker)
                trace.append(tuple(ring.route(k, exclude=ejected)
                                   for k in sample))
            return trace

        assert replay() == replay()

    def test_readmitted_worker_gets_exactly_its_old_keys_back(self):
        """Eject → re-admit is a routing no-op: the ring never forgot
        the worker, so its keys return to it and nobody else moves."""
        ring = HashRing(self.WORKERS)
        sample = keys(500)
        placement = {k: ring.route(k) for k in sample}
        for key in sample:
            ring.route(key, exclude={"w2"})  # churn while ejected
        assert {k: ring.route(k) for k in sample} == placement

    def test_keys_not_owned_by_ejected_workers_never_move(self):
        ring = HashRing(self.WORKERS)
        sample = keys(500)
        placement = {k: ring.route(k) for k in sample}
        ejected: set = set()
        for worker, eject in self.SEQUENCE:
            ejected.add(worker) if eject else ejected.discard(worker)
            for key in sample:
                if placement[key] not in ejected:
                    assert ring.route(key, exclude=ejected) == \
                        placement[key], (key, ejected)


class TestBalance:
    def test_default_vnodes_keep_load_roughly_even(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = {w: 0 for w in ring.workers}
        sample = keys(4000)
        for key in sample:
            counts[ring.route(key)] += 1
        mean = len(sample) / len(counts)
        assert all(count > 0 for count in counts.values()), counts
        # The docstring promise: max/mean imbalance stays modest for a
        # handful of workers at 64 vnodes each.
        assert max(counts.values()) / mean < 1.6, counts
        assert DEFAULT_VNODES == 64


class TestValidation:
    def test_duplicate_add_rejected(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValidationError):
            ring.add_worker("w0")

    def test_remove_absent_rejected(self):
        with pytest.raises(ValidationError):
            HashRing(["w0"]).remove_worker("w9")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValidationError):
            HashRing(vnodes=0)

    def test_route_with_everyone_excluded_rejected(self):
        ring = HashRing(["w0", "w1"])
        with pytest.raises(ValidationError):
            ring.route("k", exclude={"w0", "w1"})

    def test_route_on_empty_ring_rejected(self):
        with pytest.raises(ValidationError):
            HashRing().route("k")

    def test_membership_protocol(self):
        ring = HashRing(["w1", "w0"])
        assert ring.workers == ("w0", "w1")
        assert len(ring) == 2
        assert "w0" in ring and "w9" not in ring
