"""Tests for profile persistence (JSON round trips)."""

import numpy as np
import pytest

from repro.apps.demand import (
    AffineTerm,
    ConstantTerm,
    LinearTerm,
    LogTerm,
    PowerTerm,
    QuadraticTerm,
    SeparableDemand,
)
from repro.errors import ValidationError
from repro.measurement.profiles import (
    ApplicationProfile,
    term_from_dict,
    term_to_dict,
)

ALL_TERMS = [
    ConstantTerm(2.0),
    LinearTerm(slope=3.1e-7),
    AffineTerm(intercept=1.0, slope=2.0),
    QuadraticTerm(a=314.0, b=0.0, c=0.574),
    PowerTerm(coefficient=1.0, exponent=2.003),
    LogTerm(coefficient=3.09e-3, tau=0.08),
]


class TestTermSerialization:
    @pytest.mark.parametrize("term", ALL_TERMS, ids=lambda t: t.kind)
    def test_round_trip(self, term):
        restored = term_from_dict(term_to_dict(term))
        assert type(restored) is type(term)
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(restored(x), term(x))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            term_from_dict({"kind": "spline"})

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError):
            term_from_dict({"kind": "linear"})


class TestApplicationProfile:
    def make(self) -> ApplicationProfile:
        return ApplicationProfile(
            app_name="galaxy",
            demand=SeparableDemand(
                size_term=PowerTerm(coefficient=1.0, exponent=2.0),
                accuracy_term=LinearTerm(slope=1.0),
                scale=3.1e-7,
            ),
            capacities_gips={"c4.large": 2.75, "c4.xlarge": 5.5},
        )

    def test_dict_round_trip(self):
        profile = self.make()
        restored = ApplicationProfile.from_dict(profile.to_dict())
        assert restored.app_name == "galaxy"
        assert restored.demand.gi(100, 10) == pytest.approx(
            profile.demand.gi(100, 10))
        assert restored.capacities_gips == profile.capacities_gips

    def test_file_round_trip(self, tmp_path):
        profile = self.make()
        path = tmp_path / "galaxy.json"
        profile.save(path)
        restored = ApplicationProfile.load(path)
        assert restored.demand.gi(64, 8) == pytest.approx(
            profile.demand.gi(64, 8))

    def test_capacity_vector_ordering(self):
        profile = self.make()
        vec = profile.capacity_vector(["c4.xlarge", "c4.large"])
        np.testing.assert_allclose(vec, [5.5, 2.75])

    def test_capacity_vector_unknown_type(self):
        with pytest.raises(ValidationError):
            self.make().capacity_vector(["m4.large"])

    def test_malformed_dict_rejected(self):
        with pytest.raises(ValidationError):
            ApplicationProfile.from_dict({"app_name": "x"})
