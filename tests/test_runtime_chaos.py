"""Tests for chaos scenarios and runtime events."""

import pytest

from repro.errors import ValidationError
from repro.runtime.chaos import (
    SCENARIOS,
    ChaosScenario,
    chaos_scenario,
    scenario_names,
)
from repro.runtime.events import (
    DegradationDecision,
    ExecutionTimeline,
    NodeCrash,
    ProvisionAttempt,
    event_to_dict,
)


class TestCatalog:
    def test_expected_scenarios_present(self):
        assert scenario_names() == ("calm", "flaky-control-plane", "crashy",
                                    "stragglers", "perfect-storm",
                                    "spot-squeeze", "price-spike")

    def test_calm_injects_nothing(self):
        calm = chaos_scenario("calm")
        assert not calm.provisioning_faults(0).enabled
        assert calm.fault_model().crash_rate_per_hour == 0.0
        assert calm.straggler_fraction == 0.0

    def test_perfect_storm_injects_everything(self):
        storm = chaos_scenario("perfect-storm")
        assert storm.provisioning_faults(0).enabled
        assert storm.fault_model().crash_rate_per_hour > 0
        assert storm.straggler_fraction > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown chaos scenario"):
            chaos_scenario("volcano")

    def test_to_dict_round_trips_fields(self):
        for name in scenario_names():
            data = SCENARIOS[name].to_dict()
            assert data["name"] == name
            assert ChaosScenario(**data) == SCENARIOS[name]


class TestScenarioValidation:
    def test_needs_name(self):
        with pytest.raises(ValidationError):
            ChaosScenario(name="")

    def test_straggler_bounds(self):
        with pytest.raises(ValidationError):
            ChaosScenario(name="x", straggler_fraction=1.5)
        with pytest.raises(ValidationError):
            ChaosScenario(name="x", straggler_slowdown=0.5)


class TestSeededStreams:
    def test_provisioning_faults_keyed_by_seed_and_name(self):
        storm = chaos_scenario("perfect-storm")
        assert storm.provisioning_faults(1).seed == \
            storm.provisioning_faults(1).seed
        assert storm.provisioning_faults(1).seed != \
            storm.provisioning_faults(2).seed
        flaky = chaos_scenario("flaky-control-plane")
        assert storm.provisioning_faults(1).seed != \
            flaky.provisioning_faults(1).seed


class TestEvents:
    def test_event_to_dict_adds_kind_and_lists(self):
        event = ProvisionAttempt(at_hours=0.5, attempt=2,
                                 configuration=(1, 0, 2), outcome="ok")
        data = event_to_dict(event)
        assert data["kind"] == "provision_attempt"
        assert data["configuration"] == [1, 0, 2]  # JSON-ready, not tuple
        assert data["attempt"] == 2

    def test_timeline_is_append_only_and_countable(self):
        timeline = ExecutionTimeline()
        timeline.record(NodeCrash(at_hours=1.0, instance_id="i-0",
                                  type_name="a.small", surviving_nodes=1))
        timeline.record(DegradationDecision(
            at_hours=2.0, from_accuracy=8000, to_accuracy=6000,
            score_before=1.0, score_after=0.9,
            remaining_gi_before=1e6, remaining_gi_after=8e5,
            configuration=(1, 0, 0), reason="deviation"))
        assert len(timeline) == 2
        assert timeline.count(NodeCrash) == 1
        assert timeline.count(ProvisionAttempt) == 0
        kinds = [d["kind"] for d in timeline.to_dicts()]
        assert kinds == ["node_crash", "degradation"]
