"""Tests for the baseline strategies and the comparison harness."""

import numpy as np
import pytest

from repro.baselines.comparison import compare_baselines
from repro.baselines.greedy import greedy_min_cost
from repro.baselines.hillclimb import hillclimb_min_cost
from repro.baselines.random_search import random_search_min_cost
from repro.baselines.specbound import spec_capacities, spec_prediction_error
from repro.core.configspace import ConfigurationSpace
from repro.core.optimizer import MinCostIndex
from repro.errors import InfeasibleError, ValidationError


@pytest.fixture()
def index(small_catalog, small_capacities):
    evaluation = ConfigurationSpace(small_catalog).evaluate(small_capacities)
    return MinCostIndex(evaluation)


class TestSpecBound:
    def test_capacities_from_frequency(self, small_catalog):
        spec = spec_capacities(small_catalog)
        np.testing.assert_allclose(spec, [4.0, 8.0, 5.0])

    def test_ipc_scaling(self, small_catalog):
        np.testing.assert_allclose(spec_capacities(small_catalog, instructions_per_cycle=0.5),
                                   [2.0, 4.0, 2.5])

    def test_error_vs_measured(self, small_catalog, small_capacities):
        errors = spec_prediction_error(None, small_catalog, small_capacities)
        # spec [4, 8, 5] vs measured [2, 4.2, 1.5].
        np.testing.assert_allclose(errors, [1.0, 8 / 4.2 - 1, 5 / 1.5 - 1])

    def test_spec_overestimates_low_ipc_apps(self, ec2, galaxy):
        """The paper's point: frequency alone over-promises for galaxy."""
        truths = np.array([galaxy.true_rate_gips(t) for t in ec2])
        errors = spec_prediction_error(galaxy, ec2, truths)
        assert np.all(errors > 0.5)  # spec >1.5x the real galaxy rate

    def test_shape_mismatch_rejected(self, small_catalog):
        with pytest.raises(ValidationError):
            spec_prediction_error(None, small_catalog, np.array([1.0]))

    def test_invalid_ipc(self, small_catalog):
        with pytest.raises(ValidationError):
            spec_capacities(small_catalog, instructions_per_cycle=0)


class TestGreedy:
    def test_meets_deadline(self, small_catalog, small_capacities):
        answer = greedy_min_cost(small_catalog, small_capacities, 2e5, 8.0)
        assert answer.time_hours <= 8.0

    def test_never_beats_exhaustive(self, small_catalog, small_capacities,
                                    index):
        for demand in (2e4, 1e5, 3e5):
            optimal = index.query(demand, 8.0)
            answer = greedy_min_cost(small_catalog, small_capacities,
                                     demand, 8.0)
            assert answer.cost_dollars >= optimal.cost_dollars - 1e-9

    def test_uses_most_efficient_type_first(self, small_catalog,
                                            small_capacities):
        # Efficiencies: [20, 20, 9.375] GI/s per $: type 0/1 first.
        answer = greedy_min_cost(small_catalog, small_capacities, 1e4, 8.0)
        assert answer.configuration[2] == 0

    def test_infeasible(self, small_catalog, small_capacities):
        with pytest.raises(InfeasibleError):
            greedy_min_cost(small_catalog, small_capacities, 1e13, 1.0)

    def test_invalid_inputs(self, small_catalog, small_capacities):
        with pytest.raises(ValidationError):
            greedy_min_cost(small_catalog, small_capacities, 0.0, 1.0)
        with pytest.raises(ValidationError):
            greedy_min_cost(small_catalog, np.array([1.0]), 1.0, 1.0)


class TestRandomSearch:
    def test_feasible_answer(self, small_catalog, small_capacities):
        rng = np.random.default_rng(0)
        answer = random_search_min_cost(small_catalog, small_capacities,
                                        1e5, 8.0, n_samples=500, rng=rng)
        assert answer.time_hours < 8.0

    def test_never_beats_exhaustive(self, small_catalog, small_capacities,
                                    index):
        rng = np.random.default_rng(1)
        optimal = index.query(1e5, 8.0)
        answer = random_search_min_cost(small_catalog, small_capacities,
                                        1e5, 8.0, n_samples=2000, rng=rng)
        assert answer.cost_dollars >= optimal.cost_dollars - 1e-9

    def test_enough_samples_on_tiny_space_finds_optimum(
            self, small_catalog, small_capacities, index):
        # 26 configurations: 5000 uniform samples cover them all w.h.p.
        rng = np.random.default_rng(2)
        optimal = index.query(1e5, 8.0)
        answer = random_search_min_cost(small_catalog, small_capacities,
                                        1e5, 8.0, n_samples=5000, rng=rng)
        assert answer.cost_dollars == pytest.approx(optimal.cost_dollars)

    def test_infeasible_deadline(self, small_catalog, small_capacities):
        rng = np.random.default_rng(3)
        with pytest.raises(InfeasibleError):
            random_search_min_cost(small_catalog, small_capacities,
                                   1e13, 0.1, n_samples=100, rng=rng)

    def test_invalid_inputs(self, small_catalog, small_capacities):
        with pytest.raises(ValidationError):
            random_search_min_cost(small_catalog, small_capacities,
                                   1e4, 1.0, n_samples=0)


class TestHillClimb:
    def test_feasible_answer(self, small_catalog, small_capacities):
        rng = np.random.default_rng(0)
        answer = hillclimb_min_cost(small_catalog, small_capacities,
                                    1e5, 8.0, rng=rng)
        assert answer.time_hours < 8.0 + 1e-12

    def test_local_optimum_quality(self, small_catalog, small_capacities,
                                   index):
        """On the tiny space restarted hill climbing finds the optimum."""
        rng = np.random.default_rng(1)
        optimal = index.query(1e5, 8.0)
        answer = hillclimb_min_cost(small_catalog, small_capacities,
                                    1e5, 8.0, restarts=10, rng=rng)
        assert answer.cost_dollars == pytest.approx(optimal.cost_dollars,
                                                    rel=1e-6)

    def test_infeasible(self, small_catalog, small_capacities):
        rng = np.random.default_rng(2)
        with pytest.raises(InfeasibleError):
            hillclimb_min_cost(small_catalog, small_capacities,
                               1e13, 0.1, rng=rng)

    def test_invalid_inputs(self, small_catalog, small_capacities):
        with pytest.raises(ValidationError):
            hillclimb_min_cost(small_catalog, small_capacities, 1e4, 1.0,
                               restarts=0)


class TestComparison:
    def test_all_strategies_reported(self, small_catalog, small_capacities,
                                     index):
        outcomes = compare_baselines(small_catalog, small_capacities, index,
                                     1e5, 8.0, random_samples=500, seed=0)
        names = [o.strategy for o in outcomes]
        assert names == ["exhaustive", "greedy", "random-search", "hill-climb"]

    def test_exhaustive_gap_zero(self, small_catalog, small_capacities,
                                 index):
        outcomes = compare_baselines(small_catalog, small_capacities, index,
                                     1e5, 8.0, seed=0)
        assert outcomes[0].optimality_gap == pytest.approx(0.0)

    def test_gaps_nonnegative(self, small_catalog, small_capacities, index):
        outcomes = compare_baselines(small_catalog, small_capacities, index,
                                     1e5, 8.0, seed=0)
        for o in outcomes:
            assert o.optimality_gap >= -1e-9

    def test_missing_answer_infinite_gap(self, small_catalog,
                                         small_capacities, index):
        from repro.baselines.comparison import BaselineOutcome

        outcome = BaselineOutcome(strategy="x", answer=None,
                                  optimal_cost=1.0, wall_seconds=0.0)
        assert not outcome.found
        assert outcome.optimality_gap == float("inf")
