"""Tests for provisioning retries (:mod:`repro.runtime.retry`)."""

import numpy as np
import pytest

from repro.cloud.faults import ProvisioningFaultModel
from repro.cloud.provider import CloudProvider
from repro.errors import ProvisioningExhaustedError, ValidationError
from repro.runtime.events import ExecutionTimeline, ProvisionAttempt
from repro.runtime.retry import (
    RetryPolicy,
    backoff_seconds,
    pareto_adjacent_type,
    provision_with_retry,
    substitute_configuration,
    substitute_count,
)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base_s": -1.0},
        {"backoff_multiplier": 0.5},
        {"jitter_fraction": 1.5},
        {"fallback_after_attempts": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_grows_then_caps(self):
        policy = RetryPolicy(backoff_base_s=10.0, backoff_multiplier=2.0,
                             backoff_cap_s=35.0, jitter_fraction=0.0)
        waits = [backoff_seconds(policy, k, seed=0) for k in (1, 2, 3, 4)]
        assert waits == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=100.0, backoff_cap_s=100.0,
                             jitter_fraction=0.5)
        first = backoff_seconds(policy, 1, seed=7)
        assert first == backoff_seconds(policy, 1, seed=7)
        assert first != backoff_seconds(policy, 1, seed=8)
        assert 75.0 <= first <= 125.0  # nominal * (1 +/- jitter/2)


class TestSubstitution:
    def test_substitute_count_preserves_capacity(self):
        assert substitute_count(2.0, 4.0, 4) == 2
        assert substitute_count(2.0, 1.5, 1) == 2
        assert substitute_count(2.0, 100.0, 1) == 1  # never zero nodes

    def test_adjacent_type_is_closest_with_headroom(self, small_catalog,
                                                    small_capacities):
        # capacities [2.0, 4.2, 1.5]: the neighbour of type 0 by capacity
        # distance is type 2 (|1.5-2|=0.5 vs |4.2-2|=2.2).
        available = np.array(small_catalog.quotas)
        sub = pareto_adjacent_type(small_catalog, small_capacities, 0, 1,
                                   available)
        assert sub == 2

    def test_no_candidate_returns_none(self, small_catalog, small_capacities):
        available = np.zeros(3)  # nobody has headroom
        assert pareto_adjacent_type(small_catalog, small_capacities, 0, 1,
                                    available) is None

    def test_substitute_configuration_rebuilds_vector(self, small_catalog,
                                                      small_capacities):
        available = np.array(small_catalog.quotas)
        result = substitute_configuration((1, 1, 0), small_catalog,
                                          small_capacities, 0, available)
        assert result is not None
        vec, sub = result
        assert sub == 2
        assert vec[0] == 0  # short type evicted
        assert vec[2] == substitute_count(2.0, 1.5, 1)

    def test_zero_count_type_not_substituted(self, small_catalog,
                                             small_capacities):
        available = np.array(small_catalog.quotas)
        assert substitute_configuration((0, 1, 0), small_catalog,
                                        small_capacities, 0,
                                        available) is None


class TestProvisionWithRetry:
    POLICY = RetryPolicy(max_attempts=4, backoff_base_s=30.0,
                         backoff_cap_s=120.0, jitter_fraction=0.0,
                         fallback_after_attempts=2)

    def test_clean_provider_single_attempt(self, small_catalog,
                                           small_capacities):
        provider = CloudProvider(small_catalog)
        timeline = ExecutionTimeline()
        lease, now = provision_with_retry(
            provider, (1, 1, 0), small_capacities, policy=self.POLICY,
            now_hours=1.0, seed=0, timeline=timeline)
        assert now == 1.0  # no backoff burned
        assert len(lease.instances) == 2
        assert timeline.count(ProvisionAttempt) == 1
        assert timeline.events[0].outcome == "ok"

    def test_exhaustion_raises_typed_error_with_elapsed_backoff(
            self, small_catalog, small_capacities):
        provider = CloudProvider(
            small_catalog,
            fault_model=ProvisioningFaultModel(throttle_rate=1.0, seed=0))
        timeline = ExecutionTimeline()
        with pytest.raises(ProvisioningExhaustedError) as err:
            provision_with_retry(provider, (1, 0, 0), small_capacities,
                                 policy=self.POLICY, now_hours=0.0, seed=0,
                                 timeline=timeline)
        assert err.value.attempts == 4
        # Backoff burned simulated time: 30 + 60 + 120 (none after last).
        assert err.value.elapsed_seconds == pytest.approx(210.0)
        assert timeline.count(ProvisionAttempt) == 4
        assert all(e.outcome == "throttled" for e in timeline.events)

    def test_capacity_shortfall_triggers_type_substitution(
            self, small_catalog, small_capacities):
        provider = CloudProvider(
            small_catalog,
            fault_model=ProvisioningFaultModel(
                insufficient_capacity_rate=1.0, seed=0))
        timeline = ExecutionTimeline()
        with pytest.raises(ProvisioningExhaustedError):
            provision_with_retry(provider, (1, 0, 0), small_capacities,
                                 policy=self.POLICY, now_hours=0.0, seed=0,
                                 timeline=timeline)
        # After fallback_after_attempts=2 same-type failures the request
        # is rebuilt around the Pareto-adjacent neighbour (type 2).
        substituted = [e for e in timeline.events
                       if e.substituted_type is not None]
        assert substituted
        assert substituted[0].substituted_type == "b.small"
        following = next(e for e in timeline.events
                         if e.attempt == substituted[0].attempt + 1)
        assert following.configuration[0] == 0  # short type evicted
        assert following.configuration[2] >= 1  # neighbour absorbed it

    def test_deterministic_timeline(self, small_catalog, small_capacities):
        def run():
            provider = CloudProvider(
                small_catalog,
                fault_model=ProvisioningFaultModel(
                    throttle_rate=0.5, seed=5))
            timeline = ExecutionTimeline()
            try:
                _, now = provision_with_retry(
                    provider, (1, 1, 0), small_capacities,
                    policy=RetryPolicy(max_attempts=6), now_hours=0.0,
                    seed=9, timeline=timeline)
            except ProvisioningExhaustedError:
                now = None
            return now, timeline.to_dicts()

        assert run() == run()
