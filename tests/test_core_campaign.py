"""Tests for the campaign (multi-run budget allocation) planner."""

import numpy as np
import pytest

from repro.core.campaign import CampaignRun, plan_campaign
from repro.errors import ValidationError


@pytest.fixture()
def galaxy_run(celia_ec2, galaxy):
    return CampaignRun(
        name="galaxy-run",
        app=galaxy,
        demand=celia_ec2.demand_model(galaxy),
        index=celia_ec2.min_cost_index(galaxy),
        problem_size=65_536,
        accuracy_levels=np.array([1000, 2000, 4000, 6000, 8000],
                                 dtype=float),
    )


@pytest.fixture()
def sand_run(celia_ec2, sand):
    return CampaignRun(
        name="sand-run",
        app=sand,
        demand=celia_ec2.demand_model(sand),
        index=celia_ec2.min_cost_index(sand),
        problem_size=2_048e6,
        accuracy_levels=np.array([0.1, 0.2, 0.4, 0.8, 1.0]),
    )


class TestPlanCampaign:
    def test_respects_budget(self, galaxy_run, sand_run):
        plan = plan_campaign([galaxy_run, sand_run], 48.0, 100.0)
        assert plan.total_cost <= 100.0 + 1e-9
        assert plan.total_score > 0

    def test_bigger_budget_never_worse(self, galaxy_run, sand_run):
        small = plan_campaign([galaxy_run, sand_run], 48.0, 50.0)
        large = plan_campaign([galaxy_run, sand_run], 48.0, 300.0)
        assert large.total_score >= small.total_score - 1e-12
        assert large.total_cost >= small.total_cost - 1e-9

    def test_generous_budget_maxes_all_runs(self, galaxy_run, sand_run):
        plan = plan_campaign([galaxy_run, sand_run], 72.0, 1e6)
        assert plan.allocation_for("galaxy-run").accuracy == 8000
        assert plan.allocation_for("sand-run").accuracy == 1.0

    def test_tiny_budget_drops_runs(self, galaxy_run, sand_run):
        plan = plan_campaign([galaxy_run, sand_run], 48.0, 0.01)
        assert all(a.accuracy is None for a in plan.allocations)
        assert plan.total_cost == 0.0

    def test_weight_steers_allocation(self, celia_ec2, galaxy, sand,
                                      galaxy_run, sand_run):
        """Budget so tight only one run can get its first level: the
        heavier-weighted run wins."""
        # First-level costs for both runs at 48 h:
        g_cost = galaxy_run.index.query(
            galaxy_run.demand.gi(65_536, 1000), 48.0).cost_dollars
        s_cost = sand_run.index.query(
            sand_run.demand.gi(2_048e6, 0.1), 48.0).cost_dollars
        budget = max(g_cost, s_cost) * 1.05

        import dataclasses

        heavy_galaxy = dataclasses.replace(galaxy_run, weight=100.0)
        plan = plan_campaign([heavy_galaxy, sand_run], 48.0, budget)
        assert plan.allocation_for("galaxy-run").accuracy is not None

    def test_allocation_configurations_valid(self, galaxy_run):
        plan = plan_campaign([galaxy_run], 48.0, 100.0)
        alloc = plan.allocation_for("galaxy-run")
        if alloc.accuracy is not None:
            assert sum(alloc.configuration) > 0

    def test_duplicate_names_rejected(self, galaxy_run):
        with pytest.raises(ValidationError):
            plan_campaign([galaxy_run, galaxy_run], 48.0, 10.0)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValidationError):
            plan_campaign([], 48.0, 10.0)

    def test_invalid_constraints(self, galaxy_run):
        with pytest.raises(ValidationError):
            plan_campaign([galaxy_run], 0.0, 10.0)
        with pytest.raises(ValidationError):
            plan_campaign([galaxy_run], 48.0, 0.0)

    def test_run_validation(self, celia_ec2, galaxy):
        with pytest.raises(ValidationError):
            CampaignRun(
                name="bad",
                app=galaxy,
                demand=celia_ec2.demand_model(galaxy),
                index=celia_ec2.min_cost_index(galaxy),
                problem_size=65_536,
                accuracy_levels=np.array([2000, 1000], dtype=float),
            )

    def test_render(self, galaxy_run, sand_run):
        plan = plan_campaign([galaxy_run, sand_run], 48.0, 100.0)
        text = plan.render()
        assert "campaign plan" in text
        assert "galaxy-run" in text
