"""Tests for the demand-term family and separable demand functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.demand import (
    AffineTerm,
    ConstantTerm,
    LinearTerm,
    LogTerm,
    PowerTerm,
    QuadraticTerm,
    SeparableDemand,
)
from repro.errors import ValidationError

positive = st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False)


class TestTerms:
    def test_constant(self):
        term = ConstantTerm(3.0)
        assert term(10) == 3.0
        np.testing.assert_allclose(term(np.array([1.0, 2.0])), [3.0, 3.0])

    def test_constant_positive(self):
        with pytest.raises(ValidationError):
            ConstantTerm(0.0)

    def test_linear(self):
        term = LinearTerm(slope=2.0)
        assert term(3) == 6.0
        np.testing.assert_allclose(term(np.array([1, 2])), [2.0, 4.0])

    def test_linear_through_origin(self):
        assert LinearTerm(slope=5.0)(0) == 0.0

    def test_affine(self):
        term = AffineTerm(intercept=1.0, slope=2.0)
        assert term(3) == 7.0

    def test_affine_constraints(self):
        with pytest.raises(ValidationError):
            AffineTerm(intercept=-1.0, slope=1.0)
        with pytest.raises(ValidationError):
            AffineTerm(intercept=0.0, slope=0.0)

    def test_quadratic(self):
        term = QuadraticTerm(a=1.0, b=2.0, c=3.0)
        assert term(2) == pytest.approx(1 + 4 + 12)

    def test_quadratic_needs_positive_c(self):
        with pytest.raises(ValidationError):
            QuadraticTerm(a=1.0, b=1.0, c=0.0)

    def test_power(self):
        term = PowerTerm(coefficient=2.0, exponent=2.0)
        assert term(3) == pytest.approx(18.0)

    def test_power_rejects_nonpositive_input(self):
        with pytest.raises(ValidationError):
            PowerTerm(coefficient=1.0, exponent=2.0)(0.0)

    def test_log(self):
        term = LogTerm(coefficient=2.0, tau=1.0)
        assert term(0) == 0.0
        assert term(np.e - 1) == pytest.approx(2.0)

    def test_log_positive_over_paper_range(self):
        # sand's t range is (0, 1]; the shifted log must stay positive.
        term = LogTerm(coefficient=3.09e-3, tau=0.08)
        t = np.linspace(0.01, 1.0, 100)
        assert np.all(term(t) > 0)

    def test_describe_contains_parameters(self):
        assert "2" in LinearTerm(slope=2.0).describe()
        assert "x^2" in QuadraticTerm(a=0.0, b=0.0, c=1.0).describe()

    @given(positive, positive)
    def test_linear_scales_proportionally(self, slope, x):
        term = LinearTerm(slope=slope)
        assert term(2 * x) == pytest.approx(2 * term(x), rel=1e-9)

    @given(positive)
    def test_log_is_monotone(self, x):
        term = LogTerm(coefficient=1.0, tau=0.5)
        assert term(x * 1.5) > term(x)


class TestSeparableDemand:
    def make(self) -> SeparableDemand:
        return SeparableDemand(
            size_term=LinearTerm(slope=1.0),
            accuracy_term=QuadraticTerm(a=314.0, b=0.0, c=0.574),
            scale=1.0,
        )

    def test_scalar_evaluation(self):
        demand = self.make()
        assert demand.gi(2, 50) == pytest.approx(2 * (314 + 0.574 * 2500))

    def test_broadcast_grid(self):
        demand = self.make()
        n = np.array([1.0, 2.0])[:, None]
        a = np.array([10.0, 20.0, 30.0])[None, :]
        grid = demand(n, a)
        assert grid.shape == (2, 3)
        assert grid[1, 0] == pytest.approx(2 * (314 + 57.4))

    def test_separability(self):
        demand = self.make()
        # D(2n, a) = 2 D(n, a) for a linear size term.
        assert demand.gi(8, 20) == pytest.approx(2 * demand.gi(4, 20))

    def test_scale_must_be_positive(self):
        with pytest.raises(ValidationError):
            SeparableDemand(size_term=LinearTerm(1.0),
                            accuracy_term=ConstantTerm(1.0), scale=0.0)

    def test_describe(self):
        assert "D(n,a)" in self.make().describe()

    @given(positive, st.floats(1, 51))
    def test_positive_everywhere(self, n, a):
        assert self.make().gi(n, a) > 0
