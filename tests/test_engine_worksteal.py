"""Tests for the work-stealing scheduler extension."""

import numpy as np
import pytest

from repro.apps.base import ExecutionStyle, Workload
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.engine.schedulers import simulate_worksteal, simulate_workqueue
from repro.errors import SimulationError


@pytest.fixture()
def cluster(ec2, sand):
    instances = [
        Instance(instance_id="i-0", itype=ec2.type_named("c4.large")),
        Instance(instance_id="i-1", itype=ec2.type_named("c4.xlarge")),
    ]
    return SimCluster(instances, sand)


def wq_workload(task_gi, dispatch=0.2) -> Workload:
    arr = np.asarray(task_gi, dtype=float)
    return Workload(style=ExecutionStyle.WORKQUEUE,
                    total_gi=float(arr.sum()), task_gi=arr,
                    dispatch_seconds=dispatch)


class TestWorkSteal:
    def test_near_ideal_with_many_tasks(self, cluster):
        w = wq_workload(np.full(1000, 1.0))
        outcome = simulate_worksteal(w, cluster, np.random.default_rng(0),
                                     jitter_sigma=0.0)
        ideal = cluster.ideal_seconds(w.total_gi)
        assert outcome.makespan_seconds == pytest.approx(ideal, rel=0.05)

    def test_eliminates_master_bottleneck(self, cluster):
        """With heavy dispatch cost, stealing beats the work queue."""
        tasks = np.full(400, 0.5)
        rng = np.random.default_rng(1)
        wq = simulate_workqueue(wq_workload(tasks, dispatch=0.5), cluster,
                                rng, jitter_sigma=0.0)
        ws = simulate_worksteal(wq_workload(tasks, dispatch=0.5), cluster,
                                np.random.default_rng(1), jitter_sigma=0.0)
        assert ws.makespan_seconds < wq.makespan_seconds

    def test_accepts_independent_style(self, cluster):
        w = Workload(style=ExecutionStyle.INDEPENDENT, total_gi=10.0,
                     task_gi=np.full(10, 1.0))
        outcome = simulate_worksteal(w, cluster, np.random.default_rng(0))
        assert outcome.n_units == 10

    def test_rejects_bsp(self, cluster):
        w = Workload(style=ExecutionStyle.BSP, total_gi=10.0, n_steps=5,
                     step_gi=2.0)
        with pytest.raises(SimulationError):
            simulate_worksteal(w, cluster, np.random.default_rng(0))

    def test_steal_latency_counts(self, cluster):
        """A single tiny task still pays one steal latency."""
        w = wq_workload(np.array([1e-9]))
        outcome = simulate_worksteal(w, cluster, np.random.default_rng(0),
                                     jitter_sigma=0.0)
        assert outcome.makespan_seconds >= 0.002
