"""Tests for the service metrics primitives (:mod:`repro.service.metrics`)."""

import threading

import pytest

from repro.errors import ValidationError
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.increment()
        c.increment(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            Counter().increment(-1)

    def test_thread_safety(self):
        c = Counter()
        threads = [threading.Thread(
            target=lambda: [c.increment() for _ in range(1000)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(10)
        g.add(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["p99"] is None

    def test_percentiles_on_known_distribution(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p95"] == pytest.approx(95.0, abs=1.0)
        assert snap["p99"] == pytest.approx(99.0, abs=1.0)

    def test_single_sample(self):
        h = Histogram()
        h.observe(3.5)
        snap = h.snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 3.5

    def test_window_bounds_memory_but_not_count(self):
        h = Histogram(window=10)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 90.0  # only the window's samples remain

    def test_bad_window(self):
        with pytest.raises(ValidationError):
            Histogram(window=0)

    def test_samples_accessor(self):
        h = Histogram(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.samples() == (2.0, 3.0, 4.0)


class TestRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests").increment(2)
        registry.gauge("depth").set(3)
        registry.histogram("latency").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 2}
        assert snap["gauges"] == {"depth": 3.0}
        assert snap["histograms"]["latency"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("latency").observe(1.0)
        json.dumps(registry.snapshot())
