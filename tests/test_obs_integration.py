"""Integration tests for the observability layer.

The properties the tentpole promises:

* worker span records cross the process boundary with their parent
  links intact (the supervisor's span context survives pickling);
* tracing never perturbs results — supervised sweeps are bit-identical
  with tracing on and off;
* the sweep, cache and runtime report into the global metrics registry;
* every ``--json`` CLI output is exactly one parseable JSON document on
  stdout, with diagnostics on stderr;
* a traced CLI run yields ≥95% span coverage and a loadable Chrome
  export.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.obs.export import read_trace, trace_summary
from repro.obs.metrics import global_registry, reset_global_registry
from repro.obs.profile import get_store, reset_store
from repro.obs.trace import configure_tracing, get_tracer, reset_tracing
from repro.parallel import evaluate_resilient


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv("CELIA_TRACE", raising=False)
    monkeypatch.delenv("CELIA_PROFILE", raising=False)
    reset_tracing()
    reset_global_registry()
    reset_store()
    yield
    reset_tracing()
    reset_global_registry()
    reset_store()


class TestWorkerSpanPropagation:
    def test_parent_ids_survive_the_process_boundary(
            self, tmp_path, small_space, small_capacities):
        configure_tracing(tmp_path / "sweep.jsonl")
        with get_tracer().span("test.root"):
            evaluate_resilient(small_space, small_capacities, workers=2,
                               chunk_size=4)
        records = read_trace(tmp_path / "sweep.jsonl")
        supervised = [r for r in records if r["name"] == "sweep.supervised"]
        worker_spans = [r for r in records if r["name"] == "sweep.span"]
        assert len(supervised) == 1
        assert worker_spans, "workers produced no span records"
        # Every worker span is parented on the supervisor span it was
        # dispatched under, in the same trace.
        for span in worker_spans:
            assert span["parent_id"] == supervised[0]["span_id"]
            assert span["trace_id"] == supervised[0]["trace_id"]
            assert span["attrs"]["stop"] > span["attrs"]["start"]
        # The records were produced in the worker processes themselves.
        assert all(s["pid"] != 0 for s in worker_spans)
        assert any(s["pid"] != os.getpid() for s in worker_spans)
        # Worker spans cover the whole index range exactly once per
        # evaluated span (no gaps: spans tile [1, S+1)).
        edges = sorted((s["attrs"]["start"], s["attrs"]["stop"])
                       for s in worker_spans)
        assert edges[0][0] == 1
        assert edges[-1][1] == small_space.size + 1
        for (_, prev_stop), (start, _) in zip(edges, edges[1:]):
            assert start == prev_stop

    def test_sweep_is_bit_identical_with_tracing_on_and_off(
            self, tmp_path, small_space, small_capacities):
        cap_off, cost_off, _ = evaluate_resilient(
            small_space, small_capacities, workers=2, chunk_size=4)
        configure_tracing(tmp_path / "t.jsonl")
        cap_on, cost_on, _ = evaluate_resilient(
            small_space, small_capacities, workers=2, chunk_size=4)
        assert cap_on.tobytes() == cap_off.tobytes()
        assert cost_on.tobytes() == cost_off.tobytes()
        serial = small_space.evaluate(small_capacities)
        assert np.array_equal(serial.capacity_gips, cap_on)

    def test_sweep_metrics_reach_global_registry(
            self, small_space, small_capacities):
        _, _, stats = evaluate_resilient(small_space, small_capacities,
                                         workers=2, chunk_size=4)
        counters = global_registry().snapshot()["counters"]
        assert counters["sweep_runs_total"] == 1
        assert counters["sweep_spans_evaluated_total"] == \
            stats.spans_evaluated
        assert counters["sweep_workers_spawned_total"] >= 2
        hist = global_registry().snapshot()["histograms"]["sweep_wall_s"]
        assert hist["count"] == 1

    def test_worker_profiles_ship_back_at_drain(
            self, monkeypatch, small_space, small_capacities):
        monkeypatch.setenv("CELIA_PROFILE", "1")
        evaluate_resilient(small_space, small_capacities, workers=2,
                           chunk_size=4)
        store = get_store()
        assert store.blocks("sweep.worker") >= 1
        rows = store.tables()["sweep.worker"]
        assert rows and rows[0]["cumulative_s"] >= 0.0


class TestCacheAndRuntimeInstrumentation:
    def test_cache_spans_and_counters(self, tmp_path, small_space,
                                      small_capacities):
        from repro.cache import EvaluationCache

        configure_tracing()
        cache = EvaluationCache(tmp_path / "cache")
        assert cache.load(small_space, small_capacities) is None
        evaluation = small_space.evaluate(small_capacities)
        cache.store(evaluation, small_capacities)
        assert cache.load(small_space, small_capacities) is not None
        counters = global_registry().snapshot()["counters"]
        assert counters["eval_cache_misses_total"] == 1
        assert counters["eval_cache_hits_total"] == 1
        loads = [r for r in get_tracer().records()
                 if r["name"] == "cache.load"]
        assert [r["attrs"]["hit"] for r in loads] == [False, True]

    def test_runtime_execute_emits_span_and_verdict_counter(self):
        from repro.apps import application_by_name
        from repro.cloud.catalog import ec2_catalog
        from repro.core.celia import Celia
        from repro.runtime import AdaptiveController, chaos_scenario

        configure_tracing()
        celia = Celia(ec2_catalog(max_nodes_per_type=2), seed=1,
                      cache_dir=False)
        controller = AdaptiveController(
            celia, application_by_name("galaxy", seed=1),
            scenario=chaos_scenario("calm"), seed=1)
        report = controller.execute(65536, 8000, 40.0, 400.0)
        span = next(r for r in get_tracer().records()
                    if r["name"] == "runtime.execute")
        assert span["attrs"]["verdict"] == report.verdict
        assert span["attrs"]["scenario"] == "calm"
        counters = global_registry().snapshot()["counters"]
        assert counters["runtime_runs_total"] == 1
        verdict_series = f'runtime_verdicts_total{{verdict="{report.verdict}"}}'
        assert counters[verdict_series] == 1


class TestCliJsonContract:
    """Every ``--json`` path: stdout is one JSON document, nothing else."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CELIA_CACHE_DIR", str(tmp_path / "cache"))

    def _run_json(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        return code, json.loads(captured.out), captured.err

    def test_sweep_json_fresh_and_cached(self, capsys):
        argv = ["--quota", "2", "--workers", "2", "sweep", "galaxy",
                "--json"]
        code, fresh, _ = self._run_json(capsys, argv)
        assert code == 0
        assert fresh["cached"] is False
        assert fresh["spans_evaluated"] >= 1
        code, cached, _ = self._run_json(capsys, argv)
        assert code == 0
        assert cached["cached"] is True
        assert cached["key"] == fresh["key"]

    def test_sweep_human_notice_stays_on_stdout(self, capsys):
        # The CI smoke pipeline greps this exact phrase from stdout.
        assert main(["--quota", "2", "sweep", "galaxy"]) == 0
        capsys.readouterr()
        assert main(["--quota", "2", "sweep", "galaxy"]) == 0
        assert "already cached" in capsys.readouterr().out

    def test_trace_summary_and_profile_json(self, capsys, monkeypatch,
                                            tmp_path):
        monkeypatch.setenv("CELIA_PROFILE", "1")
        trace = tmp_path / "run.jsonl"
        code = main(["--quota", "2", "--workers", "2", "--trace",
                     str(trace), "sweep", "galaxy"])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace written" in captured.err  # diagnostic on stderr
        code, summary, _ = self._run_json(
            capsys, ["trace", "summary", str(trace), "--json"])
        assert code == 0
        assert summary["spans"] >= 3
        assert summary["coverage"] >= 0.95  # the acceptance bar
        assert "cli.sweep" in summary["by_name"]
        assert "sweep.span" in summary["by_name"]
        code, tables, _ = self._run_json(
            capsys, ["profile", str(trace), "--json"])
        assert code == 0
        assert "sweep.worker" in tables

    def test_trace_export_writes_loadable_chrome_json(self, capsys,
                                                      tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["--quota", "2", "--trace", str(trace), "sweep",
                     "galaxy"]) == 0
        capsys.readouterr()
        out = tmp_path / "run.chrome.json"
        assert main(["trace", "export", str(trace), "--output",
                     str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        names = {e["name"] for e in doc["traceEvents"]}
        assert "cli.sweep" in names

    def test_trace_export_default_output_path(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps({
            "kind": "span", "name": "a", "trace_id": "t", "span_id": "s",
            "parent_id": None, "start_s": 0.0, "wall_s": 1.0,
            "cpu_s": 0.5, "status": "ok", "pid": 1, "attrs": {}}) + "\n")
        assert main(["trace", "export", str(trace)]) == 0
        capsys.readouterr()
        assert (tmp_path / "t.jsonl.chrome.json").exists()

    def test_trace_commands_fail_cleanly_on_missing_file(self, capsys,
                                                         tmp_path):
        code = main(["trace", "summary", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_execute_json_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "exec.jsonl"
        code = main(["--seed", "1", "--quota", "2", "--trace", str(trace),
                     "execute", "galaxy", "65536", "8000",
                     "--deadline", "40", "--budget", "400", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)  # stdout is pure JSON
        assert report["verdict"] == "met"
        names = {r["name"] for r in read_trace(trace)}
        assert {"cli.execute", "runtime.execute",
                "runtime.provision"} <= names


class TestServiceMetricsMerge:
    def test_server_merges_global_registry(self):
        import asyncio

        from repro.service import PlannerServer, PlannerService, ServiceConfig

        global_registry().counter("sweep_runs_total").increment(3)
        service = PlannerService(config=ServiceConfig(default_quota=2,
                                                      cache_dir=False))
        service.metrics.counter("requests_total").increment()

        async def snapshot_and_text():
            server = PlannerServer(service)
            return server._metrics_snapshot()

        merged = asyncio.run(snapshot_and_text())
        # Service series keep their historical names; global series ride
        # along under their prefixes.
        assert merged["counters"]["requests_total"] == 1
        assert merged["counters"]["sweep_runs_total"] == 3
