"""Tests for the CELIA facade (integration of the Figure 1 pipeline).

These run against the full Table III catalog using the session-scoped
``celia_ec2`` fixture so the 10M-configuration evaluation happens once.
"""

import numpy as np
import pytest

from repro.errors import ValidationError


class TestDemandModel:
    def test_fitted_shapes_match_paper(self, celia_ec2, galaxy, sand, x264):
        """Figure 2: the fitted shapes are the paper's."""
        g = celia_ec2.demand_model(galaxy)
        assert g.size_fit.kind in ("power", "quadratic")
        assert g.accuracy_fit.kind == "linear"
        s = celia_ec2.demand_model(sand)
        assert s.size_fit.kind == "linear"
        assert s.accuracy_fit.kind == "log"
        x = celia_ec2.demand_model(x264)
        assert x.size_fit.kind == "linear"
        assert x.accuracy_fit.kind == "quadratic"

    def test_fit_quality(self, celia_ec2, galaxy):
        assert celia_ec2.demand_model(galaxy).grid_r2 > 0.999

    def test_fitted_demand_close_to_truth_at_scale(self, celia_ec2, galaxy):
        """Extrapolation from the scale-down grid stays accurate."""
        estimated = celia_ec2.demand_gi(galaxy, 262_144, 1_000)
        truth = galaxy.demand_gi(262_144, 1_000)
        assert estimated == pytest.approx(truth, rel=0.05)

    def test_demand_model_cached(self, celia_ec2, galaxy):
        assert celia_ec2.demand_model(galaxy) is celia_ec2.demand_model(galaxy)


class TestPrediction:
    def test_predict_matches_models(self, celia_ec2, galaxy):
        config = (5, 5, 5, 3, 0, 0, 0, 0, 0)
        pred = celia_ec2.predict(galaxy, 65_536, 8_000, config)
        w = celia_ec2.capacities(galaxy)
        expected_capacity = float(np.asarray(config) @ w)
        assert pred.capacity_gips == pytest.approx(expected_capacity)
        assert pred.time_hours == pytest.approx(
            pred.demand_gi / pred.capacity_gips / 3600.0)
        assert pred.cost_dollars == pytest.approx(
            pred.time_hours * pred.unit_cost_per_hour)

    def test_paper_validation_cell(self, celia_ec2, galaxy):
        """galaxy(65536, 8000) on [5,5,5,3,...]: ~24 h and ~$126."""
        pred = celia_ec2.predict(galaxy, 65_536, 8_000,
                                 (5, 5, 5, 3, 0, 0, 0, 0, 0))
        assert pred.time_hours == pytest.approx(24.0, rel=0.06)
        assert pred.cost_dollars == pytest.approx(126.0, rel=0.06)

    def test_bad_configuration_rejected(self, celia_ec2, galaxy):
        with pytest.raises(ValidationError):
            celia_ec2.predict(galaxy, 65_536, 8_000, (1, 2))
        with pytest.raises(ValidationError):
            celia_ec2.predict(galaxy, 65_536, 8_000, (0,) * 9)


class TestSelection:
    @pytest.mark.slow
    def test_figure4_galaxy_headlines(self, celia_ec2, galaxy):
        """Feasible count ~5.8M, frontier span ratio ~1.3 (paper Fig. 4)."""
        result = celia_ec2.select(galaxy, 65_536, 8_000, 24.0, 350.0)
        assert result.total_configurations == 10_077_695
        assert 4_500_000 < result.feasible_count < 7_000_000
        lo, hi = result.cost_span
        assert hi / lo == pytest.approx(1.3, abs=0.15)
        assert 110 < lo < 145  # paper: $126

    @pytest.mark.slow
    def test_figure4_sand_headlines(self, celia_ec2, sand):
        result = celia_ec2.select(sand, 8_192e6, 0.32, 24.0, 350.0)
        assert 1_000_000 < result.feasible_count < 3_500_000
        lo, hi = result.cost_span
        assert hi / lo == pytest.approx(1.2, abs=0.15)

    @pytest.mark.slow
    def test_pareto_configs_meet_constraints(self, celia_ec2, galaxy):
        result = celia_ec2.select(galaxy, 65_536, 8_000, 24.0, 350.0)
        for p in result.pareto:
            assert p.time_hours < 24.0
            assert p.cost_dollars < 350.0


class TestOptimalQueries:
    @pytest.mark.slow
    def test_min_cost_consistent_with_selection(self, celia_ec2, galaxy):
        result = celia_ec2.select(galaxy, 65_536, 8_000, 24.0, 350.0)
        answer = celia_ec2.min_cost(galaxy, 65_536, 8_000, 24.0)
        assert answer.cost_dollars == pytest.approx(
            result.cheapest().cost_dollars, rel=1e-9)

    @pytest.mark.slow
    def test_min_time_consistent_with_selection(self, celia_ec2, galaxy):
        result = celia_ec2.select(galaxy, 65_536, 8_000, 24.0, 350.0)
        answer = celia_ec2.min_time(galaxy, 65_536, 8_000, 350.0)
        assert answer.time_hours <= result.fastest().time_hours + 1e-9

    def test_min_cost_budget_guard(self, celia_ec2, galaxy):
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            celia_ec2.min_cost(galaxy, 65_536, 8_000, 24.0, budget_dollars=10.0)

    def test_profile_round_trip(self, celia_ec2, galaxy, tmp_path):
        profile = celia_ec2.profile(galaxy)
        path = tmp_path / "galaxy.json"
        profile.save(path)
        from repro.measurement.profiles import ApplicationProfile

        restored = ApplicationProfile.load(path)
        assert restored.capacity_vector(celia_ec2.catalog.names).shape == (9,)
        assert restored.demand.gi(65_536, 8_000) == pytest.approx(
            celia_ec2.demand_gi(galaxy, 65_536, 8_000))

    def test_evaluation_cached(self, celia_ec2, galaxy):
        assert celia_ec2.evaluation(galaxy) is celia_ec2.evaluation(galaxy)
