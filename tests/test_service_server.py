"""Tests for the HTTP front-end and client (:mod:`repro.service`).

The server runs on the test's own event loop; client calls are blocking
stdlib HTTP, so they run in an executor thread — exactly how a real
caller would hit a live service.
"""

import asyncio
import json

import pytest

from repro.cloud.catalog import make_catalog
from repro.errors import ReproError, ServiceUnavailableError, ValidationError
from repro.service import (
    PlannerClient,
    PlannerServer,
    PlannerService,
    ServiceConfig,
    ServiceFaults,
    ServiceSaturatedError,
)

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]


def make_service(*, faults=None, **overrides) -> PlannerService:
    overrides.setdefault("default_quota", 2)
    overrides.setdefault("cache_dir", False)
    return PlannerService(
        config=ServiceConfig(**overrides),
        faults=faults,
        catalog_factory=lambda quota: make_catalog(ROWS, quota=quota),
    )


def with_server(service: PlannerService, fn):
    """Start the server, run blocking ``fn(client)`` in a thread, stop."""

    async def run():
        server = PlannerServer(service)
        await server.start()
        try:
            client = PlannerClient(port=server.port)
            return await asyncio.get_running_loop().run_in_executor(
                None, fn, client)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestEndpoints:
    def test_select_round_trip(self):
        service = make_service()

        def call(client):
            return client.select("galaxy", n=65536, a=2000,
                                 deadline_hours=48, budget_dollars=350)

        response = with_server(service, call)
        assert response["kind"] == "select"
        assert response["result"]["pareto_count"] > 0

    def test_http_response_matches_in_process_result(self):
        service = make_service()

        def call(client):
            return client.select("galaxy", n=65536, a=2000,
                                 deadline_hours=48, budget_dollars=350)

        http_response = with_server(service, call)
        direct = asyncio.run(service.select(
            "galaxy", 65536.0, 2000.0, 48.0, 350.0))
        assert http_response["result"] == direct["result"]

    def test_predict_and_plan(self):
        service = make_service()

        def call(client):
            predicted = client.predict("galaxy", n=65536, a=2000,
                                       configuration=[1, 1, 0])
            planned = client.plan("galaxy", deadline_hours=24,
                                  budget_dollars=50, fix_size=65536,
                                  knob_range=(100, 20000), integral=True)
            return predicted, planned

        predicted, planned = with_server(service, call)
        assert predicted["result"]["configuration"] == [1, 1, 0]
        assert planned["result"]["knob"] == "accuracy"

    def test_health_and_metrics(self):
        service = make_service()

        def call(client):
            client.select("galaxy", n=65536, a=2000, deadline_hours=48,
                          budget_dollars=350)
            return client.health(), client.metrics()

        health, metrics = with_server(service, call)
        assert health["status"] == "ok"
        assert health["warm_signatures"] == [
            {"app": "galaxy", "quota": 2, "seed": 0}]
        assert metrics["counters"]["requests_total"] == 1
        assert metrics["histograms"]["latency_select_s"]["count"] == 1


class TestErrorMapping:
    def test_unknown_app_is_invalid_request(self):
        def call(client):
            with pytest.raises(ValidationError):
                client.select("hadoop", n=1, a=1, deadline_hours=1,
                              budget_dollars=1)
            return True

        assert with_server(make_service(), call)

    def test_unknown_route_404(self):
        def call(client):
            with pytest.raises(ReproError):
                client._request("POST", "/v1/teleport", {})
            return True

        assert with_server(make_service(), call)

    def test_get_on_post_route_405(self):
        def call(client):
            with pytest.raises(ReproError):
                client._request("GET", "/v1/select")
            return True

        assert with_server(make_service(), call)

    def test_bad_json_body_400(self):
        def call(client):
            import http.client

            conn = http.client.HTTPConnection(client.host, client.port,
                                              timeout=10)
            conn.request("POST", "/v1/select", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
            conn.close()
            return response.status, body

        status, body = with_server(make_service(), call)
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_saturated_maps_to_typed_client_error(self):
        service = make_service(faults=ServiceFaults(compute_delay_s=0.4),
                               max_queue_depth=1, batch_window_s=0.0,
                               max_batch=1)

        async def run():
            server = PlannerServer(service)
            await server.start()
            try:
                await service.warm("galaxy")
                blocker = asyncio.create_task(service.select(
                    "galaxy", 65536.0, 2000.0, 48.0, 350.0))
                await asyncio.sleep(0.1)

                def overflow(client):
                    with pytest.raises(ServiceSaturatedError):
                        client.select("galaxy", n=65536, a=3000,
                                      deadline_hours=48, budget_dollars=350)
                    return True

                client = PlannerClient(port=server.port, max_attempts=1)
                rejected = await asyncio.get_running_loop().run_in_executor(
                    None, overflow, client)
                await blocker
                return rejected
            finally:
                await server.stop()

        assert asyncio.run(run())


class TestHealthReadiness:
    def test_unready_until_expected_state_is_warm(self):
        service = make_service()

        async def run():
            server = PlannerServer(service, expected_warm=("galaxy",))
            await server.start()
            try:
                client = PlannerClient(port=server.port)
                loop = asyncio.get_running_loop()
                before = await loop.run_in_executor(None, client.health)
                await service.warm("galaxy")
                after = await loop.run_in_executor(None, client.health)
                return before, after
            finally:
                await server.stop()

        before, after = asyncio.run(run())
        assert before["status"] == "ok"  # alive...
        assert before["ready"] is False  # ...but not routable yet
        assert before["expected_warm"] == ["galaxy"]
        assert after["ready"] is True


class TestGracefulDrain:
    def test_draining_rejects_posts_but_keeps_health_observable(self):
        service = make_service()

        async def run():
            server = PlannerServer(service)
            await server.start()
            try:
                # The drain window: flag up, listener still accepting
                # (exactly the state between drain()'s first two steps).
                server._draining = True
                client = PlannerClient(port=server.port, max_attempts=1)
                loop = asyncio.get_running_loop()

                def probe():
                    from repro.errors import ServiceUnavailableError

                    with pytest.raises(ServiceUnavailableError):
                        client.select("galaxy", n=65536, a=2000,
                                      deadline_hours=48, budget_dollars=350)
                    return client.health(), client.metrics()

                return await loop.run_in_executor(None, probe)
            finally:
                await server.stop()

        health, metrics = asyncio.run(run())
        assert health["status"] == "draining"
        assert health["ready"] is False
        assert "counters" in metrics  # observability survives the drain

    def test_idle_drain_completes_and_stops_listening(self):
        service = make_service()

        async def run():
            server = PlannerServer(service)
            await server.start()
            port = server.port
            drained = await server.drain(timeout_s=1.0)

            def connect():
                # Transport failures surface as the typed service error,
                # never a raw ConnectionError (clients catch one type).
                with pytest.raises(ServiceUnavailableError):
                    PlannerClient(port=port, max_attempts=1).health()
                return True

            refused = await asyncio.get_running_loop().run_in_executor(
                None, connect)
            return drained, refused

        drained, refused = asyncio.run(run())
        assert drained and refused

    def test_drain_waits_for_in_flight_requests(self):
        service = make_service(faults=ServiceFaults(compute_delay_s=0.3))

        async def run():
            server = PlannerServer(service)
            await server.start()
            await service.warm("galaxy")
            client = PlannerClient(port=server.port, timeout_s=10.0)
            loop = asyncio.get_running_loop()
            request = loop.run_in_executor(
                None, lambda: client.select(
                    "galaxy", n=65536, a=2000, deadline_hours=48,
                    budget_dollars=350))
            while server.in_flight == 0:  # request definitely admitted
                await asyncio.sleep(0.01)
            drained = await server.drain(timeout_s=5.0)
            response = await request
            return drained, response, server.in_flight

        drained, response, in_flight = asyncio.run(run())
        assert drained  # drain outwaited the slow request...
        assert response["result"]["feasible_count"] > 0  # ...which completed
        assert in_flight == 0

    def test_drain_timeout_reports_failure(self):
        service = make_service(faults=ServiceFaults(compute_delay_s=0.5))

        async def run():
            server = PlannerServer(service)
            await server.start()
            try:
                await service.warm("galaxy")
                client = PlannerClient(port=server.port, timeout_s=10.0)
                loop = asyncio.get_running_loop()
                request = loop.run_in_executor(
                    None, lambda: client.select(
                        "galaxy", n=65536, a=2000, deadline_hours=48,
                        budget_dollars=350))
                while server.in_flight == 0:
                    await asyncio.sleep(0.01)
                drained = await server.drain(timeout_s=0.05)
                await request  # let it finish before teardown
                return drained
            finally:
                await server.stop()

        assert asyncio.run(run()) is False


class TestClientRetry:
    """Transport-level retry behaviour, exercised against a stub."""

    def make_client(self, outcomes, *, max_attempts=3, sleeps=None):
        """A client whose _request_once pops scripted outcomes."""
        client = PlannerClient(port=1, max_attempts=max_attempts,
                               backoff_base_s=0.01,
                               sleep=(sleeps.append if sleeps is not None
                                      else lambda s: None))
        script = list(outcomes)

        def fake_request_once(method, path, body=None):
            outcome = script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._request_once = fake_request_once
        return client

    def test_transient_failures_retried_to_success(self):
        sleeps = []
        client = self.make_client(
            [ConnectionRefusedError("boom"), TimeoutError(), {"ok": True}],
            sleeps=sleeps)
        assert client._request("GET", "/healthz") == {"ok": True}
        assert sleeps == [client._backoff_s(1), client._backoff_s(2)]

    def test_503_retried_then_succeeds(self):
        saturated = ServiceSaturatedError("full", queue_depth=1,
                                          max_queue_depth=1)
        client = self.make_client([saturated, {"ok": True}])
        assert client._request("POST", "/v1/select", {}) == {"ok": True}

    def test_exhaustion_raises_typed_error_with_cause(self):
        from repro.errors import ServiceUnavailableError

        client = self.make_client([ConnectionRefusedError("boom")] * 3)
        with pytest.raises(ServiceUnavailableError) as err:
            client._request("GET", "/healthz")
        assert err.value.attempts == 3
        assert isinstance(err.value.__cause__, ConnectionRefusedError)

    def test_single_attempt_wraps_transport_error(self):
        client = self.make_client([ConnectionRefusedError("boom")],
                                  max_attempts=1)
        with pytest.raises(ServiceUnavailableError) as err:
            client._request("GET", "/healthz")
        assert err.value.attempts == 1
        assert isinstance(err.value.__cause__, ConnectionRefusedError)

    def test_single_attempt_surfaces_typed_service_error(self):
        saturated = ServiceSaturatedError("full", queue_depth=1,
                                          max_queue_depth=1)
        client = self.make_client([saturated], max_attempts=1)
        with pytest.raises(ServiceSaturatedError):
            client._request("POST", "/v1/select", {})

    def test_non_idempotent_never_retried(self):
        sleeps = []
        client = self.make_client(
            [ConnectionRefusedError("boom"), {"ok": True}], sleeps=sleeps)
        with pytest.raises(ServiceUnavailableError) as err:
            client._request("POST", "/v1/mutate", {}, idempotent=False)
        assert sleeps == []
        assert isinstance(err.value.__cause__, ConnectionRefusedError)

    def test_worker_lost_replayed_once_without_backoff(self):
        """A fleet shard died mid-request: the dead worker has already
        left routing, so one immediate replay lands on the re-routed
        shard — no backoff sleep, no retry-budget spend."""
        from repro.errors import WorkerLostError

        sleeps = []
        client = self.make_client(
            [WorkerLostError("w0 died"), {"ok": True}], sleeps=sleeps)
        assert client._request("POST", "/v1/select", {}) == {"ok": True}
        assert sleeps == []

    def test_worker_lost_replay_fails_raises_typed_error(self):
        from repro.errors import WorkerLostError

        client = self.make_client(
            [WorkerLostError("w0 died"), WorkerLostError("w1 died")])
        with pytest.raises(WorkerLostError) as err:
            client._request("POST", "/v1/select", {})
        assert err.value.attempts == 2
        assert isinstance(err.value.__cause__, WorkerLostError)
        # Still catchable by callers handling generic unavailability.
        assert isinstance(err.value, ServiceUnavailableError)

    def test_worker_lost_non_idempotent_never_replayed(self):
        from repro.errors import WorkerLostError

        sleeps = []
        client = self.make_client(
            [WorkerLostError("w0 died"), {"ok": True}], sleeps=sleeps)
        with pytest.raises(WorkerLostError) as err:
            client._request("POST", "/v1/mutate", {}, idempotent=False)
        assert err.value.attempts == 1
        assert sleeps == []

    def test_definitive_errors_never_retried(self):
        client = self.make_client([ValidationError("bad"), {"ok": True}])
        with pytest.raises(ValidationError):
            client._request("POST", "/v1/select", {})

    def test_backoff_deterministic_and_capped(self):
        client = PlannerClient(port=1, backoff_base_s=1.0, backoff_cap_s=3.0,
                               jitter_fraction=0.5, retry_seed=4)
        waits = [client._backoff_s(k) for k in (1, 2, 3, 4)]
        assert waits == [PlannerClient(
            port=1, backoff_base_s=1.0, backoff_cap_s=3.0,
            jitter_fraction=0.5, retry_seed=4)._backoff_s(k)
            for k in (1, 2, 3, 4)]
        for k, wait in enumerate(waits, start=1):
            nominal = min(1.0 * 2 ** (k - 1), 3.0)
            assert 0.75 * nominal <= wait <= 1.25 * nominal

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValidationError):
            PlannerClient(max_attempts=0)


class TestSmoke:
    def test_start_request_metrics_shutdown(self):
        """The CI smoke sequence: start, one request, metrics, clean stop."""
        service = make_service()

        async def run():
            server = PlannerServer(service)
            await server.start()
            client = PlannerClient(port=server.port)
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                None, lambda: client.select(
                    "galaxy", n=65536, a=2000, deadline_hours=48,
                    budget_dollars=350))
            snapshot = await loop.run_in_executor(None, client.metrics)
            await server.stop()
            return response, snapshot

        response, snapshot = asyncio.run(run())
        assert response["result"]["feasible_count"] > 0
        assert snapshot["counters"]["requests_select"] == 1
