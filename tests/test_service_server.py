"""Tests for the HTTP front-end and client (:mod:`repro.service`).

The server runs on the test's own event loop; client calls are blocking
stdlib HTTP, so they run in an executor thread — exactly how a real
caller would hit a live service.
"""

import asyncio
import json

import pytest

from repro.cloud.catalog import make_catalog
from repro.errors import ReproError, ValidationError
from repro.service import (
    PlannerClient,
    PlannerServer,
    PlannerService,
    ServiceConfig,
    ServiceFaults,
    ServiceSaturatedError,
)

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]


def make_service(*, faults=None, **overrides) -> PlannerService:
    overrides.setdefault("default_quota", 2)
    overrides.setdefault("cache_dir", False)
    return PlannerService(
        config=ServiceConfig(**overrides),
        faults=faults,
        catalog_factory=lambda quota: make_catalog(ROWS, quota=quota),
    )


def with_server(service: PlannerService, fn):
    """Start the server, run blocking ``fn(client)`` in a thread, stop."""

    async def run():
        server = PlannerServer(service)
        await server.start()
        try:
            client = PlannerClient(port=server.port)
            return await asyncio.get_running_loop().run_in_executor(
                None, fn, client)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestEndpoints:
    def test_select_round_trip(self):
        service = make_service()

        def call(client):
            return client.select("galaxy", n=65536, a=2000,
                                 deadline_hours=48, budget_dollars=350)

        response = with_server(service, call)
        assert response["kind"] == "select"
        assert response["result"]["pareto_count"] > 0

    def test_http_response_matches_in_process_result(self):
        service = make_service()

        def call(client):
            return client.select("galaxy", n=65536, a=2000,
                                 deadline_hours=48, budget_dollars=350)

        http_response = with_server(service, call)
        direct = asyncio.run(service.select(
            "galaxy", 65536.0, 2000.0, 48.0, 350.0))
        assert http_response["result"] == direct["result"]

    def test_predict_and_plan(self):
        service = make_service()

        def call(client):
            predicted = client.predict("galaxy", n=65536, a=2000,
                                       configuration=[1, 1, 0])
            planned = client.plan("galaxy", deadline_hours=24,
                                  budget_dollars=50, fix_size=65536,
                                  knob_range=(100, 20000), integral=True)
            return predicted, planned

        predicted, planned = with_server(service, call)
        assert predicted["result"]["configuration"] == [1, 1, 0]
        assert planned["result"]["knob"] == "accuracy"

    def test_health_and_metrics(self):
        service = make_service()

        def call(client):
            client.select("galaxy", n=65536, a=2000, deadline_hours=48,
                          budget_dollars=350)
            return client.health(), client.metrics()

        health, metrics = with_server(service, call)
        assert health["status"] == "ok"
        assert health["warm_signatures"] == [
            {"app": "galaxy", "quota": 2, "seed": 0}]
        assert metrics["counters"]["requests_total"] == 1
        assert metrics["histograms"]["latency_select_s"]["count"] == 1


class TestErrorMapping:
    def test_unknown_app_is_invalid_request(self):
        def call(client):
            with pytest.raises(ValidationError):
                client.select("hadoop", n=1, a=1, deadline_hours=1,
                              budget_dollars=1)
            return True

        assert with_server(make_service(), call)

    def test_unknown_route_404(self):
        def call(client):
            with pytest.raises(ReproError):
                client._request("POST", "/v1/teleport", {})
            return True

        assert with_server(make_service(), call)

    def test_get_on_post_route_405(self):
        def call(client):
            with pytest.raises(ReproError):
                client._request("GET", "/v1/select")
            return True

        assert with_server(make_service(), call)

    def test_bad_json_body_400(self):
        def call(client):
            import http.client

            conn = http.client.HTTPConnection(client.host, client.port,
                                              timeout=10)
            conn.request("POST", "/v1/select", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
            conn.close()
            return response.status, body

        status, body = with_server(make_service(), call)
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_saturated_maps_to_typed_client_error(self):
        service = make_service(faults=ServiceFaults(compute_delay_s=0.4),
                               max_queue_depth=1, batch_window_s=0.0,
                               max_batch=1)

        async def run():
            server = PlannerServer(service)
            await server.start()
            try:
                await service.warm("galaxy")
                blocker = asyncio.create_task(service.select(
                    "galaxy", 65536.0, 2000.0, 48.0, 350.0))
                await asyncio.sleep(0.1)

                def overflow(client):
                    with pytest.raises(ServiceSaturatedError):
                        client.select("galaxy", n=65536, a=3000,
                                      deadline_hours=48, budget_dollars=350)
                    return True

                client = PlannerClient(port=server.port)
                rejected = await asyncio.get_running_loop().run_in_executor(
                    None, overflow, client)
                await blocker
                return rejected
            finally:
                await server.stop()

        assert asyncio.run(run())


class TestSmoke:
    def test_start_request_metrics_shutdown(self):
        """The CI smoke sequence: start, one request, metrics, clean stop."""
        service = make_service()

        async def run():
            server = PlannerServer(service)
            await server.start()
            client = PlannerClient(port=server.port)
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                None, lambda: client.select(
                    "galaxy", n=65536, a=2000, deadline_hours=48,
                    budget_dollars=350))
            snapshot = await loop.run_in_executor(None, client.metrics)
            await server.stop()
            return response, snapshot

        response, snapshot = asyncio.run(run())
        assert response["result"]["feasible_count"] > 0
        assert snapshot["counters"]["requests_select"] == 1
