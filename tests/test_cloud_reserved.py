"""Tests for reserved-instance pricing."""

import pytest

from repro.cloud.reserved import (
    YEAR_HOURS,
    ReservedOffering,
    standard_one_year_offering,
)
from repro.errors import ValidationError


@pytest.fixture()
def c4_large(ec2):
    return ec2.type_named("c4.large")


class TestReservedOffering:
    def test_effective_hourly_amortizes_upfront(self, c4_large):
        offer = ReservedOffering(itype=c4_large, upfront_dollars=100.0,
                                 hourly_dollars=0.06, term_hours=1000.0)
        assert offer.effective_hourly(1000.0) == pytest.approx(0.16)
        assert offer.effective_hourly(500.0) == pytest.approx(0.26)

    def test_breakeven_hours(self, c4_large):
        # margin = 0.105 - 0.063 = 0.042; breakeven = 42 / 0.042 = 1000 h.
        offer = ReservedOffering(itype=c4_large, upfront_dollars=42.0,
                                 hourly_dollars=0.063, term_hours=YEAR_HOURS)
        assert offer.breakeven_hours() == pytest.approx(1000.0)
        assert offer.breakeven_utilization() == pytest.approx(1000 / YEAR_HOURS)

    def test_breakeven_beyond_term_is_infinite(self, c4_large):
        offer = ReservedOffering(itype=c4_large, upfront_dollars=1e6,
                                 hourly_dollars=0.06, term_hours=100.0)
        assert offer.breakeven_hours() == float("inf")
        assert offer.breakeven_utilization() == float("inf")

    def test_saving_positive_above_breakeven(self, c4_large):
        offer = standard_one_year_offering(c4_large)
        breakeven = offer.breakeven_hours()
        assert offer.saving_fraction(breakeven * 1.5) > 0
        assert offer.saving_fraction(breakeven) == pytest.approx(0.0, abs=1e-9)
        assert offer.saving_fraction(breakeven * 0.5) < 0

    def test_full_utilization_saving_band(self, c4_large):
        """A standard 1-year contract at 100% utilization saves ~15-40%."""
        offer = standard_one_year_offering(c4_large)
        saving = offer.saving_fraction(YEAR_HOURS)
        assert 0.10 < saving < 0.45

    def test_must_discount(self, c4_large):
        with pytest.raises(ValidationError):
            ReservedOffering(itype=c4_large, upfront_dollars=0.0,
                             hourly_dollars=0.2, term_hours=100.0)

    def test_usage_bounds(self, c4_large):
        offer = standard_one_year_offering(c4_large)
        with pytest.raises(ValidationError):
            offer.effective_hourly(0.0)
        with pytest.raises(ValidationError):
            offer.effective_hourly(YEAR_HOURS + 1)

    def test_factory_validation(self, c4_large):
        with pytest.raises(ValidationError):
            standard_one_year_offering(c4_large, upfront_fraction=1.5)
        with pytest.raises(ValidationError):
            standard_one_year_offering(c4_large, hourly_discount=0.0)

    def test_celia_integration(self, c4_large, ec2, celia_ec2, galaxy):
        """Effective reserved rates slot into the cost model: re-pricing
        a catalog at reserved rates lowers every unit cost."""
        import numpy as np

        from repro.core.costmodel import configuration_unit_cost

        hours = YEAR_HOURS  # fully utilized reservations
        reserved_prices = np.array([
            standard_one_year_offering(t).effective_hourly(hours)
            for t in ec2
        ])
        config = np.array([5, 5, 5, 3, 0, 0, 0, 0, 0])
        od = configuration_unit_cost(config, ec2.prices)[0]
        rv = configuration_unit_cost(config, reserved_prices)[0]
        assert rv < od
