"""Tests for fixed-time scaling and deadline-tightening analyses."""

import numpy as np
import pytest

from repro.core.configspace import ConfigurationSpace
from repro.core.deadline import deadline_tightening_study
from repro.core.optimizer import MinCostIndex
from repro.core.scaling import fixed_time_scaling
from repro.errors import InfeasibleError, ValidationError


@pytest.fixture()
def index(small_catalog, small_capacities):
    evaluation = ConfigurationSpace(small_catalog).evaluate(small_capacities)
    return MinCostIndex(evaluation)


class TestFixedTimeScaling:
    def test_curve_structure(self, index):
        demands = np.array([1e4, 2e4, 4e4])
        values = np.array([1.0, 2.0, 4.0])
        curve = fixed_time_scaling(index, demands, values, 5.0,
                                   parameter_name="n")
        assert curve.parameter_name == "n"
        assert curve.costs.shape == (3,)
        assert all(c is not None for c in curve.configurations)

    def test_costs_track_demand_shape(self, index):
        """Linear demand within one 'category' -> near-linear cost."""
        demands = np.array([1e4, 2e4, 4e4])
        curve = fixed_time_scaling(index, demands, demands, 100.0)
        # Generous deadline: the cheapest ratio config is used throughout,
        # so cost is exactly proportional to demand.
        np.testing.assert_allclose(curve.costs / curve.costs[0],
                                   demands / demands[0], rtol=1e-9)

    def test_infeasible_points_marked(self, index):
        demands = np.array([1e4, 1e13])
        curve = fixed_time_scaling(index, demands, np.array([1.0, 2.0]), 1.0)
        assert np.isfinite(curve.costs[0])
        assert np.isinf(curve.costs[1])
        assert curve.configurations[1] is None
        np.testing.assert_array_equal(curve.feasible_mask(), [True, False])

    def test_mismatched_arrays_rejected(self, index):
        with pytest.raises(ValidationError):
            fixed_time_scaling(index, np.array([1.0]), np.array([1.0, 2.0]),
                               1.0)

    def test_spill_points_detect_new_category(self, index):
        demands = np.array([1e4, 2e4])
        curve = fixed_time_scaling(index, demands, np.array([1.0, 2.0]), 10.0)
        # Fabricate slices: treat each type as its own category.
        slices = [slice(0, 1), slice(1, 2), slice(2, 3)]
        spills = curve.spill_points(slices)
        assert isinstance(spills, list)

    def test_spill_points_empty_when_config_stable(self, index):
        demands = np.array([1e3, 1.1e3])
        curve = fixed_time_scaling(index, demands, np.array([1.0, 2.0]),
                                   100.0)
        slices = [slice(0, 3)]  # one category: no spill possible
        assert curve.spill_points(slices) == []

    def test_elasticity_unit_for_proportional_cost(self, index):
        demands = np.array([1e4, 2e4, 4e4])
        curve = fixed_time_scaling(index, demands, demands, 100.0)
        np.testing.assert_allclose(curve.cost_demand_elasticity(),
                                   1.0, rtol=1e-6)

    def test_elasticity_needs_two_points(self, index):
        curve = fixed_time_scaling(index, np.array([1e13]),
                                   np.array([1.0]), 0.1)
        with pytest.raises(ValidationError):
            curve.cost_demand_elasticity()


class TestDeadlineStudy:
    def test_costs_nonincreasing_in_deadline(self, index):
        study = deadline_tightening_study(index, 2e5, [1, 2, 4, 8, 16])
        finite = study.costs[np.isfinite(study.costs)]
        # deadlines_hours is sorted descending; costs ascend as we tighten.
        assert np.all(np.diff(finite) >= -1e-12)

    def test_tightening_pair(self, index):
        study = deadline_tightening_study(index, 2e5, [4, 8])
        reduction, increase = study.tightening(8, 4)
        assert reduction == pytest.approx(0.5)
        assert increase >= 0

    def test_tightening_requires_known_deadlines(self, index):
        study = deadline_tightening_study(index, 2e5, [4, 8])
        with pytest.raises(ValidationError):
            study.tightening(8, 3)
        with pytest.raises(ValidationError):
            study.tightening(2, 8)

    def test_infeasible_deadline_in_pair(self, index):
        study = deadline_tightening_study(index, 2e5, [0.0001, 8])
        assert np.isinf(study.costs[-1])
        with pytest.raises(InfeasibleError):
            study.tightening(8, 0.0001)

    def test_observation3_property_on_small_space(self, index):
        """Observation 3 holds by construction for the analytical model:
        cost ratio = (Cu'/U')/(Cu/U) while the deadline ratio is bounded
        by capacity growth; verify empirically here."""
        study = deadline_tightening_study(index, 3e5,
                                          [0.5, 1, 2, 4, 8, 16, 32])
        assert study.increase_always_smaller_than_reduction()

    def test_invalid_deadlines_rejected(self, index):
        with pytest.raises(ValidationError):
            deadline_tightening_study(index, 1e4, [0.0, 1.0])
