"""Fault-tolerance tests for the supervised space sweep.

Every scenario injects a deterministic failure through
:class:`repro.parallel.FaultPlan` and asserts the ISSUE's acceptance
property: the sweep completes and its output is *bit-identical* to the
serial evaluation — a SIGKILLed worker, a hung worker, or a straggler
must never change a byte of ``U_j`` / ``C_{j,u}``.

The supervisor knobs are shrunk so failure handling (backoff, heartbeat
timeout, straggler duplication) plays out in well under a second; the
``slow``-marked round-robin test scales the failure count through
``CELIA_FAULT_ROUNDS`` for the nightly job.
"""

import os

import numpy as np
import pytest

from repro.cloud.catalog import make_catalog
from repro.core.configspace import ConfigurationSpace
from repro.errors import ConfigurationError
from repro.parallel import (
    FaultPlan,
    SupervisorConfig,
    SweepError,
    WorkerFault,
    evaluate_resilient,
    missing_ranges,
    partition_ranges,
)

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]


def space_and_caps(quota=3):
    catalog = make_catalog(ROWS, quota=quota)
    return ConfigurationSpace(catalog), np.array([2.0, 4.2, 1.5])


def fast_config(**overrides) -> SupervisorConfig:
    """Supervisor knobs scaled for sub-second failure handling."""
    knobs = dict(poll_interval_s=0.02, backoff_base_s=0.01,
                 backoff_cap_s=0.05, shutdown_grace_s=0.5)
    knobs.update(overrides)
    return SupervisorConfig(**knobs)


def assert_bit_identical(space, caps, capacity, unit_cost, chunk_size):
    serial = space.evaluate(caps, chunk_size=chunk_size)
    assert serial.capacity_gips.tobytes() == capacity.tobytes()
    assert serial.unit_cost_per_hour.tobytes() == unit_cost.tobytes()


class TestWorkerFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerFault(0, "explode")

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerFault(-1, "kill")
        with pytest.raises(ConfigurationError):
            WorkerFault(0, "kill", at_span=-1)
        with pytest.raises(ConfigurationError):
            WorkerFault(0, "kill", at_chunk=-2)

    def test_slow_needs_positive_delay(self):
        with pytest.raises(ConfigurationError):
            WorkerFault(0, "slow", delay_s=0.0)


class TestFaultPlan:
    def test_none_is_empty(self):
        assert FaultPlan.none().faults == ()

    def test_constructors_target_one_worker(self):
        plan = FaultPlan.kill_worker(2, at_span=1, at_chunk=3)
        (fault,) = plan.faults
        assert (fault.worker_id, fault.kind) == (2, "kill")
        assert (fault.at_span, fault.at_chunk) == (1, 3)

    def test_plans_compose_and_filter(self):
        plan = FaultPlan.kill_worker(0) + FaultPlan.hang_worker(1) + \
            FaultPlan.slow_worker(0, 0.5)
        assert len(plan.faults) == 3
        assert {f.kind for f in plan.for_worker(0)} == {"kill", "slow"}
        assert plan.for_worker(9) == ()

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.kill_worker(1, at_span=2) + \
            FaultPlan.slow_worker(0, 1.5)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestCrashedWorker:
    def test_sigkill_mid_sweep_is_bit_identical(self):
        """The headline acceptance scenario: SIGKILL one worker mid-span."""
        space, caps = space_and_caps()
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4,
            faults=FaultPlan.kill_worker(0, at_span=0, at_chunk=1),
            config=fast_config())
        assert stats.workers_lost >= 1
        assert stats.retries >= 1
        assert stats.workers_spawned >= 3  # the victim was replaced
        assert_bit_identical(space, caps, capacity, unit_cost, 4)

    def test_multiple_kills_are_survived(self):
        space, caps = space_and_caps()
        plan = FaultPlan.kill_worker(0, at_chunk=1) + \
            FaultPlan.kill_worker(1, at_span=1)
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4, faults=plan,
            config=fast_config())
        assert stats.workers_lost >= 2
        assert_bit_identical(space, caps, capacity, unit_cost, 4)

    def test_retry_exhaustion_raises_sweep_error(self):
        """Every replacement dies on the same (single) span -> give up."""
        space, caps = space_and_caps()
        chunk = space.size + 10  # one span covering the whole space
        plan = FaultPlan.none()
        for worker_id in range(6):
            plan = plan + FaultPlan.kill_worker(worker_id)
        with pytest.raises(SweepError, match="giving up"):
            evaluate_resilient(
                space, caps, workers=1, chunk_size=chunk, faults=plan,
                config=fast_config(max_span_retries=2))


class TestHungWorker:
    def test_heartbeat_timeout_reaps_and_redispatches(self):
        space, caps = space_and_caps()
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4,
            faults=FaultPlan.hang_worker(0, at_span=0, at_chunk=1),
            config=fast_config(heartbeat_timeout_s=0.5))
        assert stats.workers_lost >= 1
        assert stats.retries >= 1
        assert_bit_identical(space, caps, capacity, unit_cost, 4)


class TestStraggler:
    def test_slow_span_is_duplicated_and_bit_identical(self):
        space, caps = space_and_caps()
        # Worker 0 needs ~3 s per chunk of its first span; the other
        # worker drains the rest of the queue in milliseconds and then
        # speculatively duplicates the laggard's span.
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4,
            faults=FaultPlan.slow_worker(0, 3.0),
            config=fast_config(straggler_min_s=0.15))
        assert stats.spans_duplicated >= 1
        assert_bit_identical(space, caps, capacity, unit_cost, 4)


class TestSupervisorConfig:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(heartbeat_timeout_s=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(poll_interval_s=-1)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(max_span_retries=-1)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(backoff_base_s=-0.1)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(straggler_factor=0.5)

    def test_workers_must_be_positive(self):
        space, caps = space_and_caps(quota=2)
        with pytest.raises(ConfigurationError):
            evaluate_resilient(space, caps, workers=0, chunk_size=4)

    def test_single_supervised_worker_is_bit_identical(self):
        space, caps = space_and_caps(quota=2)
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=1, chunk_size=8, config=fast_config())
        assert stats.workers_lost == 0
        assert stats.spans_evaluated == stats.spans_total
        assert_bit_identical(space, caps, capacity, unit_cost, 8)


class TestPartitionHelpers:
    def test_missing_ranges_merges_and_complements(self):
        assert missing_ranges([], 10) == [(1, 11)]
        assert missing_ranges([(1, 11)], 10) == []
        assert missing_ranges([(1, 4), (4, 7)], 10) == [(7, 11)]
        assert missing_ranges([(4, 7)], 10) == [(1, 4), (7, 11)]
        # Overlaps and duplicates collapse.
        assert missing_ranges([(1, 5), (3, 7), (3, 7)], 10) == [(7, 11)]

    def test_partition_ranges_respects_grid_and_boundaries(self):
        assert partition_ranges([(1, 9), (13, 18)], 4, 2) == \
            [(1, 9), (13, 18)]
        spans = partition_ranges([(1, 9), (13, 18)], 4, 4)
        assert spans == [(1, 5), (5, 9), (13, 17), (17, 18)]
        for start, _ in spans:
            assert (start - 1) % 4 == 0

    def test_partition_ranges_rejects_off_grid_starts(self):
        with pytest.raises(ConfigurationError):
            partition_ranges([(2, 9)], 4, 2)
        with pytest.raises(ConfigurationError):
            partition_ranges([(5, 5)], 4, 2)

    def test_partition_ranges_empty_input(self):
        assert partition_ranges([], 4, 2) == []


@pytest.mark.slow
class TestFaultRounds:
    """Nightly-scale fault sweep: many failures, still bit-identical.

    ``CELIA_FAULT_ROUNDS`` (default 3) sets how many workers are killed,
    one per leased span, over a quota-4 space; the nightly workflow
    raises it to exercise longer retry/respawn chains.
    """

    def test_round_robin_kills_stay_bit_identical(self):
        rounds = int(os.environ.get("CELIA_FAULT_ROUNDS", "3"))
        space, caps = space_and_caps(quota=4)  # 124 configurations
        plan = FaultPlan.none()
        for worker_id in range(rounds):
            plan = plan + FaultPlan.kill_worker(worker_id, at_chunk=1)
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=4, faults=plan,
            config=fast_config())
        assert stats.workers_lost >= min(rounds, stats.workers_spawned)
        assert_bit_identical(space, caps, capacity, unit_cost, 4)
