"""Client-side resilience: circuit breaker, retry budget, Retry-After.

Unit tests drive :mod:`repro.service.resilience` with a fake clock;
integration tests script ``PlannerClient._request_once`` (no sockets)
and assert the request loop honors the three amplification bounds:
shed hints pace the retry, the budget caps retries, and the breaker
fails fast after consecutive dead cycles.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    FleetOverloadedError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.service.client import PlannerClient
from repro.service.planner import ServiceSaturatedError
from repro.service.resilience import CircuitBreaker, RetryBudget


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, clock, **overrides):
        defaults = dict(failure_threshold=3, reset_timeout_s=10.0,
                        clock=clock)
        defaults.update(overrides)
        return CircuitBreaker(**defaults)

    def test_stays_closed_below_threshold(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold_and_refuses(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.remaining_s() == pytest.approx(10.0)

    def test_success_resets_the_consecutive_count(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe slot
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # everyone else waits for the verdict

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_timeout(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert not breaker.allow()  # timeout restarted at probe failure
        clock.advance(5.0)
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout_s=0.0)


class TestRetryBudget:
    def test_spend_draws_down_initial_funding(self):
        budget = RetryBudget(ratio=0.1, initial=2.0)
        assert budget.spend()
        assert budget.spend()
        assert not budget.spend()  # dry

    def test_deposits_refund_the_bucket(self):
        budget = RetryBudget(ratio=0.5, initial=0.0)
        assert not budget.spend()
        for _ in range(2):
            budget.deposit()
        assert budget.spend()

    def test_cap_bounds_the_bucket(self):
        budget = RetryBudget(ratio=1.0, initial=0.0, cap=3.0)
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == 3.0

    def test_ratio_bounds_retry_fraction_under_outage(self):
        """1000 failing requests with ratio 0.1 get ~100 retries, not
        1000 * (max_attempts - 1)."""
        budget = RetryBudget(ratio=0.1, initial=0.0)
        granted = 0
        for _ in range(1000):
            budget.deposit()
            if budget.spend():
                granted += 1
        assert 90 <= granted <= 110

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryBudget(ratio=0.0)
        with pytest.raises(ValidationError):
            RetryBudget(cap=0.0)


def make_client(outcomes, *, sleeps=None, **overrides):
    """A client whose ``_request_once`` replays ``outcomes``.

    Each outcome is an exception instance (raised) or a dict
    (returned); sleeps are recorded instead of slept.
    """
    defaults = dict(max_attempts=3, retry_seed=7)
    if sleeps is not None:
        defaults["sleep"] = sleeps.append
    defaults.update(overrides)
    client = PlannerClient("127.0.0.1", 1, **defaults)
    script = list(outcomes)
    calls = {"n": 0}

    def fake_request_once(method, path, body=None):
        calls["n"] += 1
        outcome = script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_once = fake_request_once
    client._calls = calls
    return client


def shed_error(retry_after_s=2.0):
    exc = FleetOverloadedError("worker w0 at in-flight cap 4")
    exc.retry_after_s = retry_after_s
    return exc


class TestRetryAfterHonored:
    def test_shed_hint_floors_the_backoff(self):
        sleeps = []
        client = make_client([shed_error(2.0), {"ok": True}],
                             sleeps=sleeps)
        assert client._request("POST", "/v1/select", {}) == {"ok": True}
        assert sleeps == [client._retry_delay_s(1, shed_error(2.0))]
        # The hint (2s) dominates the small exponential base (50ms).
        assert sleeps[0] >= 2.0 * (1 - client.jitter_fraction / 2)
        assert sleeps[0] > client._backoff_s(1)

    def test_hinted_delay_is_deterministic(self):
        def run():
            sleeps = []
            client = make_client([shed_error(), shed_error(),
                                  {"ok": True}], sleeps=sleeps)
            client._request("POST", "/v1/select", {})
            return sleeps

        assert run() == run()

    def test_backoff_without_hint_is_unchanged(self):
        sleeps = []
        client = make_client(
            [ServiceUnavailableError("draining", attempts=1),
             {"ok": True}], sleeps=sleeps)
        client._request("POST", "/v1/select", {})
        assert sleeps == [client._backoff_s(1)]

    def test_large_backoff_still_wins_over_small_hint(self):
        sleeps = []
        client = make_client([shed_error(0.001), {"ok": True}],
                             sleeps=sleeps, backoff_base_s=1.0)
        client._request("POST", "/v1/select", {})
        assert sleeps[0] >= 1.0 * (1 - client.jitter_fraction / 2)


class TestClientRetryBudget:
    def test_dry_budget_stops_retries(self):
        sleeps = []
        client = make_client([shed_error()] * 3, sleeps=sleeps,
                             max_attempts=3, retry_budget_ratio=0.1,
                             retry_budget_initial=1.0)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client._request("POST", "/v1/select", {})
        # initial=1 token: first retry granted, second refused.
        assert client._calls["n"] == 2
        assert excinfo.value.attempts == 2
        assert "retry budget exhausted" in str(excinfo.value)
        assert len(sleeps) == 1

    def test_healthy_traffic_replenishes_budget(self):
        client = make_client([{"ok": True}] * 20 + [shed_error(),
                                                    {"ok": True}],
                             retry_budget_ratio=0.1,
                             retry_budget_initial=0.0)
        for _ in range(20):
            client._request("GET", "/healthz")
        # 20 deposits at 0.1 = 2 tokens: the retry is affordable.
        assert client._request("POST", "/v1/select", {}) == {"ok": True}

    def test_zero_ratio_disables_the_budget(self):
        client = make_client([shed_error(), {"ok": True}],
                             retry_budget_ratio=0.0)
        assert client.retry_budget is None
        assert client._request("POST", "/v1/select", {}) == {"ok": True}


class TestClientCircuitBreaker:
    def make_failing_client(self, cycles, clock, **overrides):
        """Each cycle = max_attempts transient failures (one request)."""
        defaults = dict(max_attempts=2, breaker_failures=2,
                        breaker_reset_s=10.0, clock=clock,
                        retry_budget_initial=100.0)
        defaults.update(overrides)
        return make_client([ConnectionError("refused")] * cycles * 2,
                           **defaults)

    def test_opens_after_consecutive_failed_cycles(self):
        clock = FakeClock()
        client = self.make_failing_client(2, clock)
        for _ in range(2):
            with pytest.raises(ServiceUnavailableError):
                client._request("POST", "/v1/select", {})
        with pytest.raises(CircuitOpenError) as excinfo:
            client._request("POST", "/v1/select", {})
        # The breaker fails locally: no further transport attempts.
        assert client._calls["n"] == 4
        assert excinfo.value.retry_after_s == pytest.approx(10.0)

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        client = make_client(
            [ConnectionError("refused")] * 4 + [{"ok": True}] * 2,
            max_attempts=2, breaker_failures=2, breaker_reset_s=10.0,
            clock=clock, retry_budget_initial=100.0)
        for _ in range(2):
            with pytest.raises(ServiceUnavailableError):
                client._request("POST", "/v1/select", {})
        clock.advance(10.0)
        assert client._request("POST", "/v1/select", {}) == {"ok": True}
        assert client.breaker.state == CircuitBreaker.CLOSED
        assert client._request("POST", "/v1/select", {}) == {"ok": True}

    def test_definitive_errors_count_as_service_alive(self):
        clock = FakeClock()
        client = make_client(
            [ValidationError("bad app")] * 5, max_attempts=2,
            breaker_failures=2, clock=clock)
        for _ in range(5):
            with pytest.raises(ValidationError):
                client._request("POST", "/v1/select", {})
        assert client.breaker.state == CircuitBreaker.CLOSED

    def test_zero_threshold_disables_the_breaker(self):
        client = make_client([ConnectionError("x")] * 10,
                             max_attempts=1, breaker_failures=0)
        assert client.breaker is None
        for _ in range(10):
            with pytest.raises(ServiceUnavailableError):
                client._request("POST", "/v1/select", {})

    def test_saturated_retry_path_still_surfaces_typed_original(self):
        """The pre-existing max_attempts=1 contract survives the new
        machinery: the typed 503 comes through, not a wrapper."""
        client = make_client(
            [ServiceSaturatedError("full", queue_depth=9,
                                   max_queue_depth=8)], max_attempts=1)
        with pytest.raises(ServiceSaturatedError):
            client._request("POST", "/v1/select", {})
