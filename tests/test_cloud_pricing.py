"""Tests for billing models and the spot-price process."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.pricing import (
    HourlyQuantizedBilling,
    LinearBilling,
    PerSecondBilling,
    SpotPriceProcess,
)
from repro.errors import ValidationError


class TestLinearBilling:
    def test_proportional(self):
        assert LinearBilling().amount_due(0.5, 3.0) == pytest.approx(1.5)

    def test_zero_uptime_free(self):
        assert LinearBilling().amount_due(0.5, 0.0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValidationError):
            LinearBilling().amount_due(-1, 1)
        with pytest.raises(ValidationError):
            LinearBilling().amount_due(1, -1)


class TestHourlyQuantizedBilling:
    def test_rounds_up(self):
        assert HourlyQuantizedBilling().amount_due(0.105, 2.1) == \
            pytest.approx(0.105 * 3)

    def test_exact_hours_not_inflated(self):
        assert HourlyQuantizedBilling().amount_due(0.105, 2.0) == \
            pytest.approx(0.105 * 2)

    def test_minimum_one_hour(self):
        assert HourlyQuantizedBilling().amount_due(0.105, 0.01) == \
            pytest.approx(0.105)

    def test_zero_uptime_free(self):
        assert HourlyQuantizedBilling().amount_due(0.105, 0.0) == 0.0

    @given(st.floats(0.01, 10.0), st.floats(0.001, 100.0))
    def test_never_cheaper_than_linear(self, price, uptime):
        quantized = HourlyQuantizedBilling().amount_due(price, uptime)
        linear = LinearBilling().amount_due(price, uptime)
        assert quantized >= linear - 1e-12
        # ...and never more than one extra hour.
        assert quantized <= linear + price + 1e-12


class TestPerSecondBilling:
    def test_minimum_charge(self):
        billing = PerSecondBilling(minimum_seconds=60)
        assert billing.amount_due(3.6, 1 / 3600) == pytest.approx(3.6 * 60 / 3600)

    def test_rounds_to_seconds(self):
        billing = PerSecondBilling(minimum_seconds=0)
        assert billing.amount_due(3600.0, 0.5) == pytest.approx(3600.0 * 0.5)

    def test_much_closer_to_linear_than_hourly(self):
        price, uptime = 0.419, 5.4
        linear = LinearBilling().amount_due(price, uptime)
        per_second = PerSecondBilling().amount_due(price, uptime)
        hourly = HourlyQuantizedBilling().amount_due(price, uptime)
        assert abs(per_second - linear) < abs(hourly - linear)

    def test_negative_minimum_rejected(self):
        with pytest.raises(ValidationError):
            PerSecondBilling(minimum_seconds=-1)


class TestSpotPriceProcess:
    def test_path_properties(self):
        process = SpotPriceProcess(on_demand_price=0.419)
        rng = np.random.default_rng(0)
        path = process.sample_path(hours=24, step_hours=0.25, rng=rng)
        assert path.shape[0] == 24 * 4 + 1
        assert np.all(path >= process.floor)

    def test_mean_reversion(self):
        process = SpotPriceProcess(on_demand_price=1.0, sigma=0.02)
        rng = np.random.default_rng(1)
        path = process.sample_path(hours=200, step_hours=0.5, rng=rng)
        assert abs(path.mean() - process.mean_price) < 0.1

    def test_zero_sigma_is_deterministic(self):
        process = SpotPriceProcess(on_demand_price=1.0, sigma=0.0)
        rng = np.random.default_rng(2)
        path = process.sample_path(hours=10, step_hours=1.0, rng=rng)
        np.testing.assert_allclose(path, process.mean_price)

    def test_interruption_detection(self):
        process = SpotPriceProcess(on_demand_price=1.0)
        path = np.array([0.3, 0.4, 0.6, 0.4])
        hour = process.first_interruption_hour(path, step_hours=1.0,
                                               bid_price=0.5)
        assert hour == 2.0

    def test_no_interruption(self):
        process = SpotPriceProcess(on_demand_price=1.0)
        path = np.array([0.3, 0.4])
        assert process.first_interruption_hour(path, 1.0, 0.5) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SpotPriceProcess(on_demand_price=0.0)
        with pytest.raises(ValidationError):
            SpotPriceProcess(on_demand_price=1.0, mean_fraction=1.5)
        with pytest.raises(ValidationError):
            SpotPriceProcess(on_demand_price=1.0, theta=0.0)

    def test_floor_fraction_validated(self):
        with pytest.raises(ValidationError, match="floor_fraction"):
            SpotPriceProcess(on_demand_price=1.0, floor_fraction=-0.1)
        with pytest.raises(ValidationError, match="floor_fraction"):
            # The floor cannot sit above the long-run mean.
            SpotPriceProcess(on_demand_price=1.0, mean_fraction=0.35,
                             floor_fraction=0.4)

    def test_floor_fraction_boundary_accepted(self):
        process = SpotPriceProcess(on_demand_price=1.0, mean_fraction=0.35,
                                   floor_fraction=0.35)
        assert process.floor == pytest.approx(0.35 * process.mean_price)
        path = process.sample_path(10, 1.0, np.random.default_rng(3))
        assert np.all(path >= process.floor)
        assert SpotPriceProcess(on_demand_price=1.0,
                                floor_fraction=0.0).floor == 0.0

    def test_invalid_path_request(self):
        process = SpotPriceProcess(on_demand_price=1.0)
        with pytest.raises(ValidationError):
            process.sample_path(0, 1, np.random.default_rng(0))
