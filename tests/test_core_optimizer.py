"""Tests for the min-cost / min-time query indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import make_catalog
from repro.core.configspace import ConfigurationSpace
from repro.core.optimizer import MinCostIndex, MinTimeIndex
from repro.errors import InfeasibleError, ValidationError
from tests.conftest import brute_force_space


def brute_force_min_cost(catalog, capacities, demand, deadline):
    configs = brute_force_space(catalog)
    capacity = configs @ capacities
    unit_cost = configs @ catalog.prices
    times = demand / capacity / 3600.0
    costs = times * unit_cost
    ok = times <= deadline
    if not ok.any():
        return None
    return float(costs[ok].min())


def brute_force_min_time(catalog, capacities, demand, budget):
    configs = brute_force_space(catalog)
    capacity = configs @ capacities
    unit_cost = configs @ catalog.prices
    times = demand / capacity / 3600.0
    costs = times * unit_cost
    ok = costs <= budget
    if not ok.any():
        return None
    return float(times[ok].min())


@pytest.fixture()
def evaluation(small_catalog, small_capacities):
    return ConfigurationSpace(small_catalog).evaluate(small_capacities)


class TestMinCostIndex:
    def test_matches_brute_force(self, small_catalog, small_capacities,
                                 evaluation):
        index = MinCostIndex(evaluation)
        for demand in (1e4, 1e5, 3e5):
            for deadline in (1.0, 5.0, 24.0):
                expected = brute_force_min_cost(
                    small_catalog, small_capacities, demand, deadline)
                if expected is None:
                    with pytest.raises(InfeasibleError):
                        index.query(demand, deadline)
                else:
                    answer = index.query(demand, deadline)
                    assert answer.cost_dollars == pytest.approx(expected)
                    assert answer.time_hours <= deadline * (1 + 1e-12)

    def test_answer_configuration_consistent(self, small_capacities,
                                             small_catalog, evaluation):
        index = MinCostIndex(evaluation)
        answer = index.query(1e5, 5.0)
        config = np.asarray(answer.configuration)
        assert float(config @ small_capacities) == pytest.approx(
            answer.capacity_gips)
        assert float(config @ small_catalog.prices) == pytest.approx(
            answer.unit_cost_per_hour)

    def test_budget_guard(self, evaluation):
        index = MinCostIndex(evaluation)
        answer = index.query(1e5, 5.0)
        with pytest.raises(InfeasibleError):
            index.query(1e5, 5.0, budget_dollars=answer.cost_dollars / 2)

    def test_sweep_matches_query(self, evaluation):
        index = MinCostIndex(evaluation)
        demands = np.array([1e4, 5e4, 2e5])
        costs = index.sweep(demands, 5.0)
        for d, c in zip(demands, costs):
            if np.isfinite(c):
                assert c == pytest.approx(index.query(float(d), 5.0).cost_dollars)
            else:
                with pytest.raises(InfeasibleError):
                    index.query(float(d), 5.0)

    def test_sweep_infeasible_is_inf(self, evaluation):
        index = MinCostIndex(evaluation)
        costs = index.sweep(np.array([1e12]), 0.01)
        assert np.isinf(costs[0])

    def test_invalid_inputs(self, evaluation):
        index = MinCostIndex(evaluation)
        with pytest.raises(ValidationError):
            index.query(0.0, 1.0)
        with pytest.raises(ValidationError):
            index.sweep(np.array([0.0]), 1.0)

    def test_cost_nonincreasing_in_deadline(self, evaluation):
        """Relaxing the deadline can never raise the optimum."""
        index = MinCostIndex(evaluation)
        prev = np.inf
        for deadline in (0.5, 1.0, 2.0, 8.0, 64.0):
            try:
                cost = index.query(2e5, deadline).cost_dollars
            except InfeasibleError:
                continue
            assert cost <= prev + 1e-12
            prev = cost

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.5, 8.0), min_size=2, max_size=4),
        st.floats(1e3, 1e7),
        st.floats(0.2, 100.0),
    )
    def test_random_spaces(self, rates, demand, deadline):
        rows = [(f"t{k}", 2, 2.0, 0.05 + 0.07 * k) for k in range(len(rates))]
        catalog = make_catalog(rows, quota=2)
        capacities = np.asarray(rates)
        evaluation = ConfigurationSpace(catalog).evaluate(capacities)
        index = MinCostIndex(evaluation)
        expected = brute_force_min_cost(catalog, capacities, demand, deadline)
        if expected is None:
            with pytest.raises(InfeasibleError):
                index.query(demand, deadline)
        else:
            assert index.query(demand, deadline).cost_dollars == \
                pytest.approx(expected, rel=1e-9)


class TestMinTimeIndex:
    def test_matches_brute_force(self, small_catalog, small_capacities,
                                 evaluation):
        index = MinTimeIndex(evaluation)
        for demand in (1e4, 1e5, 3e5):
            for budget in (0.05, 1.0, 50.0):
                expected = brute_force_min_time(
                    small_catalog, small_capacities, demand, budget)
                if expected is None:
                    with pytest.raises(InfeasibleError):
                        index.query(demand, budget)
                else:
                    answer = index.query(demand, budget)
                    assert answer.time_hours == pytest.approx(expected)
                    assert answer.cost_dollars <= budget * (1 + 1e-12)

    def test_deadline_guard(self, evaluation):
        index = MinTimeIndex(evaluation)
        answer = index.query(1e5, 50.0)
        with pytest.raises(InfeasibleError):
            index.query(1e5, 50.0, deadline_hours=answer.time_hours / 2)

    def test_time_nonincreasing_in_budget(self, evaluation):
        index = MinTimeIndex(evaluation)
        prev = np.inf
        for budget in (0.02, 0.1, 1.0, 10.0):
            try:
                t = index.query(2e5, budget).time_hours
            except InfeasibleError:
                continue
            assert t <= prev + 1e-12
            prev = t

    def test_invalid_inputs(self, evaluation):
        index = MinTimeIndex(evaluation)
        with pytest.raises(ValidationError):
            index.query(1.0, 0.0)
