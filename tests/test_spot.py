"""Tests for the spot-market execution subsystem."""

import numpy as np
import pytest

from repro.core.optimizer import OptimizerAnswer
from repro.errors import ValidationError
from repro.spot.checkpoint import CheckpointPolicy
from repro.spot.comparison import compare_spot_vs_ondemand
from repro.spot.execution import SpotRunConfig, simulate_spot_run


class TestCheckpointPolicy:
    def test_overhead_factor(self):
        policy = CheckpointPolicy(interval_hours=1.0,
                                  checkpoint_cost_hours=0.1)
        assert policy.overhead_factor() == pytest.approx(1.1)

    def test_progress_quantized_to_checkpoints(self):
        policy = CheckpointPolicy(interval_hours=2.0)
        assert policy.progress_after(0.5) == 0.0
        assert policy.progress_after(2.0) == 2.0
        assert policy.progress_after(5.9) == 4.0

    def test_young_interval(self):
        policy = CheckpointPolicy.young(8.0, checkpoint_cost_hours=0.05)
        assert policy.interval_hours == pytest.approx((2 * 0.05 * 8) ** 0.5)

    def test_young_shorter_for_flakier_markets(self):
        flaky = CheckpointPolicy.young(1.0)
        stable = CheckpointPolicy.young(100.0)
        assert flaky.interval_hours < stable.interval_hours

    def test_none_policy(self):
        policy = CheckpointPolicy.none()
        assert policy.overhead_factor() == pytest.approx(1.0)
        assert policy.progress_after(500.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=0.0)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, checkpoint_cost_hours=-1)
        with pytest.raises(ValidationError):
            CheckpointPolicy.young(0.0)


def make_run(ec2, *, bid=0.5, demand=1e5, policy=None) -> SpotRunConfig:
    config = (2, 0, 0, 0, 0, 0, 0, 0, 0)
    return SpotRunConfig(
        configuration=config,
        capacity_gips=20.0,
        demand_gi=demand,
        bid_fraction=bid,
        policy=policy or CheckpointPolicy.young(8.0),
    )


class TestSpotExecution:
    def test_completes_and_accounts(self, ec2):
        outcome = simulate_spot_run(make_run(ec2), ec2, seed=0)
        assert outcome.completed
        assert outcome.cost_dollars > 0
        assert outcome.useful_hours > 0
        assert 0 < outcome.efficiency <= 1.0

    def test_cheaper_than_ondemand_rate(self, ec2):
        """Paid at spot prices, the run costs well below on-demand."""
        outcome = simulate_spot_run(make_run(ec2), ec2, seed=1)
        config = np.array(make_run(ec2).configuration)
        od_rate = float(config @ ec2.prices)
        od_cost = od_rate * outcome.elapsed_hours
        assert outcome.cost_dollars < od_cost

    def test_higher_bid_fewer_interruptions(self, ec2):
        """A bid at 100% of on-demand is never outbid by this process."""
        demand = 3e5
        low = [simulate_spot_run(make_run(ec2, bid=0.40, demand=demand),
                                 ec2, seed=s).interruptions
               for s in range(8)]
        high = [simulate_spot_run(make_run(ec2, bid=1.0, demand=demand),
                                  ec2, seed=s).interruptions
                for s in range(8)]
        assert np.mean(high) <= np.mean(low)

    def test_elapsed_at_least_ideal(self, ec2):
        run = make_run(ec2)
        outcome = simulate_spot_run(run, ec2, seed=2)
        ideal_hours = run.demand_gi / run.capacity_gips / 3600.0
        assert outcome.elapsed_hours >= ideal_hours * 0.99

    def test_horizon_exhaustion(self, ec2):
        run = SpotRunConfig(
            configuration=(2, 0, 0, 0, 0, 0, 0, 0, 0),
            capacity_gips=20.0,
            demand_gi=1e5,
            bid_fraction=0.5,
            policy=CheckpointPolicy.young(8.0),
            horizon_hours=0.5,
        )
        outcome = simulate_spot_run(run, ec2, seed=0)
        assert not outcome.completed
        assert outcome.elapsed_hours == 0.5

    def test_deterministic(self, ec2):
        a = simulate_spot_run(make_run(ec2), ec2, seed=9)
        b = simulate_spot_run(make_run(ec2), ec2, seed=9)
        assert a.cost_dollars == b.cost_dollars
        assert a.elapsed_hours == b.elapsed_hours

    def test_validation(self, ec2):
        with pytest.raises(ValidationError):
            SpotRunConfig(configuration=(1,) * 9, capacity_gips=0.0,
                          demand_gi=1.0, bid_fraction=0.5,
                          policy=CheckpointPolicy.young(8.0))
        with pytest.raises(ValidationError):
            SpotRunConfig(configuration=(1,) * 9, capacity_gips=1.0,
                          demand_gi=1.0, bid_fraction=1.5,
                          policy=CheckpointPolicy.young(8.0))
        run = make_run(ec2)
        bad = SpotRunConfig(
            configuration=(0,) * 9, capacity_gips=run.capacity_gips,
            demand_gi=run.demand_gi, bid_fraction=0.5, policy=run.policy)
        with pytest.raises(ValidationError):
            simulate_spot_run(bad, ec2, seed=0)


class TestSpotComparison:
    def make_answer(self) -> OptimizerAnswer:
        return OptimizerAnswer(
            configuration=(2, 0, 0, 0, 0, 0, 0, 0, 0),
            time_hours=10.0,
            cost_dollars=8.38,
            capacity_gips=20.0,
            unit_cost_per_hour=0.838,
        )

    def test_study_fields(self, ec2):
        study = compare_spot_vs_ondemand(
            self.make_answer(), demand_gi=7.2e5, catalog=ec2,
            deadline_hours=24.0, trials=10, seed=0)
        assert study.trials == 10
        assert 0 <= study.on_time_probability <= 1
        assert study.mean_cost > 0
        assert study.p95_elapsed_hours >= study.mean_elapsed_hours * 0.9

    def test_spot_saves_money_on_average(self, ec2):
        study = compare_spot_vs_ondemand(
            self.make_answer(), demand_gi=7.2e5, catalog=ec2,
            deadline_hours=1000.0, trials=10, seed=1)
        assert study.mean_saving_fraction > 0.2

    def test_spot_cannot_guarantee_tight_deadlines(self, ec2):
        """The paper's argument for on-demand: with the deadline equal
        to the deterministic on-demand time, spot misses sometimes."""
        answer = self.make_answer()
        study = compare_spot_vs_ondemand(
            answer, demand_gi=7.2e5, catalog=ec2,
            deadline_hours=answer.time_hours, trials=15, seed=2)
        assert study.on_time_probability < 1.0

    def test_render(self, ec2):
        study = compare_spot_vs_ondemand(
            self.make_answer(), demand_gi=7.2e5, catalog=ec2,
            deadline_hours=24.0, trials=5, seed=0)
        text = study.render()
        assert "spot vs on-demand" in text
        assert "on-time" in text

    def test_validation(self, ec2):
        with pytest.raises(ValidationError):
            compare_spot_vs_ondemand(self.make_answer(), 7.2e5, ec2,
                                     24.0, trials=0)
