"""Tests for :mod:`repro.loadgen` — generator, replayer, report, capacity.

The determinism tests are the heart: a trace must be byte-identical for
the same seed (including across a fresh interpreter), and a replay
report must not depend on the concurrency interleaving that produced its
observations.  The e2e tests replay short traces against a real
in-process :class:`~repro.service.PlannerServer` on a tiny catalog.
"""

import asyncio
import json
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import EvaluationCache
from repro.cloud.catalog import make_catalog
from repro.errors import ValidationError
from repro.loadgen import (
    APP_ENVELOPES,
    ReplayReport,
    Trace,
    TraceRequest,
    WorkloadConfig,
    check_invariants,
    generate_trace,
    merge_sorted,
    prewarm,
    replay_trace,
    tenant_mix,
)
from repro.loadgen.replay import Observation, ReplayResult
from repro.obs.metrics import MetricsRegistry, group_by_label, parse_series
from repro.service import PlannerServer, PlannerService, ServiceConfig

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]

SMALL = WorkloadConfig(tenants=3, duration_s=4.0, mean_rps=6.0, seed=11,
                       name="small")


def make_service(**overrides) -> PlannerService:
    overrides.setdefault("default_quota", 2)
    overrides.setdefault("cache_dir", False)
    return PlannerService(
        config=ServiceConfig(**overrides),
        catalog_factory=lambda quota: make_catalog(ROWS, quota=quota),
    )


# ---------------------------------------------------------------------------
# generator determinism
# ---------------------------------------------------------------------------


class TestGeneratorDeterminism:
    def test_same_seed_byte_identical(self):
        assert (generate_trace(SMALL).to_jsonl()
                == generate_trace(SMALL).to_jsonl())

    def test_different_seed_differs(self):
        other = WorkloadConfig(tenants=3, duration_s=4.0, mean_rps=6.0,
                               seed=12, name="small")
        assert generate_trace(SMALL).to_jsonl() != generate_trace(other).to_jsonl()

    def test_byte_identical_across_processes(self):
        """A fresh interpreter reproduces the exact same bytes."""
        script = (
            "from repro.loadgen import WorkloadConfig, generate_trace\n"
            "import sys\n"
            "cfg = WorkloadConfig(tenants=3, duration_s=4.0, mean_rps=6.0,"
            " seed=11, name='small')\n"
            "sys.stdout.write(generate_trace(cfg).to_jsonl())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True)
        assert out.stdout == generate_trace(SMALL).to_jsonl()

    def test_trace_name_does_not_feed_rng(self):
        """Renaming a trace must not perturb any stochastic choice."""
        renamed = WorkloadConfig(tenants=3, duration_s=4.0, mean_rps=6.0,
                                 seed=11, name="renamed")
        a = generate_trace(SMALL)
        b = generate_trace(renamed)
        assert [r.to_dict() for r in a.requests] == \
            [r.to_dict() for r in b.requests]

    def test_tenant_streams_are_independent(self):
        """Equal-rate tenants still draw from distinct keyed streams."""
        cfg = WorkloadConfig(tenants=2, duration_s=10.0, mean_rps=8.0,
                             seed=4, tenant_skew=0.0, apps=("x264",))
        trace = generate_trace(cfg)
        by_tenant = {}
        for req in trace.requests:
            by_tenant.setdefault(req.tenant, []).append(req.arrival_s)
        assert set(by_tenant) == {"t00", "t01"}
        assert by_tenant["t00"] != by_tenant["t01"]

    def test_demand_points_respect_envelope_and_integrality(self):
        trace = generate_trace(WorkloadConfig(
            tenants=6, duration_s=6.0, mean_rps=20.0, seed=3))
        assert trace.requests, "trace unexpectedly empty"
        for req in trace.requests:
            n_lo, n_hi, a_lo, a_hi = APP_ENVELOPES[req.app]
            assert n_lo <= req.n <= max(n_hi, round(n_hi))
            assert a_lo <= req.a <= max(a_hi, round(a_hi))
            if req.app in ("x264", "galaxy", "sand"):
                assert req.n == round(req.n)
            if req.app == "galaxy":
                assert req.a == round(req.a)
                assert req.a >= 1

    def test_arrivals_sorted_and_ids_dense(self):
        trace = generate_trace(SMALL)
        arrivals = [r.arrival_s for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in trace.requests] == list(
            range(len(trace.requests)))
        assert all(0.0 <= a < trace.duration_s for a in arrivals)

    def test_tenant_mix_round_robin_and_zipf(self):
        profiles = tenant_mix(WorkloadConfig(tenants=4, seed=0))
        assert [p.app for p in profiles] == [
            "galaxy", "x264", "sand", "galaxy"]
        rates = [p.request_rate_per_s for p in profiles]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > rates[-1]
        assert abs(sum(rates) - 20.0) < 1e-9

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_seed_determinism(self, seed):
        cfg = WorkloadConfig(tenants=2, duration_s=2.0, mean_rps=4.0,
                             seed=seed)
        assert generate_trace(cfg).to_jsonl() == generate_trace(cfg).to_jsonl()

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(tenants=0)
        with pytest.raises(ValidationError):
            WorkloadConfig(mean_rps=0.0)
        with pytest.raises(ValidationError):
            WorkloadConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValidationError):
            WorkloadConfig(think_alpha=1.0)
        with pytest.raises(ValidationError):
            WorkloadConfig(apps=("hadoop",))


# ---------------------------------------------------------------------------
# trace container
# ---------------------------------------------------------------------------


class TestTrace:
    def test_jsonl_round_trip(self):
        trace = generate_trace(SMALL)
        again = Trace.from_jsonl(trace.to_jsonl())
        assert again == trace
        assert again.to_jsonl() == trace.to_jsonl()

    def test_write_read(self, tmp_path):
        trace = generate_trace(SMALL)
        path = trace.write(tmp_path / "t.jsonl")
        assert Trace.read(path) == trace

    def test_validate_rejects_unsorted(self):
        req = TraceRequest(request_id=0, arrival_s=2.0, tenant="t00",
                           app="x264", quota=2, seed=0, n=600.0, a=10.0,
                           deadline_hours=48.0, budget_dollars=350.0)
        req2 = TraceRequest(request_id=1, arrival_s=1.0, tenant="t00",
                            app="x264", quota=2, seed=0, n=600.0, a=10.0,
                            deadline_hours=48.0, budget_dollars=350.0)
        with pytest.raises(ValidationError):
            Trace(name="bad", seed=0, duration_s=4.0,
                  requests=(req, req2), config={})

    def test_merge_sorted_reassigns_dense_ids(self):
        def req(arrival, tenant):
            return TraceRequest(request_id=0, arrival_s=arrival,
                                tenant=tenant, app="x264", quota=2, seed=0,
                                n=600.0, a=10.0, deadline_hours=48.0,
                                budget_dollars=350.0)

        merged = merge_sorted([[req(0.5, "a"), req(2.0, "a")],
                               [req(1.0, "b")]])
        assert [r.request_id for r in merged] == [0, 1, 2]
        assert [r.tenant for r in merged] == ["a", "b", "a"]

    def test_offered_rps_and_tenants(self):
        trace = generate_trace(SMALL)
        assert trace.offered_rps() == pytest.approx(
            len(trace.requests) / trace.duration_s)
        assert trace.tenants == tuple(sorted({r.tenant
                                              for r in trace.requests}))


# ---------------------------------------------------------------------------
# report determinism + invariants
# ---------------------------------------------------------------------------


def _synthetic_result(n=40, seed=5) -> ReplayResult:
    rng = random.Random(seed)
    observations = []
    for i in range(n):
        status = rng.choices(["ok", "shed", "error"], [8, 1, 1])[0]
        observations.append(Observation(
            request_id=i, tenant=f"t{i % 3:02d}", arrival_s=i * 0.1,
            status=status,
            http_status=200 if status == "ok" else 503,
            code="" if status == "ok" else "saturated",
            latency_s=rng.uniform(0.01, 0.5),
            service_s=rng.uniform(0.01, 0.4),
            lag_s=rng.uniform(0.0, 0.005), burst=bool(i % 7 == 0)))
    return ReplayResult(trace_name="synthetic", trace_seed=seed,
                        duration_s=n * 0.1, time_scale=1.0, wall_s=n * 0.1,
                        observations=tuple(observations), peak_inflight=4)


class TestReport:
    def test_order_independent(self):
        """Same observations in any completion order => identical report."""
        result = _synthetic_result()
        report = ReplayReport.from_result(result)
        for shuffle_seed in range(5):
            shuffled = list(result.observations)
            random.Random(shuffle_seed).shuffle(shuffled)
            other = ReplayReport.from_result(ReplayResult(
                trace_name=result.trace_name, trace_seed=result.trace_seed,
                duration_s=result.duration_s, time_scale=result.time_scale,
                wall_s=result.wall_s, observations=tuple(shuffled),
                peak_inflight=result.peak_inflight))
            assert json.dumps(other.to_dict(), sort_keys=True) == \
                json.dumps(report.to_dict(), sort_keys=True)

    def test_counts_and_availability(self):
        report = ReplayReport.from_result(_synthetic_result())
        assert report.ok + report.shed + report.infeasible + report.errors \
            == report.requests
        answered = report.ok + report.errors
        assert report.availability == pytest.approx(report.ok / answered)
        assert check_invariants(report) == []

    def test_round_trip_and_save_load(self, tmp_path):
        report = ReplayReport.from_result(_synthetic_result())
        again = ReplayReport.from_dict(report.to_dict())
        assert again == report
        report.save(tmp_path / "r.json")
        assert ReplayReport.load(tmp_path / "r.json") == report

    def test_render_mentions_tenants(self):
        text = ReplayReport.from_result(_synthetic_result()).render()
        assert "t00" in text and "availability" in text

    def test_invariants_catch_bad_counts(self):
        report = ReplayReport.from_result(_synthetic_result())
        broken = ReplayReport.from_dict({**report.to_dict(), "ok":
                                         report.ok + 1})
        assert any("sum" in p for p in check_invariants(broken))

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValidationError):
            ReplayReport.from_dict({"trace_name": "x"})


# ---------------------------------------------------------------------------
# metrics label grouping (satellite: per-tenant snapshots)
# ---------------------------------------------------------------------------


class TestMetricsGrouping:
    def test_parse_series(self):
        name, labels = parse_series('lat_s{tenant="t01",status="ok"}')
        assert name == "lat_s"
        assert labels == {"tenant": "t01", "status": "ok"}

    def test_group_by_label(self):
        registry = MetricsRegistry()
        registry.counter("req_total",
                         labels={"tenant": "a", "status": "ok"}).increment(3)
        registry.counter("req_total",
                         labels={"tenant": "b", "status": "ok"}).increment(5)
        registry.gauge("inflight").set(2)
        groups = group_by_label(registry.snapshot(), "tenant")
        assert sorted(groups) == ["a", "b"]
        assert groups["a"]["counters"]['req_total{status="ok"}'] == 3
        assert groups["b"]["counters"]['req_total{status="ok"}'] == 5
        assert "inflight" not in groups["a"]["gauges"]


# ---------------------------------------------------------------------------
# cache trace artifacts (satellite: cache info counts traces distinctly)
# ---------------------------------------------------------------------------


class TestCacheTraces:
    def test_store_load_round_trip(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        trace = generate_trace(SMALL)
        key = cache.store_trace(trace.to_jsonl(), name=trace.name,
                                seed=trace.seed,
                                requests=len(trace.requests),
                                duration_s=trace.duration_s)
        assert cache.load_trace(key) == trace.to_jsonl()
        assert Trace.from_jsonl(cache.load_trace(key)) == trace

    def test_store_is_content_addressed(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        trace = generate_trace(SMALL)
        args = dict(name=trace.name, seed=trace.seed,
                    requests=len(trace.requests),
                    duration_s=trace.duration_s)
        assert cache.store_trace(trace.to_jsonl(), **args) == \
            cache.store_trace(trace.to_jsonl(), **args)

    def test_trace_entries_distinct_from_entries(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        trace = generate_trace(SMALL)
        cache.store_trace(trace.to_jsonl(), name=trace.name,
                          seed=trace.seed, requests=len(trace.requests),
                          duration_s=trace.duration_s)
        traces = cache.trace_entries()
        assert len(traces) == 1
        entry = traces[0]
        assert entry.name == "small"
        assert entry.seed == 11
        assert entry.requests == len(trace.requests)
        assert entry.bytes_on_disk > 0
        # evaluation entries() must NOT count trace artifacts
        assert cache.entries() == []

    def test_clear_removes_traces(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        trace = generate_trace(SMALL)
        cache.store_trace(trace.to_jsonl(), name=trace.name,
                          seed=trace.seed, requests=len(trace.requests),
                          duration_s=trace.duration_s)
        cache.clear()
        assert cache.trace_entries() == []

    def test_load_unknown_key_returns_none(self, tmp_path):
        assert EvaluationCache(tmp_path).load_trace("0" * 64) is None


# ---------------------------------------------------------------------------
# end-to-end replay against a live in-process server
# ---------------------------------------------------------------------------


class TestReplayEndToEnd:
    def _replay(self, trace, *, registry=None, time_scale=4.0,
                prewarm_first=True):
        async def run():
            server = PlannerServer(make_service())
            await server.start()
            try:
                if prewarm_first:
                    await prewarm(trace, port=server.port)
                return await replay_trace(
                    trace, port=server.port, time_scale=time_scale,
                    registry=registry, fetch_server_metrics=True)
            finally:
                await server.stop()

        return asyncio.run(run())

    def test_replay_all_ok_and_invariants(self):
        trace = generate_trace(SMALL)
        registry = MetricsRegistry()
        result = self._replay(trace, registry=registry)
        report = ReplayReport.from_result(result)
        assert report.requests == len(trace.requests)
        assert report.errors == 0
        assert report.ok == report.requests
        assert report.availability == 1.0
        assert check_invariants(report) == []
        # open-loop accounting: latency measured from intended arrival
        assert all(o.latency_s >= o.service_s - 1e-9
                   for o in result.observations)
        # server-side metrics were scraped
        assert "requests_total" in report.server_metrics.get("counters", {})

    def test_per_tenant_metrics_labels(self):
        trace = generate_trace(SMALL)
        registry = MetricsRegistry()
        self._replay(trace, registry=registry)
        groups = group_by_label(registry.snapshot(), "tenant")
        assert sorted(groups) == list(trace.tenants)
        for tenant, series in groups.items():
            assert series["counters"]['loadgen_requests_total{status="ok"}'] > 0

    def test_report_stable_under_replay_concurrency(self):
        """Replaying at different time scales answers the same requests;
        the per-tenant status counts must match (latency obviously
        differs, the *aggregation* must not depend on interleaving)."""
        trace = generate_trace(WorkloadConfig(
            tenants=2, duration_s=2.0, mean_rps=5.0, seed=21))
        fast = ReplayReport.from_result(self._replay(trace, time_scale=8.0))
        slow = ReplayReport.from_result(self._replay(trace, time_scale=2.0))
        assert fast.requests == slow.requests == len(trace.requests)
        assert [t.tenant for t in fast.tenants] == \
            [t.tenant for t in slow.tenants]
        assert [(t.tenant, t.requests, t.ok) for t in fast.tenants] == \
            [(t.tenant, t.requests, t.ok) for t in slow.tenants]

    def test_replay_against_dead_port_records_errors(self):
        trace = generate_trace(WorkloadConfig(
            tenants=1, duration_s=1.0, mean_rps=3.0, seed=2))

        async def run():
            return await replay_trace(trace, port=1, time_scale=8.0,
                                      timeout_s=2.0,
                                      fetch_server_metrics=False)

        report = ReplayReport.from_result(asyncio.run(run()))
        assert report.errors == report.requests
        assert report.availability == 0.0
        assert check_invariants(report) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLoadgenCli:
    def test_generate_to_file_deterministic(self, tmp_path, capsys):
        from repro.cli import main

        args = ["--seed", "11", "loadgen", "generate", "--tenants", "3",
                "--duration", "4", "--rps", "6", "--name", "small"]
        code = main(args + ["--output", str(tmp_path / "a.jsonl")])
        assert code == 0
        code = main(args + ["--output", str(tmp_path / "b.jsonl")])
        assert code == 0
        capsys.readouterr()
        a = (tmp_path / "a.jsonl").read_bytes()
        assert a == (tmp_path / "b.jsonl").read_bytes()
        assert a.decode() == generate_trace(SMALL).to_jsonl()

    def test_generate_to_cache_and_info(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        code = main(["--seed", "11", "--cache-dir", cache, "loadgen",
                     "generate", "--tenants", "3", "--duration", "4",
                     "--rps", "6", "--name", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stored trace" in out
        code = main(["--cache-dir", cache, "cache", "info"])
        assert code == 0
        out = capsys.readouterr().out
        assert "loadgen traces" in out
        assert "small" in out

    def test_generate_json_summary(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["--seed", "11", "--cache-dir",
                     str(tmp_path / "cache"), "loadgen", "generate",
                     "--tenants", "3", "--duration", "4", "--rps", "6",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] > 0
        assert payload["seed"] == 11
        assert len(payload["cache_key"]) == 64

    def test_report_render(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "report.json"
        ReplayReport.from_result(_synthetic_result()).save(path)
        code = main(["loadgen", "report", str(path)])
        assert code == 0
        assert "availability" in capsys.readouterr().out

    def test_replay_missing_trace_errors(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--cache-dir", str(tmp_path / "cache"), "loadgen",
                  "replay", "no-such-trace"])

    def test_trace_argument_accepts_unique_key_prefix(self, tmp_path):
        from repro.cli import _load_trace_argument

        cache = EvaluationCache(tmp_path)
        trace = generate_trace(SMALL)
        key = cache.store_trace(trace.to_jsonl(), name=trace.name,
                                seed=trace.seed,
                                requests=len(trace.requests),
                                duration_s=trace.duration_s)
        resolved = _load_trace_argument(key[:12], tmp_path, False)
        assert resolved == trace
        with pytest.raises(SystemExit):
            _load_trace_argument("ffff", tmp_path, False)


# ---------------------------------------------------------------------------
# capacity experiment (tiny sweep: 1 shard count x 1 intensity)
# ---------------------------------------------------------------------------


class TestCapacityExperiment:
    def test_small_sweep(self, tmp_path):
        from repro.experiments import capacity_exp
        from repro.experiments.common import ExperimentContext

        result = capacity_exp.run(
            ExperimentContext(seed=7),
            shard_counts=(1,), intensities_rps=(4.0,), duration_s=2.0,
            tenants=2, slo_p99_s=5.0, cache_dir=str(tmp_path))
        assert len(result.cells) == 1
        cell = result.cells[0]
        assert cell.shards == 1
        assert cell.errors == 0
        assert cell.feasible
        assert result.cheapest[4.0] == 1
        assert result.frontier[4.0] == (1,)
        rendered = result.render()
        assert "cheapest fleet" in rendered
        series = result.to_series()
        assert series["cheapest_shards_by_rps"]["4"] == 1

    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "capacity" in EXPERIMENTS
