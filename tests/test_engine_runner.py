"""Tests for the end-to-end engine runner."""

import pytest

from repro.engine.runner import (
    EngineConfig,
    run_on_configuration,
    time_single_node_run,
)
from repro.errors import ConfigurationError
from repro.units import seconds_to_hours


class TestRunOnConfiguration:
    def test_ideal_engine_matches_analytical_model(self, ec2, galaxy):
        """With all noise off the engine reproduces T = D/U and C = T*Cu."""
        config = (1, 1, 0, 0, 0, 0, 0, 0, 0)
        report = run_on_configuration(
            galaxy, 8192, 200, config, ec2,
            config=EngineConfig.ideal(), seed=0)
        demand = galaxy.demand_gi(8192, 200)
        capacity = sum(
            galaxy.true_rate_gips(ec2[i]) * c for i, c in enumerate(config))
        expected_hours = seconds_to_hours(demand / capacity)
        # Only real communication time separates engine from model.
        assert report.time_hours == pytest.approx(expected_hours, rel=0.01)
        unit_cost = sum(ec2.prices[i] * c for i, c in enumerate(config))
        assert report.cost_dollars == pytest.approx(
            report.time_hours * unit_cost, rel=1e-9)

    def test_realistic_engine_slower_and_pricier(self, ec2, galaxy):
        config = (1, 1, 0, 0, 0, 0, 0, 0, 0)
        ideal = run_on_configuration(galaxy, 8192, 200, config, ec2,
                                     config=EngineConfig.ideal(), seed=0)
        real = run_on_configuration(galaxy, 8192, 200, config, ec2, seed=0)
        assert real.time_hours > ideal.time_hours
        assert real.cost_dollars >= ideal.cost_dollars

    def test_report_fields(self, ec2, x264):
        report = run_on_configuration(x264, 64, 20,
                                      (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2,
                                      seed=1)
        assert report.app_name == "x264"
        assert report.configuration == (1, 0, 0, 0, 0, 0, 0, 0, 0)
        assert report.total_gi == pytest.approx(x264.demand_gi(64, 20))
        assert 0 < report.utilization <= 1.0
        assert report.n_units == 64
        assert report.startup_hours > 0
        assert report.overhead_fraction > 0

    def test_empty_configuration_rejected(self, ec2, x264):
        with pytest.raises(ConfigurationError):
            run_on_configuration(x264, 4, 20, (0,) * 9, ec2)

    def test_deterministic_per_seed(self, ec2, sand):
        a = run_on_configuration(sand, 64_000_000, 0.32,
                                 (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2, seed=5)
        b = run_on_configuration(sand, 64_000_000, 0.32,
                                 (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2, seed=5)
        assert a.time_hours == b.time_hours
        assert a.cost_dollars == b.cost_dollars

    def test_different_seeds_differ(self, ec2, sand):
        a = run_on_configuration(sand, 64_000_000, 0.32,
                                 (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2, seed=5)
        b = run_on_configuration(sand, 64_000_000, 0.32,
                                 (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2, seed=6)
        assert a.time_hours != b.time_hours

    def test_hourly_billing_quantization(self, ec2, x264):
        report = run_on_configuration(x264, 64, 20,
                                      (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2,
                                      seed=2)
        import math

        price = ec2.type_named("c4.2xlarge").price_per_hour
        assert report.cost_dollars == pytest.approx(
            price * math.ceil(report.time_hours))

    def test_more_nodes_finish_faster(self, ec2, galaxy):
        small = run_on_configuration(galaxy, 16384, 400,
                                     (1, 0, 0, 0, 0, 0, 0, 0, 0), ec2, seed=3)
        big = run_on_configuration(galaxy, 16384, 400,
                                   (5, 5, 0, 0, 0, 0, 0, 0, 0), ec2, seed=3)
        assert big.time_hours < small.time_hours


class TestSingleNodeBaseline:
    def test_ideal_time_matches_rate(self, ec2, x264):
        itype = ec2.type_named("c4.large")
        elapsed = time_single_node_run(x264, 64, 20, itype,
                                       config=EngineConfig.ideal(), seed=0)
        expected = x264.demand_gi(64, 20) / x264.true_rate_gips(itype)
        assert elapsed == pytest.approx(expected, rel=0.02)

    def test_startup_flag(self, ec2, x264):
        itype = ec2.type_named("c4.large")
        without = time_single_node_run(x264, 64, 20, itype, seed=0)
        with_startup = time_single_node_run(x264, 64, 20, itype, seed=0,
                                            include_startup=True)
        assert with_startup == pytest.approx(
            without + EngineConfig().node_startup_seconds)

    def test_faster_type_is_faster(self, ec2, x264):
        t_large = time_single_node_run(x264, 64, 20,
                                       ec2.type_named("c4.large"), seed=0)
        t_2xlarge = time_single_node_run(x264, 64, 20,
                                         ec2.type_named("c4.2xlarge"), seed=0)
        assert t_2xlarge < t_large
