"""Tests for robust (margin-hedged) selection and miss-probability."""

import pytest

from repro.core.robust import (
    calibrate_margin,
    deadline_miss_probability,
    select_with_margin,
)
from repro.errors import InfeasibleError, ValidationError


class TestSelectWithMargin:
    def test_zero_margin_equals_naive(self, celia_ec2, galaxy):
        index = celia_ec2.min_cost_index(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 6_000)
        sel = select_with_margin(index, demand, 24.0, margin=0.0)
        assert sel.answer.configuration == sel.naive_answer.configuration
        assert sel.insurance_cost_fraction == pytest.approx(0.0)

    def test_margin_buys_headroom_for_a_price(self, celia_ec2, galaxy):
        index = celia_ec2.min_cost_index(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 6_000)
        sel = select_with_margin(index, demand, 24.0, margin=0.15)
        assert sel.insurance_cost_fraction >= 0.0
        assert sel.predicted_headroom_hours >= 0.15 * 24.0 - 1e-9
        assert sel.answer.capacity_gips >= sel.naive_answer.capacity_gips

    def test_margin_validation(self, celia_ec2, galaxy):
        index = celia_ec2.min_cost_index(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 6_000)
        with pytest.raises(ValidationError):
            select_with_margin(index, demand, 24.0, margin=1.0)
        with pytest.raises(ValidationError):
            select_with_margin(index, demand, 24.0, margin=-0.1)

    def test_impossible_margin(self, celia_ec2, galaxy):
        index = celia_ec2.min_cost_index(galaxy)
        # Demand sized so only the full catalog barely meets 24 h.
        demand = index.max_capacity_gips * 24.0 * 3600.0 * 0.99
        with pytest.raises(InfeasibleError):
            select_with_margin(index, demand, 24.0, margin=0.3)


class TestMissProbability:
    def test_estimate_fields(self, ec2, galaxy):
        estimate = deadline_miss_probability(
            galaxy, 16_384, 400, (2, 0, 0, 0, 0, 0, 0, 0, 0), ec2,
            deadline_hours=10.0, trials=5, seed=0)
        assert estimate.trials == 5
        assert 0 <= estimate.misses <= 5
        assert estimate.p95_time_hours >= estimate.mean_time_hours * 0.9
        assert estimate.mean_cost_dollars > 0

    def test_generous_deadline_never_misses(self, ec2, galaxy):
        estimate = deadline_miss_probability(
            galaxy, 16_384, 400, (2, 0, 0, 0, 0, 0, 0, 0, 0), ec2,
            deadline_hours=1000.0, trials=5, seed=0)
        assert estimate.miss_probability == 0.0

    def test_impossible_deadline_always_misses(self, ec2, galaxy):
        estimate = deadline_miss_probability(
            galaxy, 16_384, 400, (2, 0, 0, 0, 0, 0, 0, 0, 0), ec2,
            deadline_hours=0.001, trials=5, seed=0)
        assert estimate.miss_probability == 1.0

    def test_validation(self, ec2, galaxy):
        with pytest.raises(ValidationError):
            deadline_miss_probability(galaxy, 16_384, 400,
                                      (1,) + (0,) * 8, ec2, 1.0, trials=0)


class TestCalibrateMargin:
    def test_finds_margin_meeting_target(self, celia_ec2, galaxy, ec2):
        demand = celia_ec2.demand_gi(galaxy, 65_536, 4_000)
        index = celia_ec2.min_cost_index(galaxy)
        selection, estimate = calibrate_margin(
            galaxy, 65_536, 4_000, index, demand, ec2,
            deadline_hours=30.0, target_on_time=0.9, trials=8, seed=0)
        assert 1.0 - estimate.miss_probability >= 0.9
        assert selection.margin in (0.0, 0.05, 0.10, 0.15, 0.20, 0.30)

    def test_unreachable_target_raises(self, celia_ec2, galaxy, ec2):
        demand = celia_ec2.demand_gi(galaxy, 65_536, 4_000)
        index = celia_ec2.min_cost_index(galaxy)
        with pytest.raises(InfeasibleError):
            # Deadline below anything the catalog can do.
            calibrate_margin(galaxy, 65_536, 4_000, index, demand, ec2,
                             deadline_hours=0.01, trials=2, seed=0)

    def test_target_validation(self, celia_ec2, galaxy, ec2):
        demand = celia_ec2.demand_gi(galaxy, 65_536, 4_000)
        index = celia_ec2.min_cost_index(galaxy)
        with pytest.raises(ValidationError):
            calibrate_margin(galaxy, 65_536, 4_000, index, demand, ec2,
                             deadline_hours=30.0, target_on_time=1.5)
