"""Tests for the ``celia`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, package_version


class TestParser:
    def test_subcommands_present(self):
        parser = build_parser()
        args = parser.parse_args(["select", "galaxy", "100", "10",
                                  "--deadline", "24", "--budget", "350"])
        assert args.command == "select"
        assert args.app == "galaxy"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "hadoop"])

    def test_plan_mutually_exclusive_knobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "plan", "galaxy", "--deadline", "24", "--budget", "100",
                "--fix-size", "100", "--fix-accuracy", "10",
                "--range", "1,2",
            ])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert package_version() in out
        assert out.startswith("celia ")

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8337
        assert args.max_queue == 64
        assert args.warm is None

    def test_serve_warm_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--warm", "galaxy", "--warm", "x264"])
        assert args.warm == ["galaxy", "x264"]


@pytest.mark.parametrize("quota", ["2"])
class TestCommands:
    """End-to-end CLI runs on a reduced quota (3^9-1 = 19k configs)."""

    def test_predict(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "predict", "galaxy",
                     "65536", "4000", "--config", "2,2,0,0,0,0,0,0,0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "demand" in out and "cost" in out

    def test_predict_bad_config(self, quota):
        with pytest.raises(SystemExit):
            main(["--quota", quota, "predict", "galaxy", "65536", "4000",
                  "--config", "1,2"])
        with pytest.raises(SystemExit):
            main(["--quota", quota, "predict", "galaxy", "65536", "4000",
                  "--config", "a,b,c,d,e,f,g,h,i"])

    def test_select(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "select", "galaxy",
                     "65536", "2000", "--deadline", "48", "--budget", "350",
                     "--top", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Pareto-optimal" in out
        assert "frontier cost span" in out

    def test_select_infeasible(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "select", "galaxy",
                     "65536", "8000", "--deadline", "0.001",
                     "--budget", "0.001"])
        assert code == 1

    def test_characterize_with_profile_output(self, capsys, tmp_path, quota):
        out_file = tmp_path / "galaxy.json"
        code = main(["--seed", "1", "--quota", quota, "characterize",
                     "galaxy", "--output", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "GI/s per $/h" in out
        assert out_file.exists()
        from repro.measurement.profiles import ApplicationProfile

        profile = ApplicationProfile.load(out_file)
        assert profile.app_name == "galaxy"

    def test_plan_accuracy(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "plan", "galaxy",
                     "--deadline", "24", "--budget", "50",
                     "--fix-size", "65536", "--range", "100,20000",
                     "--integral"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max accuracy" in out

    def test_plan_infeasible_returns_one(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "plan", "galaxy",
                     "--deadline", "0.0001", "--budget", "0.0001",
                     "--fix-size", "65536", "--range", "1000,2000"])
        err = capsys.readouterr().err
        assert code == 1
        assert "infeasible" in err

    def test_plan_bad_range(self, quota):
        with pytest.raises(SystemExit):
            main(["--quota", quota, "plan", "galaxy", "--deadline", "24",
                  "--budget", "50", "--fix-size", "65536",
                  "--range", "oops"])

    def test_validate(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "validate", "x264",
                     "256", "20", "--config", "2,0,0,0,0,0,0,0,0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted" in out and "error" in out


@pytest.mark.parametrize("quota", ["2"])
class TestJsonOutput:
    """``--json`` must emit the service schema, parseable and complete."""

    def test_select_json(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "select", "galaxy",
                     "65536", "2000", "--deadline", "48", "--budget", "350",
                     "--top", "3", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["feasible_count"] > 0
        assert len(data["pareto"]) <= 3
        assert data["pareto_count"] >= len(data["pareto"])
        point = data["pareto"][0]
        assert set(point) == {"configuration", "time_hours", "cost_dollars",
                              "capacity_gips", "unit_cost_per_hour"}

    def test_select_json_infeasible(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "select", "galaxy",
                     "65536", "8000", "--deadline", "0.001",
                     "--budget", "0.001", "--json"])
        out = capsys.readouterr().out
        assert code == 1
        data = json.loads(out)
        assert data["pareto"] == []
        assert data["cost_span"] is None
        assert data["max_saving_fraction"] is None

    def test_predict_json(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "predict", "galaxy",
                     "65536", "4000", "--config", "2,2,0,0,0,0,0,0,0",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["configuration"] == [2, 2, 0, 0, 0, 0, 0, 0, 0]
        assert data["cost_dollars"] > 0

    def test_plan_json(self, capsys, quota):
        code = main(["--seed", "1", "--quota", quota, "plan", "galaxy",
                     "--deadline", "24", "--budget", "50",
                     "--fix-size", "65536", "--range", "100,20000",
                     "--integral", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["knob"] == "accuracy"
        assert data["answer"]["cost_dollars"] < 50

    def test_json_matches_service_serializer(self, capsys, quota):
        """CLI --json and the service serializer are the same code path;
        the output must round-trip through the serializer unchanged."""
        from repro.apps import application_by_name
        from repro.cloud.catalog import ec2_catalog
        from repro.core.celia import Celia
        from repro.service.serialize import selection_to_dict

        code = main(["--seed", "1", "--quota", quota, "select", "galaxy",
                     "65536", "2000", "--deadline", "48", "--budget", "350",
                     "--json"])
        assert code == 0
        cli_data = json.loads(capsys.readouterr().out)
        celia = Celia(ec2_catalog(max_nodes_per_type=int(quota)), seed=1)
        result = celia.select(application_by_name("galaxy", seed=1),
                              65536, 2000, 48, 350)
        assert cli_data == selection_to_dict(result)


class TestSpotCommand:
    def test_spot_study(self, capsys):
        code = main(["--seed", "1", "--quota", "2", "spot", "galaxy",
                     "65536", "2000", "--deadline", "48", "--bid", "0.6",
                     "--trials", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spot vs on-demand" in out
        assert "on-time" in out

    def test_spot_infeasible_deadline(self, capsys):
        code = main(["--seed", "1", "--quota", "2", "spot", "galaxy",
                     "65536", "8000", "--deadline", "0.001"])
        assert code == 1


class TestExecuteCommand:
    def test_list_chaos_catalog(self, capsys):
        code = main(["execute", "--list-chaos"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("calm", "flaky-control-plane", "crashy", "stragglers",
                     "perfect-storm"):
            assert name in out

    def test_execute_calm_meets_envelope(self, capsys):
        code = main(["--seed", "1", "--quota", "2", "execute", "galaxy",
                     "65536", "8000", "--deadline", "40", "--budget", "400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "met" in out
        assert "0 replans" in out

    def test_execute_json_is_deterministic(self, capsys):
        argv = ["--seed", "1", "--quota", "2", "execute", "galaxy",
                "65536", "8000", "--deadline", "40", "--budget", "400",
                "--chaos", "crashy", "--json"]
        code = main(argv)
        first = capsys.readouterr().out
        assert code in (0, 1)
        assert main(argv) == code
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["scenario"] == "crashy"
        assert report["verdict"] in ("met", "degraded", "missed_deadline",
                                     "over_budget", "infeasible", "failed")
        assert report["timeline"]

    def test_static_flag_disables_replanning(self, capsys):
        code = main(["--seed", "1", "--quota", "2", "execute", "galaxy",
                     "65536", "8000", "--deadline", "40", "--budget", "400",
                     "--static", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0  # calm: static also succeeds
        assert report["adaptive"] is False

    def test_execute_needs_problem_and_envelope(self):
        with pytest.raises(SystemExit, match="needs app"):
            main(["execute"])
        with pytest.raises(SystemExit, match="deadline"):
            main(["execute", "galaxy", "65536", "8000"])

    def test_unknown_scenario_rejected(self, capsys):
        code = main(["--quota", "2", "execute", "galaxy", "65536", "8000",
                     "--deadline", "40", "--budget", "400",
                     "--chaos", "volcano"])
        assert code != 0
        assert "unknown chaos scenario" in capsys.readouterr().err

    def test_execute_market_json_is_deterministic(self, capsys):
        argv = ["--seed", "1", "--quota", "2", "execute", "galaxy",
                "65536", "8000", "--deadline", "40", "--budget", "400",
                "--market", "--chaos", "spot-squeeze", "--json"]
        code = main(argv)
        first = capsys.readouterr().out
        assert main(argv) == code
        assert capsys.readouterr().out == first
        report = json.loads(first)
        assert report["market"] is True
        assert report["scenario"] == "spot-squeeze"
        assert report["cost_dollars"] <= report["budget_dollars"]
        assert 0.0 <= report["spot_cost_dollars"] <= report["cost_dollars"]
        kinds = {event["kind"] for event in report["timeline"]}
        assert "spot_purchase" in kinds

    def test_spot_fraction_implies_market(self, capsys):
        code = main(["--seed", "1", "--quota", "2", "execute", "galaxy",
                     "65536", "8000", "--deadline", "40", "--budget", "400",
                     "--spot-fraction", "1.0", "--bid-policy", "adaptive",
                     "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert report["market"] is True

    def test_execute_market_human_summary(self, capsys):
        code = main(["--seed", "1", "--quota", "2", "execute", "galaxy",
                     "65536", "8000", "--deadline", "40", "--budget", "400",
                     "--market"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "market  :" in out and "spot interruption" in out

    def test_invalid_market_policy_rejected(self, capsys):
        code = main(["--quota", "2", "execute", "galaxy", "65536", "8000",
                     "--deadline", "40", "--budget", "400",
                     "--spot-fraction", "1.5"])
        assert code == 2
        assert "spot_fraction" in capsys.readouterr().err
        code = main(["--quota", "2", "execute", "galaxy", "65536", "8000",
                     "--deadline", "40", "--budget", "400",
                     "--bid-policy", "yolo"])
        assert code == 2
        assert "unknown bid policy" in capsys.readouterr().err


class TestMarketCommand:
    def test_policies_table(self, capsys):
        code = main(["market", "policies"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("fixed-fraction", "on-demand-cap", "adaptive"):
            assert name in out

    def test_policies_json(self, capsys):
        code = main(["market", "policies", "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [row["name"] for row in rows] == \
            ["fixed-fraction", "on-demand-cap", "adaptive"]
        assert all(row["description"] for row in rows)

    def test_prices_json_covers_catalog(self, capsys):
        code = main(["--seed", "3", "market", "prices", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["scenario"] == "calm"
        assert len(payload["types"]) == 9
        for row in payload["types"]:
            assert row["min_price"] <= row["mean_price"] <= row["max_price"]

    def test_prices_surged_scenario(self, capsys):
        code = main(["--seed", "3", "market", "prices",
                     "--chaos", "price-spike", "--json"])
        spiked = json.loads(capsys.readouterr().out)
        assert code == 0
        main(["--seed", "3", "market", "prices", "--json"])
        calm = json.loads(capsys.readouterr().out)
        spiked_mean = {r["type"]: r["long_run_mean"]
                       for r in spiked["types"]}
        for row in calm["types"]:
            assert spiked_mean[row["type"]] > row["long_run_mean"]

    def test_prices_human_table(self, capsys):
        code = main(["market", "prices"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spot market under 'calm'" in out
        assert "c4.large" in out

    def test_prices_unknown_scenario(self, capsys):
        code = main(["market", "prices", "--chaos", "volcano"])
        assert code == 2
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestRegistryJsonExport:
    def test_figure5_series_written(self, tmp_path):
        from repro.experiments.registry import main as reg_main

        code = reg_main(["figure5", "--output-dir", str(tmp_path)])
        assert code == 0
        import json

        data = json.loads((tmp_path / "figure5.json").read_text())
        assert "galaxy" in data and "sand" in data
        assert "24" in data["galaxy"]["min_cost_by_deadline"]
        # Infeasible points serialize as null.
        six_hr = data["galaxy"]["min_cost_by_deadline"]["6"]
        assert six_hr[-1] is None
