"""Tests for the three execution-style schedulers."""

import numpy as np
import pytest

from repro.apps.base import ExecutionStyle, Workload
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.engine.schedulers import (
    simulate_bsp,
    simulate_independent,
    simulate_workload,
    simulate_workqueue,
)
from repro.errors import SimulationError


@pytest.fixture()
def cluster(ec2, galaxy):
    instances = [
        Instance(instance_id="i-0", itype=ec2.type_named("c4.large")),
        Instance(instance_id="i-1", itype=ec2.type_named("c4.xlarge")),
    ]
    return SimCluster(instances, galaxy)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def independent_workload(task_gi) -> Workload:
    arr = np.asarray(task_gi, dtype=float)
    return Workload(style=ExecutionStyle.INDEPENDENT,
                    total_gi=float(arr.sum()), task_gi=arr)


class TestIndependent:
    def test_single_huge_task_limited_by_one_slot(self, cluster, rng):
        w = independent_workload([100.0])
        outcome = simulate_independent(w, cluster, rng, jitter_sigma=0.0)
        fastest_slot = cluster.slot_rates().max()
        assert outcome.makespan_seconds == pytest.approx(100.0 / fastest_slot)

    def test_many_tasks_approach_ideal(self, cluster, rng):
        w = independent_workload(np.full(2000, 1.0))
        outcome = simulate_independent(w, cluster, rng, jitter_sigma=0.0)
        ideal = cluster.ideal_seconds(w.total_gi)
        assert outcome.makespan_seconds == pytest.approx(ideal, rel=0.02)
        assert outcome.utilization > 0.97

    def test_jitter_increases_spread_not_direction(self, cluster):
        w = independent_workload(np.full(500, 1.0))
        base = simulate_independent(
            w, cluster, np.random.default_rng(1), jitter_sigma=0.0)
        noisy = simulate_independent(
            w, cluster, np.random.default_rng(1), jitter_sigma=0.1)
        assert noisy.makespan_seconds == pytest.approx(
            base.makespan_seconds, rel=0.2)

    def test_style_check(self, cluster, rng):
        w = Workload(style=ExecutionStyle.BSP, total_gi=1.0,
                     n_steps=1, step_gi=1.0)
        with pytest.raises(SimulationError):
            simulate_independent(w, cluster, rng)

    def test_unit_count(self, cluster, rng):
        w = independent_workload(np.full(37, 1.0))
        assert simulate_independent(w, cluster, rng).n_units == 37


class TestBsp:
    def bsp_workload(self, steps=10, step_gi=50.0, comm=0.0) -> Workload:
        return Workload(style=ExecutionStyle.BSP, total_gi=steps * step_gi,
                        n_steps=steps, step_gi=step_gi,
                        comm_seconds_per_step=comm)

    def test_uncontended_matches_ideal(self, cluster, rng):
        w = self.bsp_workload()
        outcome = simulate_bsp(w, cluster, rng, jitter_sigma=0.0)
        assert outcome.makespan_seconds == pytest.approx(
            cluster.ideal_seconds(w.total_gi))

    def test_communication_adds_linear_time(self, cluster, rng):
        no_comm = simulate_bsp(self.bsp_workload(comm=0.0), cluster,
                               np.random.default_rng(2), jitter_sigma=0.0)
        with_comm = simulate_bsp(self.bsp_workload(comm=0.5), cluster,
                                 np.random.default_rng(2), jitter_sigma=0.0)
        assert with_comm.makespan_seconds == pytest.approx(
            no_comm.makespan_seconds + 10 * 0.5)

    def test_contended_node_gates_barrier(self, ec2, galaxy, rng):
        slow = Instance(instance_id="i-0", itype=ec2.type_named("c4.large"),
                        contention_factor=0.8)
        fast = Instance(instance_id="i-1", itype=ec2.type_named("c4.large"),
                        contention_factor=1.0)
        cluster = SimCluster([slow, fast], galaxy)
        w = self.bsp_workload()
        outcome = simulate_bsp(w, cluster, rng, jitter_sigma=0.0)
        # Static partition assumes equal nodes; the 0.8 node takes 1/0.8x.
        nominal_total = cluster.node_nominal_rates().sum()
        expected = w.n_steps * (w.step_gi / nominal_total) / 0.8
        assert outcome.makespan_seconds == pytest.approx(expected)

    def test_jitter_only_slows(self, cluster):
        w = self.bsp_workload(steps=200)
        base = simulate_bsp(w, cluster, np.random.default_rng(3),
                            jitter_sigma=0.0)
        noisy = simulate_bsp(w, cluster, np.random.default_rng(3),
                             jitter_sigma=0.05)
        assert noisy.makespan_seconds > base.makespan_seconds

    def test_style_check(self, cluster, rng):
        with pytest.raises(SimulationError):
            simulate_bsp(independent_workload([1.0]), cluster, rng)


class TestWorkqueue:
    def wq_workload(self, task_gi, dispatch=0.0) -> Workload:
        arr = np.asarray(task_gi, dtype=float)
        return Workload(style=ExecutionStyle.WORKQUEUE,
                        total_gi=float(arr.sum()), task_gi=arr,
                        dispatch_seconds=dispatch)

    def test_no_dispatch_matches_near_ideal(self, cluster, rng):
        w = self.wq_workload(np.full(2000, 1.0))
        outcome = simulate_workqueue(w, cluster, rng, jitter_sigma=0.0)
        ideal = cluster.ideal_seconds(w.total_gi)
        assert outcome.makespan_seconds == pytest.approx(ideal, rel=0.02)

    def test_dispatch_serializes_at_master(self, cluster, rng):
        # Tiny tasks: dispatch dominates; makespan >= n_tasks * dispatch.
        w = self.wq_workload(np.full(100, 1e-6), dispatch=0.1)
        outcome = simulate_workqueue(w, cluster, rng, jitter_sigma=0.0)
        assert outcome.makespan_seconds >= 100 * 0.1

    def test_dispatch_overhead_vs_no_dispatch(self, cluster, rng):
        tasks = np.full(200, 1.0)
        fast = simulate_workqueue(self.wq_workload(tasks), cluster,
                                  np.random.default_rng(4), jitter_sigma=0.0)
        slow = simulate_workqueue(self.wq_workload(tasks, dispatch=0.05),
                                  cluster, np.random.default_rng(4),
                                  jitter_sigma=0.0)
        assert slow.makespan_seconds > fast.makespan_seconds

    def test_heterogeneous_tail(self, cluster, rng):
        """One giant task dispatched last creates a completion tail."""
        tasks = np.concatenate([np.full(50, 1.0), [500.0]])
        outcome = simulate_workqueue(self.wq_workload(tasks), cluster,
                                     rng, jitter_sigma=0.0)
        # The giant task alone takes 500/slot_rate on whichever slot got it.
        assert outcome.makespan_seconds > 500.0 / cluster.slot_rates().max()

    def test_style_check(self, cluster, rng):
        with pytest.raises(SimulationError):
            simulate_workqueue(independent_workload([1.0]), cluster, rng)


class TestDispatch:
    def test_simulate_workload_routes_by_style(self, cluster, rng):
        ind = independent_workload([1.0, 2.0])
        assert simulate_workload(ind, cluster, rng).n_units == 2
        bsp = Workload(style=ExecutionStyle.BSP, total_gi=10.0,
                       n_steps=5, step_gi=2.0)
        assert simulate_workload(bsp, cluster, rng).n_units == 5
        wq = Workload(style=ExecutionStyle.WORKQUEUE, total_gi=3.0,
                      task_gi=np.array([1.0, 2.0]))
        assert simulate_workload(wq, cluster, rng).n_units == 2
