"""Tests for the process-parallel space sweep (:mod:`repro.parallel`).

The headline property — parallel evaluation is *bit-identical* to the
serial sweep — is checked byte-for-byte on randomized catalogs, because
the cache and the selection equivalence proofs both rely on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import make_catalog
from repro.core.configspace import ConfigurationSpace
from repro.errors import ConfigurationError
from repro.parallel import (
    AUTO_WORKERS_THRESHOLD,
    available_workers,
    evaluate_parallel,
    partition_chunks,
    resolve_workers,
)


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None, 10**9) == 1
        assert resolve_workers(1, 10**9) == 1

    def test_explicit_count_is_kept(self):
        assert resolve_workers(7, 10) == 7

    def test_auto_is_serial_below_threshold(self):
        assert resolve_workers("auto", AUTO_WORKERS_THRESHOLD - 1) == 1

    def test_auto_parallelizes_large_spaces(self):
        n = resolve_workers("auto", 64 * AUTO_WORKERS_THRESHOLD)
        assert 1 <= n <= max(available_workers(), 1)
        if available_workers() > 1:
            assert n > 1

    def test_auto_never_exceeds_useful_parallelism(self):
        # Slightly above threshold: at most size // threshold workers.
        assert resolve_workers("auto", AUTO_WORKERS_THRESHOLD + 1) == 1 or \
            available_workers() == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers("many", 10)
        with pytest.raises(ConfigurationError):
            resolve_workers(0, 10)
        with pytest.raises(ConfigurationError):
            resolve_workers(-2, 10)


class TestPartitionChunks:
    @given(total=st.integers(1, 5000), chunk=st.integers(1, 257),
           parts=st.integers(1, 12))
    @settings(max_examples=200, deadline=None)
    def test_partition_covers_exactly(self, total, chunk, parts):
        spans = partition_chunks(total, chunk, parts)
        assert spans[0][0] == 1
        assert spans[-1][1] == total + 1
        for (s0, e0), (s1, _) in zip(spans, spans[1:]):
            assert e0 == s1
            assert s0 < e0

    @given(total=st.integers(1, 5000), chunk=st.integers(1, 257),
           parts=st.integers(1, 12))
    @settings(max_examples=200, deadline=None)
    def test_boundaries_on_chunk_grid(self, total, chunk, parts):
        """Every span starts at 1 + k*chunk — the bit-identity invariant."""
        for start, _ in partition_chunks(total, chunk, parts):
            assert (start - 1) % chunk == 0

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_chunks(0, 10, 2)
        with pytest.raises(ConfigurationError):
            partition_chunks(10, 0, 2)


# Randomized small catalogs: 2-3 types, quota 2-4 (spaces of 8..124).
@st.composite
def catalogs(draw):
    n_types = draw(st.integers(2, 3))
    quota = draw(st.integers(2, 4))
    rows = []
    for i in range(n_types):
        vcpus = draw(st.sampled_from([1, 2, 4, 8]))
        freq = draw(st.floats(1.0, 4.0, allow_nan=False))
        price = draw(st.floats(0.01, 2.0, allow_nan=False))
        rows.append((f"t{i}.x", vcpus, freq, price))
    caps = [draw(st.floats(0.5, 10.0, allow_nan=False))
            for _ in range(n_types)]
    return make_catalog(rows, quota=quota), np.array(caps)


class TestParallelEvaluate:
    @given(data=catalogs(), workers=st.integers(2, 4),
           chunk=st.sampled_from([1, 3, 7, 64]))
    @settings(max_examples=10, deadline=None)
    def test_bit_identical_to_serial(self, data, workers, chunk):
        catalog, caps = data
        space = ConfigurationSpace(catalog)
        serial = space.evaluate(caps, chunk_size=chunk)
        parallel = space.evaluate(caps, chunk_size=chunk, workers=workers)
        assert serial.capacity_gips.tobytes() == \
            parallel.capacity_gips.tobytes()
        assert serial.unit_cost_per_hour.tobytes() == \
            parallel.unit_cost_per_hour.tobytes()

    def test_more_workers_than_chunks(self, small_catalog, small_capacities):
        """Worker count above the chunk count must not break coverage."""
        space = ConfigurationSpace(small_catalog)  # 26 configurations
        serial = space.evaluate(small_capacities)
        parallel = space.evaluate(small_capacities, chunk_size=5, workers=16)
        assert serial.capacity_gips.tobytes() == \
            parallel.capacity_gips.tobytes()

    def test_evaluate_parallel_requires_two_workers(self, small_catalog,
                                                    small_capacities):
        space = ConfigurationSpace(small_catalog)
        with pytest.raises(ConfigurationError):
            evaluate_parallel(space, small_capacities, workers=1,
                              chunk_size=8)

    def test_workers_knob_validated(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        with pytest.raises(ConfigurationError):
            space.evaluate(small_capacities, workers="turbo")
