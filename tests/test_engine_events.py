"""Tests for the discrete-event simulation core."""

import pytest

from repro.engine.events import EventSimulator
from repro.errors import SimulationError


class TestEventSimulator:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_for_simultaneous_events(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        fired = []

        def chain(k: int):
            fired.append(k)
            if k < 3:
                sim.schedule(1.0, lambda: chain(k + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_horizon_stops_processing(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(horizon=5.0)
        assert fired == ["early"]
        assert sim.now == 1.0

    def test_schedule_at_absolute_time(self):
        sim = EventSimulator()
        fired = []
        sim.schedule_at(4.0, lambda: fired.append("x"))
        sim.run()
        assert sim.now == 4.0

    def test_cannot_schedule_into_past(self):
        sim = EventSimulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_max_events_guard(self):
        sim = EventSimulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = EventSimulator()
        for k in range(5):
            sim.schedule(float(k), lambda: None)
        sim.run()
        assert sim.processed_events == 5
