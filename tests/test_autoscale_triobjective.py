"""Tests for the autoscaler baseline and the tri-objective frontier."""

import numpy as np
import pytest

from repro.baselines.autoscale import simulate_autoscaler
from repro.core.triobjective import tri_objective_frontier
from repro.errors import ValidationError


class TestAutoscaler:
    def test_completes_within_deadline_when_feasible(self, celia_ec2,
                                                     galaxy, ec2):
        capacities = celia_ec2.capacities(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 2_000)
        outcome = simulate_autoscaler(ec2, capacities, demand, 48.0, seed=0)
        assert outcome.completed_on_time
        assert outcome.cost_dollars > 0
        assert outcome.peak_nodes >= 1
        assert outcome.epochs >= 1

    def test_static_optimal_cheaper_with_accurate_estimate(self, celia_ec2,
                                                           galaxy, ec2):
        """With a correct demand estimate, CELIA's static plan beats the
        reactive policy (no scaling churn, no hourly re-billing)."""
        capacities = celia_ec2.capacities(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 2_000)
        static = celia_ec2.min_cost_index(galaxy).query(demand, 48.0)
        reactive = simulate_autoscaler(ec2, capacities, demand, 48.0, seed=0)
        assert static.cost_dollars <= reactive.cost_dollars * 1.05

    def test_autoscaler_rescues_underestimated_demand(self, celia_ec2,
                                                      galaxy, ec2):
        """The reactive policy's advantage: a static plan sized from a
        2x-underestimated demand misses the deadline; the autoscaler,
        which observes the true remaining work, still finishes on time."""
        capacities = celia_ec2.capacities(galaxy)
        true_demand = celia_ec2.demand_gi(galaxy, 65_536, 6_000)
        believed = true_demand / 2.0
        deadline = 30.0
        static = celia_ec2.min_cost_index(galaxy).query(believed, deadline)
        static_true_time = true_demand / static.capacity_gips / 3600.0
        assert static_true_time > deadline  # the static plan is sunk
        reactive = simulate_autoscaler(ec2, capacities, true_demand,
                                       deadline, seed=1)
        assert reactive.completed_on_time

    def test_scaling_actions_counted(self, celia_ec2, galaxy, ec2):
        capacities = celia_ec2.capacities(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 4_000)
        outcome = simulate_autoscaler(ec2, capacities, demand, 24.0, seed=2)
        assert outcome.scaling_actions >= 1
        assert len(outcome.configuration_history) == outcome.epochs

    def test_validation(self, ec2):
        capacities = np.ones(9)
        with pytest.raises(ValidationError):
            simulate_autoscaler(ec2, capacities, 0.0, 10.0)
        with pytest.raises(ValidationError):
            simulate_autoscaler(ec2, capacities, 1.0, 10.0, headroom=0.5)
        with pytest.raises(ValidationError):
            simulate_autoscaler(ec2, np.ones(2), 1.0, 10.0)

    def test_deterministic(self, celia_ec2, galaxy, ec2):
        capacities = celia_ec2.capacities(galaxy)
        demand = celia_ec2.demand_gi(galaxy, 65_536, 2_000)
        a = simulate_autoscaler(ec2, capacities, demand, 48.0, seed=9)
        b = simulate_autoscaler(ec2, capacities, demand, 48.0, seed=9)
        assert a.cost_dollars == b.cost_dollars
        assert a.configuration_history == b.configuration_history


class TestTriObjectiveFrontier:
    @pytest.fixture(scope="class")
    def frontier(self, celia_ec2, galaxy):
        return tri_objective_frontier(
            celia_ec2.evaluation(galaxy),
            celia_ec2.demand_model(galaxy),
            galaxy.accuracy_score,
            problem_size=65_536,
            accuracy_levels=np.array([2_000, 4_000, 6_000, 8_000]),
            deadline_hours=24.0,
            budget_dollars=350.0,
        )

    def test_multiple_accuracy_tiers_present(self, frontier):
        assert len(frontier.accuracies_available()) >= 2
        assert len(frontier) > 4

    def test_points_mutually_nondominated(self, frontier):
        for p in frontier.points:
            for q in frontier.points:
                if p is q:
                    continue
                dominates = (
                    q.time_hours <= p.time_hours
                    and q.cost_dollars <= p.cost_dollars
                    and q.accuracy_score >= p.accuracy_score
                    and (q.time_hours < p.time_hours
                         or q.cost_dollars < p.cost_dollars
                         or q.accuracy_score > p.accuracy_score)
                )
                assert not dominates, (p, q)

    def test_higher_accuracy_costs_more_at_minimum(self, frontier):
        tiers = frontier.accuracies_available()
        costs = [frontier.cheapest_at(a).cost_dollars for a in tiers]
        assert costs == sorted(costs)

    def test_best_accuracy(self, frontier):
        best = frontier.best_accuracy()
        assert best.accuracy == max(frontier.accuracies_available())

    def test_all_points_within_constraints(self, frontier):
        for p in frontier.points:
            assert p.time_hours < 24.0
            assert p.cost_dollars < 350.0

    def test_render(self, frontier):
        text = frontier.render()
        assert "tri-objective frontier" in text
        assert "accuracy tiers" in text

    def test_empty_when_infeasible(self, celia_ec2, galaxy):
        frontier = tri_objective_frontier(
            celia_ec2.evaluation(galaxy),
            celia_ec2.demand_model(galaxy),
            galaxy.accuracy_score,
            problem_size=65_536,
            accuracy_levels=np.array([8_000]),
            deadline_hours=0.001,
            budget_dollars=0.001,
        )
        assert len(frontier) == 0
        with pytest.raises(ValidationError):
            frontier.best_accuracy()
