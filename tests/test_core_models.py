"""Tests for the analytical models (Eq. 2-6)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.capacity import (
    capacity_from_per_vcpu,
    capacity_per_type,
    configuration_capacity,
)
from repro.core.costmodel import configuration_unit_cost, predict_cost
from repro.core.timemodel import predict_time_hours, predict_time_seconds
from repro.errors import ValidationError

positive = st.floats(1e-3, 1e9, allow_nan=False, allow_infinity=False)


class TestCapacity:
    def test_eq4_per_vcpu(self):
        # W_i = W_i,vCPU * v_i.
        assert capacity_from_per_vcpu(1.375, 2) == pytest.approx(2.75)
        np.testing.assert_allclose(
            capacity_from_per_vcpu(np.array([1.0, 2.0]), np.array([2, 4])),
            [2.0, 8.0])

    def test_eq4_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            capacity_from_per_vcpu(0.0, 2)

    def test_eq3_single_configuration(self):
        w = np.array([2.0, 4.0, 8.0])
        u = configuration_capacity(np.array([1, 2, 0]), w)
        assert u[0] == pytest.approx(2 + 8)

    def test_eq3_matrix(self):
        w = np.array([1.0, 10.0])
        configs = np.array([[1, 0], [0, 1], [2, 3]])
        np.testing.assert_allclose(configuration_capacity(configs, w),
                                   [1.0, 10.0, 32.0])

    def test_eq3_is_linear_in_nodes(self):
        w = np.array([2.0, 3.0])
        u1 = configuration_capacity(np.array([1, 1]), w)[0]
        u2 = configuration_capacity(np.array([2, 2]), w)[0]
        assert u2 == pytest.approx(2 * u1)

    def test_width_mismatch(self):
        with pytest.raises(ValidationError):
            configuration_capacity(np.array([1, 2]), np.array([1.0]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            configuration_capacity(np.array([-1, 2]), np.array([1.0, 1.0]))

    def test_capacity_vector_validation(self):
        with pytest.raises(ValidationError):
            capacity_per_type(np.array([1.0, 0.0]))
        with pytest.raises(ValidationError):
            capacity_per_type(np.array([np.inf]))
        with pytest.raises(ValidationError):
            capacity_per_type(np.array([[1.0]]))


class TestTimeModel:
    def test_eq2(self):
        # T = D / U: 7200 GI at 2 GI/s = 3600 s = 1 h.
        assert predict_time_seconds(7200, 2.0) == pytest.approx(3600)
        assert predict_time_hours(7200, 2.0) == pytest.approx(1.0)

    def test_broadcasts(self):
        times = predict_time_hours(3600.0, np.array([1.0, 2.0]))
        np.testing.assert_allclose(times, [1.0, 0.5])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            predict_time_seconds(0, 1)
        with pytest.raises(ValidationError):
            predict_time_seconds(1, 0)

    @given(positive, positive)
    def test_monotonicity(self, demand, capacity):
        t = predict_time_seconds(demand, capacity)
        assert predict_time_seconds(2 * demand, capacity) == pytest.approx(2 * t)
        assert predict_time_seconds(demand, 2 * capacity) == pytest.approx(t / 2)


class TestCostModel:
    def test_eq6(self):
        prices = np.array([0.105, 0.209])
        cu = configuration_unit_cost(np.array([2, 1]), prices)
        assert cu[0] == pytest.approx(0.419)

    def test_eq5(self):
        assert predict_cost(24.0, 5.25) == pytest.approx(126.0)

    def test_eq5_broadcast(self):
        np.testing.assert_allclose(
            predict_cost(np.array([1.0, 2.0]), 3.0), [3.0, 6.0])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            predict_cost(-1.0, 1.0)

    def test_table_iv_galaxy_row_consistency(self, ec2):
        """The paper's galaxy(65536, 8000) row: [5,5,5,3,...] at 24 h
        costs $126 — only with the largest-first type ordering."""
        config = np.array([5, 5, 5, 3, 0, 0, 0, 0, 0])
        cu = configuration_unit_cost(config, ec2.prices)[0]
        assert predict_cost(24.0, cu) == pytest.approx(126.3, rel=0.01)

    @given(positive, positive)
    def test_cost_linear_in_time(self, t, cu):
        assert predict_cost(2 * t, cu) == pytest.approx(
            2 * predict_cost(t, cu), rel=1e-9)
