"""Tests for injectable provisioning faults (:mod:`repro.cloud.faults`)."""

import numpy as np
import pytest

from repro.cloud.faults import ProvisioningFaultModel
from repro.cloud.provider import CloudProvider
from repro.errors import (
    ApiThrottledError,
    InsufficientCapacityError,
    ValidationError,
)

NAMES = ["a.small", "a.big", "b.small"]


def draw_outcomes(model: ProvisioningFaultModel, attempts: int,
                  requested=None) -> list[str]:
    """Classify ``attempts`` consecutive check() calls."""
    vec = np.array([1, 2, 0]) if requested is None else requested
    outcomes = []
    for _ in range(attempts):
        try:
            model.check(vec, NAMES)
        except ApiThrottledError:
            outcomes.append("throttled")
        except InsufficientCapacityError as exc:
            outcomes.append(f"capacity:{exc.type_name}")
        else:
            outcomes.append("ok")
    return outcomes


class TestModel:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            ProvisioningFaultModel(insufficient_capacity_rate=1.5)
        with pytest.raises(ValidationError):
            ProvisioningFaultModel(throttle_rate=-0.1)

    def test_default_and_none_never_fault(self):
        for model in (ProvisioningFaultModel(), ProvisioningFaultModel.none()):
            assert not model.enabled
            assert draw_outcomes(model, 50) == ["ok"] * 50

    def test_throttle_rate_one_always_throttles(self):
        model = ProvisioningFaultModel(throttle_rate=1.0, seed=3)
        assert draw_outcomes(model, 10) == ["throttled"] * 10

    def test_capacity_fault_names_a_requested_type(self):
        model = ProvisioningFaultModel(insufficient_capacity_rate=1.0, seed=3)
        for outcome in draw_outcomes(model, 20):
            kind, name = outcome.split(":")
            assert kind == "capacity"
            assert name in ("a.small", "a.big")  # b.small not requested

    def test_same_seed_same_fault_sequence(self):
        kwargs = dict(insufficient_capacity_rate=0.3, throttle_rate=0.3,
                      seed=11)
        first = draw_outcomes(ProvisioningFaultModel(**kwargs), 60)
        second = draw_outcomes(ProvisioningFaultModel(**kwargs), 60)
        assert first == second
        assert {"throttled", "ok"} <= set(first)  # mixed, not degenerate

    def test_different_seeds_diverge(self):
        kwargs = dict(insufficient_capacity_rate=0.4, throttle_rate=0.3)
        a = draw_outcomes(ProvisioningFaultModel(seed=1, **kwargs), 60)
        b = draw_outcomes(ProvisioningFaultModel(seed=2, **kwargs), 60)
        assert a != b


class TestProviderIntegration:
    def test_faultless_provider_unchanged(self, small_catalog):
        provider = CloudProvider(small_catalog)
        lease = provider.provision((1, 1, 0), now_hours=0.0)
        assert len(lease.instances) == 2

    def test_injected_faults_surface_as_typed_errors(self, small_catalog):
        provider = CloudProvider(
            small_catalog,
            fault_model=ProvisioningFaultModel(throttle_rate=1.0, seed=0))
        with pytest.raises(ApiThrottledError):
            provider.provision((1, 0, 0), now_hours=0.0)
        # A faulted attempt must not leak a lease or consume quota.
        assert provider.available().tolist() == \
            list(small_catalog.quotas)

    def test_capacity_fault_reports_type_index(self, small_catalog):
        provider = CloudProvider(
            small_catalog,
            fault_model=ProvisioningFaultModel(
                insufficient_capacity_rate=1.0, seed=0))
        with pytest.raises(InsufficientCapacityError) as err:
            provider.provision((0, 2, 0), now_hours=0.0)
        assert err.value.type_index == 1
        assert err.value.type_name == "a.big"
