"""Tests for resource characterization (Section IV-B/C, Figure 3)."""

import numpy as np
import pytest

from repro.cloud.instance import ResourceCategory
from repro.core.characterization import characterize_resources
from repro.errors import ValidationError
from repro.measurement.perf import PerfCounter


@pytest.fixture(scope="module")
def galaxy_characterization(ec2=None):
    from repro.apps import GalaxyApp
    from repro.cloud.catalog import ec2_catalog

    return characterize_resources(
        GalaxyApp(), ec2_catalog(), PerfCounter(seed=0), seed=0)


class TestCharacterization:
    def test_entries_align_with_catalog(self, ec2, galaxy_characterization):
        names = [e.type_name for e in galaxy_characterization.entries]
        assert names == ec2.names

    def test_capacity_vector_positive(self, galaxy_characterization):
        assert np.all(galaxy_characterization.capacity_vector() > 0)

    def test_normalized_performance(self, galaxy_characterization):
        norm = galaxy_characterization.normalized()
        # Figure 3: galaxy on c4 is ~26 GI/s per $/h.
        assert norm["c4.large"] == pytest.approx(26.2, rel=0.1)

    def test_category_ratios_match_paper(self, galaxy_characterization):
        ratios = galaxy_characterization.category_ratios(
            ResourceCategory.MEMORY)
        assert ratios[ResourceCategory.COMPUTE] == pytest.approx(2.0, rel=0.1)
        assert ratios[ResourceCategory.GENERAL] == pytest.approx(1.5, rel=0.1)
        assert ratios[ResourceCategory.MEMORY] == 1.0

    def test_within_category_spread_small(self, galaxy_characterization):
        """Section IV-C's premise: GI/s-per-$ nearly constant in-category."""
        spread = galaxy_characterization.within_category_spread()
        assert all(s < 0.10 for s in spread.values())

    def test_by_category_method(self):
        from repro.apps import GalaxyApp
        from repro.cloud.catalog import ec2_catalog

        result = characterize_resources(
            GalaxyApp(), ec2_catalog(), PerfCounter(seed=0),
            method="by-category", seed=0)
        assert result.method == "by-category"
        assert sum(1 for e in result.entries if not e.extrapolated) == 3
        # Extrapolated entries have exactly zero within-category spread
        # relative to their representative by construction.
        spread = result.within_category_spread()
        assert all(s < 0.02 for s in spread.values())

    def test_unknown_method_rejected(self):
        from repro.apps import GalaxyApp
        from repro.cloud.catalog import ec2_catalog

        with pytest.raises(ValidationError):
            characterize_resources(GalaxyApp(), ec2_catalog(),
                                   PerfCounter(seed=0), method="oracle")

    def test_unknown_reference_category(self, galaxy_characterization):
        result = galaxy_characterization

        class FakeCategory:
            pass

        with pytest.raises(ValidationError):
            result.category_ratios(FakeCategory())
