"""Tests for configuration-space enumeration (Eq. 1 + the codec)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import make_catalog
from repro.core.configspace import ConfigurationSpace
from repro.errors import ConfigurationError
from tests.conftest import brute_force_space


class TestSize:
    def test_eq1_small(self, small_space):
        assert small_space.size == 3**3 - 1 == 26

    def test_eq1_paper(self, ec2):
        assert ConfigurationSpace(ec2).size == 10_077_695


class TestCodec:
    def test_decode_covers_space_exactly(self, small_catalog, small_space):
        decoded = small_space.decode(np.arange(1, small_space.size + 1))
        expected = brute_force_space(small_catalog)
        assert {tuple(r) for r in decoded} == {tuple(r) for r in expected}
        assert decoded.shape[0] == small_space.size

    def test_encode_decode_round_trip(self, small_space):
        for index in range(1, small_space.size + 1):
            config = small_space.decode(index)[0]
            assert small_space.encode(config) == index

    def test_first_type_most_significant(self, small_space):
        # Index 1 is <0,0,1>; the largest index is the full quota.
        np.testing.assert_array_equal(small_space.decode(1)[0], [0, 0, 1])
        np.testing.assert_array_equal(
            small_space.decode(small_space.size)[0], [2, 2, 2])

    def test_out_of_range_rejected(self, small_space):
        with pytest.raises(ConfigurationError):
            small_space.decode(0)
        with pytest.raises(ConfigurationError):
            small_space.decode(small_space.size + 1)

    def test_encode_rejects_empty_and_overquota(self, small_space):
        with pytest.raises(ConfigurationError):
            small_space.encode(np.array([0, 0, 0]))
        with pytest.raises(ConfigurationError):
            small_space.encode(np.array([3, 0, 0]))
        with pytest.raises(ConfigurationError):
            small_space.encode(np.array([1, 1]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(1, 5), min_size=1, max_size=5),
           st.integers(0, 10**6))
    def test_round_trip_random_catalogs(self, quotas, raw_index):
        rows = [(f"t{k}", 2, 2.0, 0.1 * (k + 1)) for k in range(len(quotas))]
        catalog = make_catalog(rows, quota=1)
        catalog = catalog.__class__(types=catalog.types, quotas=tuple(quotas))
        space = ConfigurationSpace(catalog)
        index = 1 + raw_index % space.size
        config = space.decode(index)[0]
        assert space.encode(config) == index
        assert np.all(config <= np.array(quotas))


class TestChunking:
    def test_chunks_cover_space_in_order(self, small_space):
        seen = []
        for start, matrix in small_space.iter_chunks(chunk_size=7):
            assert matrix.shape[1] == 3
            seen.extend(range(start, start + matrix.shape[0]))
        assert seen == list(range(1, small_space.size + 1))

    def test_chunk_contents_match_decode(self, small_space):
        for start, matrix in small_space.iter_chunks(chunk_size=5):
            np.testing.assert_array_equal(
                matrix,
                small_space.decode(
                    np.arange(start, start + matrix.shape[0])))

    def test_bad_chunk_size(self, small_space):
        with pytest.raises(ConfigurationError):
            next(small_space.iter_chunks(chunk_size=0))


class TestEvaluation:
    def test_matches_brute_force(self, small_catalog, small_space,
                                 small_capacities):
        evaluation = small_space.evaluate(small_capacities, chunk_size=4)
        expected = brute_force_space(small_catalog)
        # Row r of the evaluation is linear index r+1.
        for r in range(small_space.size):
            config = small_space.decode(r + 1)[0]
            assert evaluation.capacity_gips[r] == pytest.approx(
                float(config @ small_capacities))
            assert evaluation.unit_cost_per_hour[r] == pytest.approx(
                float(config @ small_catalog.prices))
        assert evaluation.capacity_gips.shape[0] == expected.shape[0]

    def test_times_and_costs(self, small_space, small_capacities):
        evaluation = small_space.evaluate(small_capacities)
        demand = 3600.0  # GI
        times = evaluation.times_hours(demand)
        np.testing.assert_allclose(
            times, demand / evaluation.capacity_gips / 3600.0)
        costs = evaluation.costs(demand)
        np.testing.assert_allclose(costs,
                                   times * evaluation.unit_cost_per_hour)

    def test_configuration_at(self, small_space, small_capacities):
        evaluation = small_space.evaluate(small_capacities)
        assert evaluation.configuration_at(0) == (0, 0, 1)

    def test_nonpositive_demand_rejected(self, small_space, small_capacities):
        evaluation = small_space.evaluate(small_capacities)
        with pytest.raises(ConfigurationError):
            evaluation.times_hours(0.0)
