"""Tests for Algorithm 1 (feasibility + Pareto selection)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import make_catalog
from repro.core.configspace import ConfigurationSpace
from repro.core.selection import (
    select_configurations,
    select_configurations_batch,
)
from repro.errors import ValidationError
from repro.pareto.frontier import pareto_mask_2d
from tests.conftest import brute_force_space


def brute_force_selection(catalog, capacities, demand, deadline, budget):
    """Reference implementation of Algorithm 1 by direct enumeration.

    Times, costs and dominance use the library's canonical forms:
    ``T = fl(fl(D/U)/3600)``, ``C = fl(fl(D·r)/3600)`` with
    ``r = fl(C_u/U)``, and nondomination over the demand-free proxies
    ``(−U, r)`` — the exact real-arithmetic (time, cost) ordering.
    Filtering rounded ``(T, C)`` values instead would occasionally
    collapse distinct configurations into spurious ties (e.g. capacities
    one summation-order ulp apart whose times round equal), making the
    "frontier" depend on rounding noise rather than on dominance.
    """
    configs = brute_force_space(catalog)
    capacity = configs @ capacities
    unit_cost = configs @ catalog.prices
    ratio = unit_cost / capacity
    times = demand / capacity / 3600.0
    costs = demand * ratio / 3600.0
    feasible = (times < deadline) & (costs < budget)
    f_configs = configs[feasible]
    mask = pareto_mask_2d(-capacity[feasible], ratio[feasible])
    return feasible.sum(), {tuple(c) for c in f_configs[mask]}


class TestSelection:
    def test_matches_brute_force(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities, chunk_size=4)
        demand = 50_000.0
        result = select_configurations(evaluation, demand, 5.0, 3.0,
                                       chunk_size=4)
        expected_count, expected_pareto = brute_force_selection(
            small_catalog, small_capacities, demand, 5.0, 3.0)
        assert result.feasible_count == expected_count
        assert {p.configuration for p in result.pareto} == expected_pareto

    def test_strict_inequalities(self, small_catalog, small_capacities):
        """Algorithm 1 uses T < T' and C < C' (strict)."""
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        # Pick a demand such that one configuration lands exactly on T'.
        row = 0
        demand = evaluation.capacity_gips[row] * 3600.0  # exactly 1 hour
        result = select_configurations(evaluation, demand, 1.0, 1e9)
        times = evaluation.times_hours(demand)
        assert result.feasible_count == int(np.sum(times < 1.0))

    def test_infeasible_constraints_empty(self, small_catalog,
                                          small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        result = select_configurations(evaluation, 1e12, 0.001, 0.001)
        assert result.feasible_count == 0
        assert result.pareto_count == 0
        with pytest.raises(ValidationError):
            result.cost_span

    def test_pareto_points_sorted_by_time(self, small_catalog,
                                          small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        result = select_configurations(evaluation, 50_000.0, 10.0, 10.0)
        times = [p.time_hours for p in result.pareto]
        assert times == sorted(times)
        costs = [p.cost_dollars for p in result.pareto]
        assert costs == sorted(costs, reverse=True)

    def test_cheapest_and_fastest(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        result = select_configurations(evaluation, 50_000.0, 10.0, 10.0)
        assert result.cheapest().cost_dollars == min(
            p.cost_dollars for p in result.pareto)
        assert result.fastest().time_hours == min(
            p.time_hours for p in result.pareto)

    def test_max_saving_fraction(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        result = select_configurations(evaluation, 50_000.0, 10.0, 10.0)
        lo, hi = result.cost_span
        assert result.max_saving_fraction == pytest.approx(1 - lo / hi)

    def test_invalid_inputs(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        with pytest.raises(ValidationError):
            select_configurations(evaluation, 0.0, 1.0, 1.0)
        with pytest.raises(ValidationError):
            select_configurations(evaluation, 1.0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            select_configurations(evaluation, 1.0, 1.0, 0.0)

    def test_chunking_invariance(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        big = select_configurations(evaluation, 50_000.0, 5.0, 3.0,
                                    chunk_size=10_000)
        tiny = select_configurations(evaluation, 50_000.0, 5.0, 3.0,
                                     chunk_size=3)
        assert big.feasible_count == tiny.feasible_count
        assert {p.configuration for p in big.pareto} == \
            {p.configuration for p in tiny.pareto}

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.5, 10.0), min_size=2, max_size=4),
        st.floats(1e3, 1e6),
        st.floats(0.5, 50.0),
        st.floats(0.1, 100.0),
    )
    def test_random_catalogs_match_brute_force(self, rates, demand,
                                               deadline, budget):
        rows = [(f"t{k}", 2, 2.0, 0.05 * (k + 1)) for k in range(len(rates))]
        catalog = make_catalog(rows, quota=2)
        capacities = np.asarray(rates)
        space = ConfigurationSpace(catalog)
        evaluation = space.evaluate(capacities)
        result = select_configurations(evaluation, demand, deadline, budget,
                                       chunk_size=5)
        expected_count, expected_pareto = brute_force_selection(
            catalog, capacities, demand, deadline, budget)
        assert result.feasible_count == expected_count
        assert {p.configuration for p in result.pareto} == expected_pareto


class TestIndexedSelection:
    """The demand-invariant fast path must match the streamed scan exactly."""

    # The fixtures are deterministic and read-only, so sharing them across
    # generated examples is sound.
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        demand=st.floats(1e2, 1e8),
        deadline=st.floats(0.01, 200.0),
        budget=st.floats(0.01, 500.0),
    )
    def test_indexed_equals_streamed(self, small_catalog, small_capacities,
                                     demand, deadline, budget):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        streamed = select_configurations(evaluation, demand, deadline, budget,
                                         method="streamed", chunk_size=7)
        indexed = select_configurations(evaluation, demand, deadline, budget,
                                        method="indexed")
        assert indexed.feasible_count == streamed.feasible_count
        assert [p.configuration for p in indexed.pareto] == \
            [p.configuration for p in streamed.pareto]
        assert [p.time_hours for p in indexed.pareto] == \
            [p.time_hours for p in streamed.pareto]
        assert [p.cost_dollars for p in indexed.pareto] == \
            [p.cost_dollars for p in streamed.pareto]

    @settings(max_examples=15, deadline=None)
    @given(
        rates=st.lists(st.floats(0.5, 10.0), min_size=2, max_size=4),
        demand=st.floats(1e3, 1e6),
        deadline=st.floats(0.5, 50.0),
        budget=st.floats(0.1, 100.0),
    )
    def test_random_catalogs_indexed_equals_streamed(self, rates, demand,
                                                     deadline, budget):
        rows = [(f"t{k}", 2, 2.0, 0.05 * (k + 1)) for k in range(len(rates))]
        catalog = make_catalog(rows, quota=3)
        space = ConfigurationSpace(catalog)
        evaluation = space.evaluate(np.asarray(rates))
        streamed = select_configurations(evaluation, demand, deadline, budget,
                                         method="streamed", chunk_size=13)
        indexed = select_configurations(evaluation, demand, deadline, budget,
                                        method="indexed")
        assert indexed.feasible_count == streamed.feasible_count
        assert [p.configuration for p in indexed.pareto] == \
            [p.configuration for p in streamed.pareto]

    def test_small_feasibility_blocks(self, small_catalog, small_capacities):
        """Block decomposition is exact for any block size."""
        from repro.core.selection import FrontierIndex

        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        reference = select_configurations(evaluation, 50_000.0, 5.0, 3.0,
                                          method="streamed")
        for block in (1, 2, 3, 26, 1000):
            index = FrontierIndex(evaluation, block_size=block)
            assert index.feasible_count(50_000.0, 5.0, 3.0) == \
                reference.feasible_count

    def test_concurrent_feasibility_builds_are_safe(self, small_catalog,
                                                    small_capacities):
        """The lazy feasibility structure publishes its guard attribute
        last, so threads racing through `feasible_count` (the service
        computes batches on executor threads) never observe a
        half-built index."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.selection import FrontierIndex

        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        reference = select_configurations(evaluation, 50_000.0, 5.0, 3.0,
                                          method="streamed")
        with ThreadPoolExecutor(max_workers=4) as pool:
            for _ in range(50):
                index = FrontierIndex(evaluation)
                counts = list(pool.map(
                    lambda _i, idx=index: idx.feasible_count(
                        50_000.0, 5.0, 3.0), range(4)))
                assert counts == [reference.feasible_count] * 4

    def test_epsilons_equivalent(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        streamed = select_configurations(evaluation, 50_000.0, 10.0, 10.0,
                                         method="streamed",
                                         epsilons=(2.0, 2.0))
        indexed = select_configurations(evaluation, 50_000.0, 10.0, 10.0,
                                        method="indexed", epsilons=(2.0, 2.0))
        assert [p.configuration for p in indexed.pareto] == \
            [p.configuration for p in streamed.pareto]

    def test_infeasible_query(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        result = select_configurations(evaluation, 1e12, 0.001, 0.001,
                                       method="indexed")
        assert result.feasible_count == 0
        assert result.pareto_count == 0

    def test_indexed_rejects_exclude_mask(self, small_catalog,
                                          small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        mask = np.zeros(space.size, dtype=bool)
        mask[0] = True
        with pytest.raises(ValidationError):
            select_configurations(evaluation, 1e5, 5.0, 3.0,
                                  exclude_mask=mask, method="indexed")

    def test_auto_streams_with_exclude_mask(self, small_catalog,
                                            small_capacities):
        """auto + exclude_mask must stream, even with an index built."""
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        evaluation.frontier_index()  # force the index into the cache
        mask = np.ones(space.size, dtype=bool)
        result = select_configurations(evaluation, 1e5, 1e9, 1e9,
                                       exclude_mask=mask)
        assert result.feasible_count == 0

    def test_auto_uses_index_when_present(self, small_catalog,
                                          small_capacities, monkeypatch):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        index = evaluation.frontier_index()
        called = {}
        original = index.select

        def spy(*args, **kwargs):
            called["yes"] = True
            return original(*args, **kwargs)

        monkeypatch.setattr(index, "select", spy)
        select_configurations(evaluation, 1e5, 5.0, 3.0)
        assert called

    def test_frontier_rows_are_demand_invariant(self, small_catalog,
                                                small_capacities):
        """One frontier serves wildly different demands."""
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        frontier = set(evaluation.frontier_index().frontier_rows.tolist())
        for demand in (1e2, 1e5, 1e9):
            unconstrained = select_configurations(
                evaluation, demand, 1e12, 1e12, method="streamed")
            rows = {
                space.encode(np.asarray(p.configuration)) - 1
                for p in unconstrained.pareto
            }
            assert rows == frontier


class TestBatchedSelection:
    """The service's vectorized entry point must change no answer."""

    QUERIES = [
        (50_000.0, 5.0, 3.0),       # partial feasible set
        (1_000.0, 24.0, 50.0),      # everything feasible
        (1e12, 0.001, 0.001),       # nothing feasible
        (123_456.789, 7.5, 1.25),   # irrational-ish floats
    ]

    def test_batch_equals_scalar_indexed(self, small_catalog,
                                         small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        demands, deadlines, budgets = zip(*self.QUERIES)
        batch = select_configurations_batch(evaluation, demands, deadlines,
                                            budgets)
        for (d, t, c), result in zip(self.QUERIES, batch):
            single = select_configurations(evaluation, d, t, c,
                                           method="indexed")
            assert result == single  # dataclass equality: bit-identical

    def test_batch_equals_streamed(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        demands, deadlines, budgets = zip(*self.QUERIES)
        batch = select_configurations_batch(evaluation, demands, deadlines,
                                            budgets)
        for (d, t, c), result in zip(self.QUERIES, batch):
            streamed = select_configurations(evaluation, d, t, c,
                                             method="streamed")
            assert result.feasible_count == streamed.feasible_count
            assert result.pareto == streamed.pareto

    def test_single_query_batch(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        batch = select_configurations_batch(evaluation, [50_000.0], [5.0],
                                            [3.0])
        assert len(batch) == 1
        assert batch[0] == select_configurations(evaluation, 50_000.0, 5.0,
                                                 3.0, method="indexed")

    def test_mismatched_lengths_rejected(self, small_catalog,
                                         small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        with pytest.raises(ValidationError):
            select_configurations_batch(evaluation, [1.0, 2.0], [5.0], [3.0])

    def test_invalid_query_rejected(self, small_catalog, small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        with pytest.raises(ValidationError):
            select_configurations_batch(evaluation, [1.0, -1.0], [5.0, 5.0],
                                        [3.0, 3.0])

    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        demands=st.lists(st.floats(min_value=1e2, max_value=1e9),
                         min_size=1, max_size=8),
        deadline=st.floats(min_value=0.1, max_value=100.0),
        budget=st.floats(min_value=0.1, max_value=1000.0),
    )
    def test_random_batches_match_scalar(self, demands, deadline, budget):
        catalog = make_catalog(
            [("a", 2, 2.0, 0.10), ("b", 4, 2.0, 0.21), ("c", 2, 2.5, 0.16)],
            quota=2,
        )
        space = ConfigurationSpace(catalog)
        evaluation = space.evaluate(np.array([2.0, 4.2, 1.5]))
        batch = select_configurations_batch(
            evaluation, demands, [deadline] * len(demands),
            [budget] * len(demands))
        for d, result in zip(demands, batch):
            assert result == select_configurations(evaluation, d, deadline,
                                                   budget, method="indexed")


class TestEpsilonSelection:
    def test_epsilon_filter_thins_frontier(self, small_catalog,
                                           small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        exact = select_configurations(evaluation, 50_000.0, 10.0, 10.0)
        coarse = select_configurations(evaluation, 50_000.0, 10.0, 10.0,
                                       epsilons=(5.0, 5.0))
        assert coarse.pareto_count <= exact.pareto_count
        assert coarse.pareto_count >= 1

    def test_epsilon_points_subset_of_feasible(self, small_catalog,
                                               small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        coarse = select_configurations(evaluation, 50_000.0, 10.0, 10.0,
                                       epsilons=(2.0, 2.0))
        for p in coarse.pareto:
            assert p.time_hours < 10.0
            assert p.cost_dollars < 10.0

    def test_tiny_epsilon_matches_exact(self, small_catalog,
                                        small_capacities):
        space = ConfigurationSpace(small_catalog)
        evaluation = space.evaluate(small_capacities)
        exact = select_configurations(evaluation, 50_000.0, 10.0, 10.0)
        fine = select_configurations(evaluation, 50_000.0, 10.0, 10.0,
                                     epsilons=(1e-9, 1e-9))
        assert {p.configuration for p in fine.pareto} == \
            {p.configuration for p in exact.pareto}
