"""Tests for the configurable synthetic application."""

import numpy as np
import pytest

from repro.apps.base import ExecutionStyle
from repro.apps.demand import LinearTerm, LogTerm, SeparableDemand
from repro.apps.synthetic import SyntheticApp
from repro.errors import ValidationError


def make_demand() -> SeparableDemand:
    return SeparableDemand(
        size_term=LinearTerm(slope=2.0),
        accuracy_term=LogTerm(coefficient=1.0, tau=0.1),
        scale=3.0,
    )


class TestSyntheticApp:
    def test_demand_delegation(self):
        app = SyntheticApp(make_demand())
        assert app.demand_gi(10, 1.0) == pytest.approx(
            3.0 * 20.0 * np.log1p(10.0))

    def test_domain_enforcement(self):
        app = SyntheticApp(make_demand(), size_domain=(1, 100),
                           accuracy_domain=(0.1, 1.0))
        with pytest.raises(ValidationError):
            app.validate_params(0.5, 0.5)
        with pytest.raises(ValidationError):
            app.validate_params(10, 2.0)
        app.validate_params(10, 0.5)

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValidationError):
            SyntheticApp(make_demand(), size_domain=(10, 1))

    def test_independent_workload_default_tasks(self):
        app = SyntheticApp(make_demand())
        w = app.workload(7, 1.0)
        assert w.style is ExecutionStyle.INDEPENDENT
        assert w.n_tasks == 7
        assert w.task_gi.sum() == pytest.approx(app.demand_gi(7, 1.0))

    def test_bsp_workload(self):
        app = SyntheticApp(make_demand(), style=ExecutionStyle.BSP)
        w = app.workload(10, 5.0)
        assert w.style is ExecutionStyle.BSP
        assert w.n_steps == 5
        assert w.step_gi * 5 == pytest.approx(app.demand_gi(10, 5.0))

    def test_workqueue_workload(self):
        app = SyntheticApp(make_demand(), style=ExecutionStyle.WORKQUEUE,
                           dispatch_seconds=0.5, n_tasks=20)
        w = app.workload(10, 1.0)
        assert w.style is ExecutionStyle.WORKQUEUE
        assert w.n_tasks == 20
        assert w.dispatch_seconds == 0.5

    def test_task_override(self):
        app = SyntheticApp(make_demand(), n_tasks=3)
        assert app.workload(100, 1.0).n_tasks == 3

    def test_heterogeneity_deterministic(self):
        app_a = SyntheticApp(make_demand(), task_size_sigma=0.5, seed=1)
        app_b = SyntheticApp(make_demand(), task_size_sigma=0.5, seed=1)
        np.testing.assert_allclose(app_a.workload(10, 1.0).task_gi,
                                   app_b.workload(10, 1.0).task_gi)

    def test_scale_down_grid_within_domain(self):
        app = SyntheticApp(make_demand(), size_domain=(4, 16),
                           accuracy_domain=(0.1, 0.2))
        sizes, accs = app.scale_down_grid()
        assert sizes.min() >= 4 and sizes.max() <= 16
        assert accs.max() <= 0.2

    def test_accuracy_score_bounded_domain(self):
        app = SyntheticApp(make_demand(), accuracy_domain=(0.1, 2.0))
        assert app.accuracy_score(1.0) == pytest.approx(0.5)

    def test_accuracy_score_unbounded_domain(self):
        app = SyntheticApp(make_demand())
        assert 0 < app.accuracy_score(3.0) < 1
        assert app.accuracy_score(30.0) > app.accuracy_score(3.0)

    def test_default_profile_uniform(self):
        app = SyntheticApp(make_demand())
        from repro.cloud.catalog import ec2_catalog

        catalog = ec2_catalog()
        c4l = catalog.type_named("c4.large")
        # IPC 1.0 everywhere: rate = vcpus * GHz.
        assert app.true_rate_gips(c4l) == pytest.approx(2 * 2.9)
