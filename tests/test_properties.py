"""Cross-cutting property-based tests (hypothesis) on simulator invariants.

These assert physical laws of the substrate rather than specific values:
no scheduler beats perfect parallelism, utilization stays in (0, 1],
billing is monotone, spot efficiency is a fraction, workflow makespans
respect both analytical bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import ExecutionStyle, Workload
from repro.cloud.catalog import ec2_catalog
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.engine.schedulers import (
    simulate_bsp,
    simulate_independent,
    simulate_workqueue,
    simulate_worksteal,
)

CATALOG = ec2_catalog()

task_lists = st.lists(st.floats(0.1, 500.0), min_size=1, max_size=60)
node_specs = st.lists(
    st.sampled_from(["c4.large", "c4.2xlarge", "m4.xlarge", "r3.large"]),
    min_size=1, max_size=4,
)
jitters = st.sampled_from([0.0, 0.02, 0.1])


def make_cluster(names, app):
    instances = [
        Instance(instance_id=f"i-{k}", itype=CATALOG.type_named(name))
        for k, name in enumerate(names)
    ]
    return SimCluster(instances, app)


class TestSchedulerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, names=node_specs, jitter=jitters,
           seed=st.integers(0, 100))
    def test_no_scheduler_beats_perfect_parallelism(self, galaxy, tasks,
                                                    names, jitter, seed):
        """makespan >= total work / aggregate rate, for every scheduler.

        Holds with jitter <= ... not in general (lucky jitter can speed a
        task up), so we assert against the jitter-free bound with a
        tolerance covering the maximum plausible speedup.
        """
        cluster = make_cluster(names, galaxy)
        arr = np.asarray(tasks)
        ideal = cluster.ideal_seconds(float(arr.sum()))
        for style, fn in (
            (ExecutionStyle.INDEPENDENT, simulate_independent),
            (ExecutionStyle.WORKQUEUE, simulate_workqueue),
            (ExecutionStyle.WORKQUEUE, simulate_worksteal),
        ):
            w = Workload(style=style, total_gi=float(arr.sum()), task_gi=arr)
            outcome = fn(w, cluster, np.random.default_rng(seed),
                         jitter_sigma=jitter)
            # lognormal(0, 0.1) speedups are bounded well below 1.6x.
            assert outcome.makespan_seconds >= ideal / 1.6

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_lists, names=node_specs, jitter=jitters,
           seed=st.integers(0, 100))
    def test_utilization_in_unit_interval(self, galaxy, tasks, names,
                                          jitter, seed):
        cluster = make_cluster(names, galaxy)
        arr = np.asarray(tasks)
        w = Workload(style=ExecutionStyle.INDEPENDENT,
                     total_gi=float(arr.sum()), task_gi=arr)
        outcome = simulate_independent(w, cluster,
                                       np.random.default_rng(seed),
                                       jitter_sigma=jitter)
        assert 0 < outcome.utilization <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(steps=st.integers(1, 200), step_gi=st.floats(0.5, 50.0),
           names=node_specs)
    def test_bsp_without_noise_equals_ideal(self, galaxy, steps, step_gi,
                                            names):
        cluster = make_cluster(names, galaxy)
        w = Workload(style=ExecutionStyle.BSP, total_gi=steps * step_gi,
                     n_steps=steps, step_gi=step_gi)
        outcome = simulate_bsp(w, cluster, np.random.default_rng(0),
                               jitter_sigma=0.0)
        ideal = cluster.ideal_seconds(w.total_gi)
        assert outcome.makespan_seconds == pytest.approx(ideal, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(tasks=task_lists, names=node_specs)
    def test_dispatch_cost_near_monotone(self, sand, tasks, names):
        """More master overhead (almost) never speeds the work queue up.

        "Almost": dispatch delays shift task start times, which can
        re-route a heavy task onto a faster slot — the classic Graham
        list-scheduling anomaly — so tiny *improvements* are legitimate.
        We assert the improvement can never exceed the anomaly scale (a
        few percent on heterogeneous clusters), while large dispatch
        costs still dominate.
        """
        cluster = make_cluster(names, sand)
        arr = np.asarray(tasks)
        results = []
        for dispatch in (0.0, 0.5):
            w = Workload(style=ExecutionStyle.WORKQUEUE,
                         total_gi=float(arr.sum()), task_gi=arr,
                         dispatch_seconds=dispatch)
            outcome = simulate_workqueue(w, cluster,
                                         np.random.default_rng(1),
                                         jitter_sigma=0.0)
            results.append(outcome.makespan_seconds)
        assert results[1] >= results[0] * 0.80


class TestSpotInvariants:
    @settings(max_examples=25, deadline=None)
    @given(bid=st.floats(0.3, 1.0), seed=st.integers(0, 50))
    def test_efficiency_is_a_fraction(self, ec2, bid, seed):
        from repro.spot.checkpoint import CheckpointPolicy
        from repro.spot.execution import SpotRunConfig, simulate_spot_run

        run = SpotRunConfig(
            configuration=(1, 0, 0, 0, 0, 0, 0, 0, 0),
            capacity_gips=10.0,
            demand_gi=50_000.0,
            bid_fraction=bid,
            policy=CheckpointPolicy.young(8.0),
        )
        outcome = simulate_spot_run(run, ec2, seed=seed)
        assert 0.0 <= outcome.efficiency <= 1.0
        assert outcome.cost_dollars >= 0.0
        assert outcome.useful_hours >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 30))
    def test_completion_implies_enough_useful_work(self, ec2, seed):
        from repro.spot.checkpoint import CheckpointPolicy
        from repro.spot.execution import SpotRunConfig, simulate_spot_run

        run = SpotRunConfig(
            configuration=(1, 0, 0, 0, 0, 0, 0, 0, 0),
            capacity_gips=10.0,
            demand_gi=30_000.0,
            bid_fraction=0.8,
            policy=CheckpointPolicy.young(8.0),
        )
        outcome = simulate_spot_run(run, ec2, seed=seed)
        work_needed = (run.demand_gi / run.capacity_gips / 3600.0
                       * run.policy.overhead_factor())
        if outcome.completed:
            assert outcome.useful_hours >= work_needed - 1e-6


class TestWorkflowInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        stage_sizes=st.lists(
            st.tuples(st.integers(1, 20), st.floats(1.0, 100.0)),
            min_size=1, max_size=6),
        names=node_specs,
    )
    def test_makespan_respects_both_bounds(self, galaxy, stage_sizes, names):
        from repro.workflow import chain, execute_workflow, predict_workflow

        workflow = chain(stage_sizes)
        cluster = make_cluster(names, galaxy)
        report = execute_workflow(workflow, cluster)
        config = np.zeros(len(CATALOG), dtype=int)
        for name in names:
            config[CATALOG.index_of(name)] += 1
        capacities = np.array([galaxy.true_rate_gips(t) for t in CATALOG])
        pred = predict_workflow(workflow, config, CATALOG, capacities)
        assert report.makespan_hours >= pred.work_bound_hours * 0.999
        assert report.makespan_hours >= \
            pred.critical_path_bound_hours * 0.999

    @settings(max_examples=25, deadline=None)
    @given(branches=st.integers(1, 6), tasks=st.integers(1, 30),
           gi=st.floats(1.0, 50.0))
    def test_fork_join_total_work_conserved(self, branches, tasks, gi):
        from repro.workflow import fork_join

        workflow = fork_join(branches, tasks, gi)
        assert workflow.total_gi == pytest.approx(
            branches * tasks * gi + 2.0)
        assert sum(workflow.level_widths()) == branches * tasks + 2
