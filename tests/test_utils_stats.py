"""Tests for the bootstrap / binomial interval helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.stats import binomial_ci, bootstrap_ci


class TestBootstrapCi:
    def test_interval_contains_sample_mean_typically(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=60)
        lo, hi = bootstrap_ci(samples, seed=1)
        assert lo <= samples.mean() <= hi

    def test_wider_with_fewer_samples(self):
        rng = np.random.default_rng(1)
        big = rng.normal(0, 1, size=200)
        small = big[:10]
        lo_b, hi_b = bootstrap_ci(big, seed=2)
        lo_s, hi_s = bootstrap_ci(small, seed=2)
        assert (hi_s - lo_s) > (hi_b - lo_b)

    def test_single_sample_collapses(self):
        lo, hi = bootstrap_ci(np.array([5.0]))
        assert lo == hi == 5.0

    def test_custom_statistic(self):
        samples = np.array([1.0, 2.0, 3.0, 100.0])
        lo, hi = bootstrap_ci(samples, statistic=np.median, seed=0)
        assert lo >= 1.0 and hi <= 100.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValidationError):
            bootstrap_ci(np.array([1.0]), confidence=1.0)
        with pytest.raises(ValidationError):
            bootstrap_ci(np.array([1.0, 2.0]), n_resamples=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    def test_interval_within_sample_range(self, values):
        arr = np.asarray(values)
        lo, hi = bootstrap_ci(arr, seed=3)
        assert arr.min() - 1e-9 <= lo <= hi <= arr.max() + 1e-9


class TestBinomialCi:
    def test_half_and_half(self):
        lo, hi = binomial_ci(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_zero_successes_lower_bound_zero(self):
        lo, hi = binomial_ci(0, 20)
        assert lo == 0.0
        assert 0 < hi < 0.25

    def test_all_successes_upper_bound_one(self):
        lo, hi = binomial_ci(20, 20)
        assert hi == 1.0
        assert 0.75 < lo < 1.0

    def test_more_trials_tighter(self):
        lo1, hi1 = binomial_ci(5, 10)
        lo2, hi2 = binomial_ci(50, 100)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            binomial_ci(1, 0)
        with pytest.raises(ValidationError):
            binomial_ci(5, 3)
        with pytest.raises(ValidationError):
            binomial_ci(1, 2, confidence=0.0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 50), st.integers(1, 50))
    def test_interval_always_valid(self, k, extra):
        n = k + extra
        lo, hi = binomial_ci(k, n)
        assert 0.0 <= lo <= k / n <= hi <= 1.0
