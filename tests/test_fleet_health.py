"""Fleet health machinery: the timeline and the heartbeat prober.

These are unit tests against a scripted fake fleet — no subprocesses —
pinning the detection contract: ``max_missed`` consecutive missed
probes eject a worker, one answered probe re-admits it, and both
transitions land on the timeline exactly once per incident.
"""

import asyncio

import repro.fleet.health as health_mod
from repro.fleet.health import FleetTimeline, HealthMonitor
from repro.fleet.rpc import WorkerGone


class FakeLink:
    """Answers ``__ping__`` from a mutable ``healthy`` flag."""

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.healthy = True
        self.probes = 0

    async def call(self, request, *, timeout_s=None):
        assert request["kind"] == "__ping__"
        self.probes += 1
        if not self.healthy:
            raise WorkerGone(self.worker_id, "no reply (fake)")
        return 200, {"ok": True, "worker": self.worker_id}


class FakeFleet:
    def __init__(self, worker_ids=("w0", "w1")):
        self.links = {wid: FakeLink(wid) for wid in worker_ids}
        self.timeline = FleetTimeline()
        self._down = set()
        self._restarting = set()

    @property
    def worker_ids(self):
        return tuple(sorted(self.links))

    @property
    def down(self):
        return frozenset(self._down)

    def link(self, worker_id):
        return self.links[worker_id]

    def restarting(self, worker_id):
        return worker_id in self._restarting

    def eject(self, worker_id, *, reason=""):
        if worker_id in self._down:
            return
        self._down.add(worker_id)
        self.timeline.record("ejected", worker_id, detail=reason)

    def readmit(self, worker_id, *, reason=""):
        if worker_id not in self._down:
            return
        self._down.discard(worker_id)
        self.timeline.record("readmitted", worker_id, detail=reason)


def make_monitor(fleet, **overrides):
    defaults = dict(interval_s=0.01, timeout_s=0.1, max_missed=2)
    defaults.update(overrides)
    return HealthMonitor(fleet, **defaults)


class TestTimeline:
    def test_events_are_sequenced_and_typed(self):
        timeline = FleetTimeline()
        timeline.record("fault-kill", "w1", at_s=1.0)
        timeline.record("ejected", "w1", detail="probe missed")
        events = timeline.events()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].kind == "fault-kill"
        assert events[0].at_s == 1.0
        assert events[1].at_s is None
        assert events[1].detail == "probe missed"

    def test_normalized_groups_kinds_per_worker(self):
        timeline = FleetTimeline()
        timeline.record("fault-kill", "w1")
        timeline.record("fault-hang", "w2")
        timeline.record("ejected", "w1")
        timeline.record("ejected", "w2")
        timeline.record("readmitted", "w1")
        assert timeline.normalized() == {
            "w1": ("fault-kill", "ejected", "readmitted"),
            "w2": ("fault-hang", "ejected"),
        }

    def test_normalized_strips_timing_so_replays_compare_equal(self):
        a, b = FleetTimeline(), FleetTimeline()
        a.record("ejected", "w0", detail="missed 2 probes")
        b.record("ejected", "w0", detail="missed 3 probes")
        assert a.normalized() == b.normalized()
        assert a.events() != b.events()

    def test_event_count_is_bounded(self):
        timeline = FleetTimeline()
        for i in range(health_mod._MAX_EVENTS + 10):
            timeline.record("ejected", f"w{i}")
        events = timeline.events()
        assert len(events) == health_mod._MAX_EVENTS
        # Oldest events fall off the front; sequence numbers keep going.
        assert events[-1].seq == health_mod._MAX_EVENTS + 9

    def test_to_dicts_round_trips_fields(self):
        timeline = FleetTimeline()
        timeline.record("fault-slow", "w0", at_s=6.0, detail="+0.05s")
        (event,) = timeline.to_dicts()
        assert event["kind"] == "fault-slow"
        assert event["worker"] == "w0"
        assert event["at_s"] == 6.0
        assert event["detail"] == "+0.05s"


class TestHealthMonitor:
    def test_healthy_fleet_is_left_alone(self):
        async def run():
            fleet = FakeFleet()
            monitor = make_monitor(fleet)
            for _ in range(3):
                await monitor.probe_all()
            assert fleet.down == frozenset()
            assert fleet.timeline.events() == ()

        asyncio.run(run())

    def test_ejection_needs_consecutive_misses(self):
        async def run():
            fleet = FakeFleet()
            monitor = make_monitor(fleet, max_missed=2)
            fleet.links["w1"].healthy = False
            await monitor.probe_all()
            assert fleet.down == frozenset()  # one miss is a blip
            await monitor.probe_all()
            assert fleet.down == {"w1"}
            assert fleet.timeline.normalized() == {"w1": ("ejected",)}

        asyncio.run(run())

    def test_a_success_resets_the_miss_count(self):
        async def run():
            fleet = FakeFleet()
            monitor = make_monitor(fleet, max_missed=2)
            link = fleet.links["w1"]
            link.healthy = False
            await monitor.probe_all()  # miss 1
            link.healthy = True
            await monitor.probe_all()  # success resets
            link.healthy = False
            await monitor.probe_all()  # miss 1 again, not 2
            assert fleet.down == frozenset()

        asyncio.run(run())

    def test_recovered_worker_is_readmitted(self):
        async def run():
            fleet = FakeFleet()
            monitor = make_monitor(fleet)
            link = fleet.links["w0"]
            link.healthy = False
            await monitor.probe_all()
            await monitor.probe_all()
            assert fleet.down == {"w0"}
            link.healthy = True
            await monitor.probe_all()
            assert fleet.down == frozenset()
            assert fleet.timeline.normalized() == {
                "w0": ("ejected", "readmitted")}

        asyncio.run(run())

    def test_ejection_recorded_once_per_incident(self):
        async def run():
            fleet = FakeFleet()
            monitor = make_monitor(fleet, max_missed=1)
            fleet.links["w1"].healthy = False
            for _ in range(4):  # stays down across many rounds
                await monitor.probe_all()
            assert fleet.timeline.normalized() == {"w1": ("ejected",)}

        asyncio.run(run())

    def test_restarting_worker_is_skipped(self):
        async def run():
            fleet = FakeFleet()
            monitor = make_monitor(fleet, max_missed=1)
            fleet.links["w1"].healthy = False
            fleet._restarting.add("w1")
            await monitor.probe_all()
            assert fleet.down == frozenset()
            assert fleet.links["w1"].probes == 0

        asyncio.run(run())

    def test_all_workers_probed_concurrently(self):
        async def run():
            fleet = FakeFleet(("w0", "w1", "w2"))
            monitor = make_monitor(fleet)
            await monitor.probe_all()
            assert all(link.probes == 1
                       for link in fleet.links.values())

        asyncio.run(run())

    def test_real_supervisor_surface_matches(self):
        """The duck-typed surface HealthMonitor needs exists for real."""
        from repro.fleet.supervisor import PlannerFleet

        fleet = PlannerFleet()
        for name in ("worker_ids", "down", "timeline"):
            assert hasattr(fleet, name)
        for name in ("link", "restarting", "eject", "readmit"):
            assert callable(getattr(fleet, name))
