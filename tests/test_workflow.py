"""Tests for the workflow (DAG) extension."""

import numpy as np
import pytest

from repro.cloud.catalog import ec2_catalog
from repro.cloud.instance import Instance
from repro.engine.cluster import SimCluster
from repro.errors import ValidationError
from repro.workflow import (
    Stage,
    WorkflowDAG,
    chain,
    diamond,
    execute_workflow,
    fork_join,
    predict_workflow,
    select_workflow_configurations,
)


@pytest.fixture(scope="module")
def catalog():
    return ec2_catalog(max_nodes_per_type=2)


@pytest.fixture(scope="module")
def capacities(catalog, galaxy):
    return np.array([galaxy.true_rate_gips(t) for t in catalog])


def homogeneous_cluster(catalog, galaxy, type_name="c4.2xlarge", nodes=2):
    instances = [
        Instance(instance_id=f"i-{k}", itype=catalog.type_named(type_name))
        for k in range(nodes)
    ]
    return SimCluster(instances, galaxy)


class TestDag:
    def test_chain_builder(self):
        wf = chain([(4, 10.0), (2, 5.0), (1, 20.0)])
        assert len(wf) == 3
        assert wf.total_gi == pytest.approx(4 * 10 + 2 * 5 + 20)
        path, gi = wf.critical_path()
        assert path == ["s0", "s1", "s2"]
        assert gi == pytest.approx(10 + 5 + 20)

    def test_fork_join_builder(self):
        wf = fork_join(3, branch_tasks=10, branch_task_gi=2.0)
        assert len(wf) == 5
        assert wf.predecessors("join") == ["branch0", "branch1", "branch2"]
        widths = wf.level_widths()
        assert widths == [1, 30, 1]

    def test_diamond_builder(self):
        wf = diamond(1.0, (5, 2.0), (3, 10.0), 4.0)
        path, gi = wf.critical_path()
        assert path == ["top", "right", "bottom"]
        assert gi == pytest.approx(1 + 10 + 4)

    def test_cycle_rejected(self):
        stages = [Stage("a", 1, 1.0), Stage("b", 1, 1.0)]
        with pytest.raises(ValidationError):
            WorkflowDAG(stages, [("a", "b"), ("b", "a")])

    def test_unknown_edge_stage_rejected(self):
        with pytest.raises(ValidationError):
            WorkflowDAG([Stage("a", 1, 1.0)], [("a", "ghost")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            WorkflowDAG([Stage("a", 1, 1.0), Stage("a", 2, 1.0)])

    def test_stage_validation(self):
        with pytest.raises(ValidationError):
            Stage("bad", 0, 1.0)
        with pytest.raises(ValidationError):
            Stage("bad", 1, 0.0)

    def test_topological_stage_order(self):
        wf = diamond(1.0, (1, 1.0), (1, 1.0), 1.0)
        order = [s.name for s in wf.stages]
        assert order.index("top") < order.index("left")
        assert order.index("left") < order.index("bottom")


class TestPrediction:
    def test_wide_workflow_is_work_bound(self, catalog, capacities):
        wf = fork_join(8, branch_tasks=200, branch_task_gi=50.0)
        pred = predict_workflow(wf, (2, 0, 0, 0, 0, 0, 0, 0, 0), catalog,
                                capacities)
        assert not pred.latency_bound
        assert pred.time_hours == pytest.approx(pred.work_bound_hours)

    def test_deep_chain_is_latency_bound(self, catalog, capacities):
        wf = chain([(1, 100.0)] * 20)
        pred = predict_workflow(wf, (2, 2, 2, 0, 0, 0, 0, 0, 0), catalog,
                                capacities)
        assert pred.latency_bound
        assert pred.time_hours == pytest.approx(
            pred.critical_path_bound_hours)

    def test_more_capacity_does_not_help_chains(self, catalog, capacities):
        """The workflow phenomenon single-run CELIA cannot express."""
        wf = chain([(1, 100.0)] * 10)
        small = predict_workflow(wf, (1, 0, 0, 0, 0, 0, 0, 0, 0), catalog,
                                 capacities)
        big = predict_workflow(wf, (2, 2, 2, 2, 2, 2, 0, 0, 0), catalog,
                               capacities)
        assert big.time_hours == pytest.approx(small.time_hours)
        assert big.cost_dollars > small.cost_dollars

    def test_validation(self, catalog, capacities):
        wf = chain([(1, 1.0)])
        with pytest.raises(ValidationError):
            predict_workflow(wf, (0,) * 9, catalog, capacities)
        with pytest.raises(ValidationError):
            predict_workflow(wf, (1, 0), catalog, capacities)


class TestExecution:
    def test_prediction_is_lower_bound(self, catalog, capacities, galaxy):
        wf = fork_join(4, branch_tasks=50, branch_task_gi=100.0,
                       setup_gi=500.0, join_gi=200.0)
        cluster = homogeneous_cluster(catalog, galaxy)
        report = execute_workflow(wf, cluster)
        config = np.zeros(9, dtype=int)
        config[0] = 2
        pred = predict_workflow(wf, config, catalog,
                                np.array([galaxy.true_rate_gips(t)
                                          for t in catalog]))
        assert report.makespan_hours >= pred.time_hours * 0.999

    def test_chain_matches_critical_path_exactly(self, catalog, galaxy):
        """Homogeneous cluster, serial chain: engine == CP bound."""
        wf = chain([(1, 50.0)] * 5)
        cluster = homogeneous_cluster(catalog, galaxy, nodes=1)
        report = execute_workflow(wf, cluster)
        slot_rate = cluster.slot_rates()[0]
        expected_hours = 5 * 50.0 / slot_rate / 3600.0
        assert report.makespan_hours == pytest.approx(expected_hours,
                                                      rel=1e-9)

    def test_wide_workflow_near_work_bound(self, catalog, galaxy):
        wf = fork_join(4, branch_tasks=500, branch_task_gi=10.0,
                       setup_gi=1.0, join_gi=1.0)
        cluster = homogeneous_cluster(catalog, galaxy)
        report = execute_workflow(wf, cluster)
        ideal_hours = wf.total_gi / cluster.total_rate_gips / 3600.0
        assert report.makespan_hours == pytest.approx(ideal_hours, rel=0.05)
        assert report.busy_fraction > 0.9

    def test_stage_order_respects_dependencies(self, catalog, galaxy):
        wf = diamond(1.0, (3, 5.0), (3, 5.0), 1.0)
        cluster = homogeneous_cluster(catalog, galaxy)
        report = execute_workflow(wf, cluster)
        finish = report.stage_finish_hours
        assert finish["top"] <= finish["left"]
        assert finish["top"] <= finish["right"]
        assert max(finish["left"], finish["right"]) <= finish["bottom"]

    def test_all_tasks_executed(self, catalog, galaxy):
        wf = fork_join(3, branch_tasks=7, branch_task_gi=1.0)
        cluster = homogeneous_cluster(catalog, galaxy)
        report = execute_workflow(wf, cluster)
        assert report.n_tasks == 1 + 3 * 7 + 1

    def test_jitter_only_slows(self, catalog, galaxy):
        wf = fork_join(2, branch_tasks=100, branch_task_gi=5.0)
        cluster = homogeneous_cluster(catalog, galaxy)
        base = execute_workflow(wf, cluster)
        noisy = execute_workflow(wf, cluster,
                                 rng=np.random.default_rng(1),
                                 jitter_sigma=0.2)
        assert noisy.makespan_hours != base.makespan_hours


class TestWorkflowSelection:
    def test_selection_structure(self, catalog, capacities):
        wf = fork_join(4, branch_tasks=50, branch_task_gi=100.0)
        sel = select_workflow_configurations(wf, catalog, capacities,
                                             deadline_hours=1.0,
                                             budget_dollars=5.0)
        assert sel.total_configurations == 3**9 - 1
        assert 0 < sel.feasible_count <= sel.total_configurations
        assert sel.pareto_count >= 1
        times = [p.time_hours for p in sel.pareto]
        assert times == sorted(times)

    def test_deep_chain_frontier_is_latency_bound(self, catalog, capacities):
        wf = chain([(1, 500.0)] * 10)
        sel = select_workflow_configurations(wf, catalog, capacities,
                                             deadline_hours=10.0,
                                             budget_dollars=100.0)
        # A pure chain gains nothing from capacity: the frontier collapses
        # to configurations distinguished only by their fastest vCPU.
        assert all(p.latency_bound for p in sel.pareto)
        # Cheapest frontier point uses a single node.
        cheapest = min(sel.pareto, key=lambda p: p.cost_dollars)
        assert sum(cheapest.configuration) == 1

    def test_matches_per_config_prediction(self, catalog, capacities):
        wf = diamond(10.0, (20, 5.0), (10, 8.0), 10.0)
        sel = select_workflow_configurations(wf, catalog, capacities,
                                             deadline_hours=5.0,
                                             budget_dollars=50.0)
        for p in sel.pareto[:5]:
            pred = predict_workflow(wf, p.configuration, catalog, capacities)
            assert p.time_hours == pytest.approx(pred.time_hours, rel=1e-9)
            assert p.cost_dollars == pytest.approx(pred.cost_dollars,
                                                   rel=1e-9)

    def test_validation(self, catalog, capacities):
        wf = chain([(1, 1.0)])
        with pytest.raises(ValidationError):
            select_workflow_configurations(wf, catalog, capacities, 0.0, 1.0)
