"""Tests for baseline measurement: demand grids and capacity estimation."""

import numpy as np
import pytest

from repro.apps import GalaxyApp
from repro.cloud.catalog import ec2_catalog
from repro.cloud.instance import ResourceCategory
from repro.engine.runner import EngineConfig
from repro.measurement.baseline import (
    default_cloud_baseline,
    measure_capacities,
    measure_capacities_by_category,
    measure_demand_grid,
)
from repro.measurement.perf import PerfCounter


@pytest.fixture(scope="module")
def catalog():
    return ec2_catalog()


@pytest.fixture(scope="module")
def perf():
    return PerfCounter(seed=0)


class TestDemandGrid:
    def test_grid_shape_follows_app(self, simple_app):
        perf = PerfCounter(seed=0)
        samples = measure_demand_grid(simple_app, perf)
        sizes, accs = simple_app.scale_down_grid()
        assert samples.demand_gi.shape == (sizes.size, accs.size)

    def test_custom_grid(self, simple_app):
        perf = PerfCounter(seed=0)
        samples = measure_demand_grid(
            simple_app, perf,
            sizes=np.array([1.0, 2.0]), accuracies=np.array([1.0, 2.0, 3.0]))
        assert samples.demand_gi.shape == (2, 3)

    def test_values_track_ground_truth(self, simple_app):
        perf = PerfCounter(seed=0, noise_sigma=0.0)
        samples = measure_demand_grid(simple_app, perf)
        for i, n in enumerate(samples.sizes):
            for j, a in enumerate(samples.accuracies):
                assert samples.demand_gi[i, j] == pytest.approx(
                    simple_app.demand_gi(float(n), float(a)))


class TestDefaultBaseline:
    def test_paper_apps_have_presets(self):
        from repro.apps import SandApp, X264App

        assert default_cloud_baseline(X264App()) == (32.0, 30.0)
        assert default_cloud_baseline(GalaxyApp()) == (8192.0, 1000.0)
        assert default_cloud_baseline(SandApp())[1] == 0.32

    def test_fallback_uses_grid(self, simple_app):
        n, a = default_cloud_baseline(simple_app)
        sizes, accs = simple_app.scale_down_grid()
        assert n == sizes[-1]
        assert a in accs


class TestCapacityMeasurement:
    def test_full_measurement_close_to_truth(self, catalog, perf):
        app = GalaxyApp()
        rates, measurements = measure_capacities(
            app, catalog, perf, seed=1, instances_per_type=3)
        assert rates.shape == (9,)
        for itype, rate in zip(catalog, rates):
            truth = app.true_rate_gips(itype)
            # Measured rate within ~10% of truth (contention + jitter).
            assert rate == pytest.approx(truth, rel=0.10)
        assert all(not m.extrapolated for m in measurements)

    def test_measured_rate_never_exceeds_truth_much(self, catalog, perf):
        """Contention only slows hosts, so estimates skew low."""
        app = GalaxyApp()
        rates, _ = measure_capacities(app, catalog, perf, seed=2)
        truths = np.array([app.true_rate_gips(t) for t in catalog])
        assert np.all(rates <= truths * 1.02)

    def test_by_category_measures_three(self, catalog, perf):
        app = GalaxyApp()
        rates, measurements = measure_capacities_by_category(
            app, catalog, perf, seed=1)
        measured = [m for m in measurements if not m.extrapolated]
        extrapolated = [m for m in measurements if m.extrapolated]
        assert len(measured) == 3  # one per category
        assert len(extrapolated) == 6
        # Extrapolated rates follow price proportionality in-category.
        by_name = {m.type_name: m.rate_gips for m in measurements}
        assert by_name["c4.2xlarge"] / by_name["c4.large"] == pytest.approx(
            0.419 / 0.105, rel=1e-6) or not np.isnan(by_name["c4.2xlarge"])

    def test_by_category_close_to_full(self, catalog, perf):
        """The IV-C shortcut agrees with full measurement within a few %."""
        app = GalaxyApp()
        full, _ = measure_capacities(app, catalog, perf, seed=3)
        shortcut, _ = measure_capacities_by_category(app, catalog, perf, seed=3)
        np.testing.assert_allclose(shortcut, full, rtol=0.08)

    def test_custom_representative(self, catalog, perf):
        app = GalaxyApp()
        _, measurements = measure_capacities_by_category(
            app, catalog, perf, seed=1,
            representative={ResourceCategory.COMPUTE: "c4.2xlarge"})
        measured_names = {m.type_name for m in measurements
                          if not m.extrapolated}
        assert "c4.2xlarge" in measured_names

    def test_noiseless_measurement_nearly_exact(self, catalog):
        """With all noise off, only real per-step communication time
        separates the measured rate from ground truth (<0.5%)."""
        app = GalaxyApp()
        perf0 = PerfCounter(seed=0, noise_sigma=0.0)
        rates, _ = measure_capacities(
            app, catalog, perf0,
            engine_config=EngineConfig.ideal(), seed=0)
        truths = np.array([app.true_rate_gips(t) for t in catalog])
        np.testing.assert_allclose(rates, truths, rtol=5e-3)
        assert np.all(rates <= truths)  # comm only ever slows the run
