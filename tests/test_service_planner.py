"""Tests for :class:`repro.service.PlannerService`.

Covers warm-state reuse, micro-batching (including bit-identity against
direct `select_configurations` calls — the service must never change an
answer), the LRU result cache, admission control and per-request
deadlines under induced slowness (`ServiceFaults`).

All service state lives on an asyncio loop; each test drives one with
``asyncio.run``.
"""

import asyncio

import pytest

from repro.cloud.catalog import make_catalog
from repro.core.selection import select_configurations
from repro.errors import ValidationError
from repro.service import (
    PlannerService,
    RequestTimeoutError,
    ServiceConfig,
    ServiceFaults,
    ServiceSaturatedError,
    selection_to_dict,
)

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]


def tiny_catalog(quota: int):
    return make_catalog(ROWS, quota=quota)


def make_service(*, faults: ServiceFaults | None = None,
                 **config_overrides) -> PlannerService:
    config_overrides.setdefault("default_quota", 2)
    config_overrides.setdefault("cache_dir", False)
    return PlannerService(
        config=ServiceConfig(**config_overrides),
        faults=faults,
        catalog_factory=tiny_catalog,
    )


SELECT_ARGS = dict(n=65536.0, a=2000.0, deadline_hours=48.0,
                   budget_dollars=350.0)


class TestWarmState:
    def test_state_built_once_across_requests(self):
        service = make_service()

        async def run():
            for a in (2000.0, 2100.0, 2200.0):
                await service.select("galaxy", 65536.0, a, 48.0, 350.0)

        asyncio.run(run())
        snap = service.metrics.snapshot()
        assert snap["histograms"]["warm_build_s"]["count"] == 1
        assert snap["gauges"]["warm_signatures"] == 1.0
        assert service.warm_signatures[0].app == "galaxy"

    def test_distinct_signatures_get_distinct_states(self):
        service = make_service()

        async def run():
            await service.warm("galaxy")
            await service.warm("galaxy", quota=1)
            await service.warm("x264")

        asyncio.run(run())
        assert len(service.warm_signatures) == 3

    def test_racing_warmers_share_one_build(self):
        service = make_service()

        async def run():
            await asyncio.gather(*[service.warm("galaxy") for _ in range(8)])

        asyncio.run(run())
        assert service.metrics.snapshot(
        )["histograms"]["warm_build_s"]["count"] == 1

    def test_unknown_app_rejected(self):
        service = make_service()
        with pytest.raises(ValidationError):
            asyncio.run(service.select("hadoop", 1.0, 1.0, 1.0, 1.0))


class TestWarmStateEviction:
    def test_max_warm_states_validated(self):
        with pytest.raises(ValidationError):
            ServiceConfig(max_warm_states=0)
        assert ServiceConfig(max_warm_states=1).max_warm_states == 1
        assert ServiceConfig().max_warm_states is None

    def test_lru_eviction_and_bit_identical_rebuild(self):
        """Over the cap, the least-recently-used signature's state is
        dropped — and its next request rebuilds it lazily with the exact
        same answer (the fleet's restart/eviction guarantee)."""
        service = make_service(max_warm_states=2, result_cache_size=0)

        async def run():
            first = await service.select("galaxy", seed=0, **SELECT_ARGS)
            await service.select("galaxy", seed=1, **SELECT_ARGS)
            await service.select("galaxy", seed=2, **SELECT_ARGS)
            survivors = {s.seed for s in service.warm_signatures}
            again = await service.select("galaxy", seed=0, **SELECT_ARGS)
            return first, survivors, again

        first, survivors, again = asyncio.run(run())
        # Seed 0 was the LRU victim; the newest two stayed resident.
        assert survivors == {1, 2}
        assert again["cached"] is False
        assert again["result"] == first["result"]
        snap = service.metrics.snapshot()
        assert snap["counters"]["warm_evictions"] == 2  # 0 out, then 1
        assert snap["gauges"]["warm_signatures"] == 2.0
        assert snap["histograms"]["warm_build_s"]["count"] == 4
        assert {s.seed for s in service.warm_signatures} == {2, 0}

    def test_warm_respects_the_cap(self):
        service = make_service(max_warm_states=1)

        async def run():
            await service.warm("galaxy", seed=0)
            await service.warm("galaxy", seed=1)

        asyncio.run(run())
        assert [s.seed for s in service.warm_signatures] == [1]
        assert service.metrics.snapshot(
        )["counters"]["warm_evictions"] == 1

    def test_unbounded_by_default(self):
        service = make_service()

        async def run():
            for seed in range(4):
                await service.warm("galaxy", seed=seed)

        asyncio.run(run())
        assert len(service.warm_signatures) == 4
        assert "warm_evictions" not in \
            service.metrics.snapshot()["counters"]


class TestBatching:
    def test_concurrent_requests_coalesce(self):
        service = make_service(batch_window_s=0.05)

        async def run():
            return await asyncio.gather(*[
                service.select("galaxy", 65536.0, 2000.0 + i, 48.0, 350.0)
                for i in range(6)
            ])

        responses = asyncio.run(run())
        assert all(r["kind"] == "select" for r in responses)
        snap = service.metrics.snapshot()
        assert snap["counters"]["batches_total"] == 1
        assert snap["histograms"]["batch_size"]["max"] == 6.0

    def test_max_batch_flushes_without_waiting_for_window(self):
        # A 30 s window would time the test out unless hitting max_batch
        # flushes immediately.
        service = make_service(batch_window_s=30.0, max_batch=2,
                               default_timeout_s=20.0)

        async def run():
            return await asyncio.gather(
                service.select("galaxy", 65536.0, 2000.0, 48.0, 350.0),
                service.select("galaxy", 65536.0, 2500.0, 48.0, 350.0),
            )

        responses = asyncio.run(run())
        assert len(responses) == 2
        assert service.metrics.snapshot()["counters"]["batches_total"] == 1

    def test_batched_responses_bit_identical_to_single_query(self):
        """Acceptance criterion: a batched response equals the direct
        `select_configurations` result for the same query, bit for bit."""
        service = make_service(batch_window_s=0.05)
        queries = [(65536.0, 2000.0 + 137.0 * i, 48.0 - i, 350.0 - 10.0 * i)
                   for i in range(5)]

        async def run():
            return await asyncio.gather(*[
                service.select("galaxy", n, a, t, c)
                for n, a, t, c in queries
            ])

        responses = asyncio.run(run())
        assert service.metrics.snapshot()["counters"]["batches_total"] == 1

        signature = service.signature("galaxy")
        state = service._states[signature]
        for (n, a, t, c), response in zip(queries, responses):
            demand = state.celia.demand_gi(state.app, n, a)
            direct = select_configurations(state.evaluation, demand, t, c)
            assert response["result"] == selection_to_dict(direct)

    def test_different_signatures_do_not_share_batches(self):
        service = make_service(batch_window_s=0.05)

        async def run():
            return await asyncio.gather(
                service.select("galaxy", 65536.0, 2000.0, 48.0, 350.0),
                service.select("x264", 4096.0, 30.0, 48.0, 350.0),
            )

        asyncio.run(run())
        assert service.metrics.snapshot()["counters"]["batches_total"] == 2


class TestResultCache:
    def test_repeat_request_is_cached(self):
        service = make_service()

        async def run():
            first = await service.select("galaxy", **SELECT_ARGS)
            second = await service.select("galaxy", **SELECT_ARGS)
            return first, second

        first, second = asyncio.run(run())
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]
        snap = service.metrics.snapshot()
        assert snap["counters"]["cache_hits"] == 1

    def test_lru_evicts_oldest(self):
        service = make_service(result_cache_size=2)

        async def run():
            await service.select("galaxy", 65536.0, 2000.0, 48.0, 350.0)
            await service.select("galaxy", 65536.0, 2100.0, 48.0, 350.0)
            await service.select("galaxy", 65536.0, 2200.0, 48.0, 350.0)
            # 2000 was evicted; 2200 is still resident.
            evicted = await service.select("galaxy", 65536.0, 2000.0,
                                           48.0, 350.0)
            resident = await service.select("galaxy", 65536.0, 2200.0,
                                            48.0, 350.0)
            return evicted, resident

        evicted, resident = asyncio.run(run())
        assert evicted["cached"] is False
        assert resident["cached"] is True

    def test_top_is_part_of_the_key(self):
        service = make_service()

        async def run():
            full = await service.select("galaxy", top=0, **SELECT_ARGS)
            trimmed = await service.select("galaxy", top=1, **SELECT_ARGS)
            return full, trimmed

        full, trimmed = asyncio.run(run())
        assert trimmed["cached"] is False
        assert len(trimmed["result"]["pareto"]) == 1
        assert trimmed["result"]["pareto_count"] == \
            full["result"]["pareto_count"]


class TestAdmissionControl:
    def test_saturated_queue_returns_typed_rejection(self):
        """With compute slowed down, the queue fills and overflow requests
        are rejected with `ServiceSaturatedError` — while every admitted
        request still completes within its deadline."""
        service = make_service(
            faults=ServiceFaults(compute_delay_s=0.3),
            max_queue_depth=2, batch_window_s=0.0, max_batch=1,
            default_timeout_s=30.0)

        async def run():
            await service.warm("galaxy")
            admitted = [
                asyncio.create_task(service.select(
                    "galaxy", 65536.0, 2000.0 + i, 48.0, 350.0))
                for i in range(2)
            ]
            await asyncio.sleep(0.1)  # both admitted, batches in flight
            with pytest.raises(ServiceSaturatedError) as exc_info:
                await service.select("galaxy", 65536.0, 9000.0, 48.0, 350.0)
            assert exc_info.value.max_queue_depth == 2
            return await asyncio.gather(*admitted)

        responses = asyncio.run(run())
        assert all(r["result"]["pareto_count"] > 0 for r in responses)
        snap = service.metrics.snapshot()
        assert snap["counters"]["rejected_saturated"] == 1
        assert snap["counters"]["requests_select"] == 2
        assert snap["gauges"]["queue_depth"] == 0.0

    def test_capacity_recovers_after_drain(self):
        service = make_service(max_queue_depth=1)

        async def run():
            first = await service.select("galaxy", 65536.0, 2000.0,
                                         48.0, 350.0)
            # The queue drained, so the next uncached request is admitted.
            second = await service.select("galaxy", 65536.0, 2100.0,
                                          48.0, 350.0)
            return first, second

        first, second = asyncio.run(run())
        assert first["cached"] is False and second["cached"] is False

    def test_cache_hits_bypass_admission(self):
        service = make_service(
            faults=ServiceFaults(compute_delay_s=0.3),
            max_queue_depth=1, batch_window_s=0.0, max_batch=1)

        async def run():
            cached_response = await service.select("galaxy", **SELECT_ARGS)
            assert cached_response["cached"] is False
            blocker = asyncio.create_task(service.select(
                "galaxy", 65536.0, 7777.0, 48.0, 350.0))
            await asyncio.sleep(0.1)  # blocker owns the only queue slot
            hit = await service.select("galaxy", **SELECT_ARGS)
            assert hit["cached"] is True
            await blocker
            return hit

        asyncio.run(run())


class TestDeadlines:
    def test_slow_compute_times_out_with_typed_error(self):
        service = make_service(faults=ServiceFaults(compute_delay_s=0.5),
                               batch_window_s=0.0, max_batch=1)

        async def run():
            await service.warm("galaxy")
            with pytest.raises(RequestTimeoutError) as exc_info:
                await service.select("galaxy", timeout_s=0.05, **SELECT_ARGS)
            assert exc_info.value.timeout_s == pytest.approx(0.05)

        asyncio.run(run())
        snap = service.metrics.snapshot()
        assert snap["counters"]["rejected_timeout"] == 1
        assert snap["gauges"]["queue_depth"] == 0.0

    def test_generous_deadline_completes_despite_slowness(self):
        service = make_service(faults=ServiceFaults(compute_delay_s=0.1),
                               batch_window_s=0.0, max_batch=1)

        async def run():
            return await service.select("galaxy", timeout_s=20.0,
                                        **SELECT_ARGS)

        response = asyncio.run(run())
        assert response["result"]["pareto_count"] > 0

    def test_slow_warm_counts_against_the_deadline(self):
        service = make_service(faults=ServiceFaults(warm_delay_s=0.5))

        async def run():
            with pytest.raises(RequestTimeoutError):
                await service.select("galaxy", timeout_s=0.05, **SELECT_ARGS)

        asyncio.run(run())


class TestPredictAndPlan:
    def test_predict_matches_direct_computation(self):
        service = make_service()
        config = [1, 2, 0]

        async def run():
            return await service.predict("galaxy", 65536.0, 2000.0, config)

        response = asyncio.run(run())
        state = service._states[service.signature("galaxy")]
        direct = state.celia.predict(state.app, 65536.0, 2000.0, config)
        assert response["result"]["cost_dollars"] == direct.cost_dollars
        assert response["result"]["configuration"] == config

    def test_plan_requires_exactly_one_knob(self):
        service = make_service()
        with pytest.raises(ValidationError):
            asyncio.run(service.plan("galaxy", 24.0, 50.0,
                                     knob_range=(1.0, 2.0)))
        with pytest.raises(ValidationError):
            asyncio.run(service.plan("galaxy", 24.0, 50.0, fix_size=1.0,
                                     fix_accuracy=2.0,
                                     knob_range=(1.0, 2.0)))

    def test_plan_returns_serialized_plan(self):
        service = make_service()

        async def run():
            return await service.plan(
                "galaxy", 24.0, 50.0, fix_size=65536.0,
                knob_range=(100.0, 20000.0), integral=True)

        response = asyncio.run(run())
        result = response["result"]
        assert result["knob"] == "accuracy"
        assert result["answer"]["cost_dollars"] < 50.0


class TestHandleDispatch:
    def test_select_request_round_trip(self):
        service = make_service()
        request = {"kind": "select", "app": "galaxy", "n": 65536, "a": 2000,
                   "deadline_hours": 48, "budget_dollars": 350, "top": 2}

        async def run():
            return await service.handle(request)

        response = asyncio.run(run())
        assert response["kind"] == "select"
        assert len(response["result"]["pareto"]) <= 2

    def test_unknown_kind_rejected(self):
        service = make_service()
        with pytest.raises(ValidationError):
            asyncio.run(service.handle({"kind": "teleport"}))

    def test_missing_field_rejected(self):
        service = make_service()
        with pytest.raises(ValidationError):
            asyncio.run(service.handle({"kind": "select", "app": "galaxy"}))

    def test_non_dict_rejected(self):
        service = make_service()
        with pytest.raises(ValidationError):
            asyncio.run(service.handle([1, 2, 3]))
