"""Tests for the closed-loop adaptive controller
(:mod:`repro.runtime.controller`).

The quota-2 catalog keeps index builds cheap; the envelope
(galaxy(65536, 8000) under 40 h / $400) is the experiment's — reachable
when calm, genuinely threatened under chaos.
"""

import pytest

from repro.apps import application_by_name
from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.errors import ValidationError
from repro.runtime import (
    AdaptiveController,
    RuntimeConfig,
    degraded_accuracy_search,
)
from repro.runtime.chaos import chaos_scenario, scenario_names
from repro.runtime.events import (
    DegradationDecision,
    InfeasiblePlan,
    Migration,
    NodeCrash,
    ReplanDecision,
)

PROBLEM = (65536, 8000, 40.0, 400.0)

#: Verdicts that mean "inside the envelope"; everything else must be an
#: explicit failure, never a silent overrun.
GOOD = ("met", "degraded")
BAD = ("missed_deadline", "over_budget", "infeasible", "failed")


@pytest.fixture(scope="module")
def celia2():
    return Celia(ec2_catalog(max_nodes_per_type=2), seed=42)


@pytest.fixture(scope="module")
def galaxy_app():
    return application_by_name("galaxy", seed=42)


def run(celia2, galaxy_app, scenario, *, adaptive=True, seed=0, config=None,
        problem=PROBLEM):
    controller = AdaptiveController(
        celia2, galaxy_app, scenario=chaos_scenario(scenario),
        config=config or RuntimeConfig(replan=adaptive), seed=seed)
    return controller.execute(*problem)


class TestCalm:
    def test_static_meets_envelope(self, celia2, galaxy_app):
        report = run(celia2, galaxy_app, "calm", adaptive=False)
        assert report.verdict == "met"
        assert report.completed and report.deadline_met and report.budget_met
        assert report.replans == 0 and report.crashes == 0
        assert report.final_accuracy == report.initial_accuracy

    def test_adaptive_matches_static_when_nothing_goes_wrong(
            self, celia2, galaxy_app):
        static = run(celia2, galaxy_app, "calm", adaptive=False)
        adaptive = run(celia2, galaxy_app, "calm", adaptive=True)
        assert adaptive.verdict == "met"
        assert adaptive.cost_dollars == pytest.approx(static.cost_dollars)


class TestCrashy:
    def test_adaptive_replans_through_crashes(self, celia2, galaxy_app):
        report = run(celia2, galaxy_app, "crashy", seed=0)
        assert report.verdict == "met"
        assert report.crashes > 0 and report.replans > 0
        assert report.migrations == report.replans
        crash_events = [e for e in report.timeline if isinstance(e, NodeCrash)]
        assert len(crash_events) == report.crashes
        # Replans happen over residual state: monotone in time, shrinking
        # residual deadline.
        replans = [e for e in report.timeline if isinstance(e, ReplanDecision)]
        hours = [e.at_hours for e in replans]
        assert hours == sorted(hours)

    def test_static_fails_explicitly_not_silently(self, celia2, galaxy_app):
        report = run(celia2, galaxy_app, "crashy", adaptive=False, seed=0)
        assert report.verdict in BAD
        if report.verdict == "failed":
            assert any(isinstance(e, InfeasiblePlan) for e in report.timeline)


class TestDegradation:
    def test_perfect_storm_degrades_minimally_with_audit_trail(
            self, celia2, galaxy_app):
        report = run(celia2, galaxy_app, "perfect-storm", seed=0)
        assert report.verdict == "degraded"
        assert report.completed and report.deadline_met and report.budget_met
        assert report.final_accuracy < report.initial_accuracy
        decisions = [e for e in report.timeline
                     if isinstance(e, DegradationDecision)]
        assert len(decisions) == report.degradations > 0
        for d in decisions:
            assert d.to_accuracy < d.from_accuracy
            assert d.score_after <= d.score_before
            assert d.remaining_gi_after <= d.remaining_gi_before
        # Each degradation continues from the previous one's accuracy.
        assert decisions[0].from_accuracy == report.initial_accuracy
        assert decisions[-1].to_accuracy == report.final_accuracy

    def test_replan_budget_exhaustion_is_explicit(self, celia2, galaxy_app):
        config = RuntimeConfig(replan=True, max_replans=0)
        report = run(celia2, galaxy_app, "crashy", seed=0, config=config)
        assert report.verdict == "infeasible"
        assert any(isinstance(e, InfeasiblePlan) for e in report.timeline)


class TestNoSilentOverruns:
    """The acceptance criterion, checked across the whole catalog."""

    @pytest.mark.parametrize("scenario", scenario_names())
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_verdict_is_honest(self, celia2, galaxy_app, scenario, adaptive):
        report = run(celia2, galaxy_app, scenario, adaptive=adaptive, seed=3)
        assert report.verdict in GOOD + BAD
        if report.verdict in GOOD:
            assert report.completed
            assert report.elapsed_hours <= report.deadline_hours
            assert report.cost_dollars <= report.budget_dollars
        else:
            # Explicit failure: either terminal accounting says why, or
            # an InfeasiblePlan event names the unreachable envelope.
            assert (report.verdict in ("missed_deadline", "over_budget")
                    or any(isinstance(e, InfeasiblePlan)
                           for e in report.timeline))


class TestDeterminism:
    @pytest.mark.parametrize("scenario", ["crashy", "perfect-storm"])
    def test_identical_seeds_identical_reports(self, celia2, galaxy_app,
                                               scenario):
        first = run(celia2, galaxy_app, scenario, seed=1)
        second = run(celia2, galaxy_app, scenario, seed=1)
        assert first.to_dict() == second.to_dict()

    def test_different_seeds_diverge(self, celia2, galaxy_app):
        a = run(celia2, galaxy_app, "crashy", seed=1)
        b = run(celia2, galaxy_app, "crashy", seed=2)
        assert a.to_dict() != b.to_dict()


class TestReportShape:
    def test_to_dict_serializes_timeline(self, celia2, galaxy_app):
        import json

        report = run(celia2, galaxy_app, "crashy", seed=0)
        data = report.to_dict()
        json.dumps(data)  # JSON-clean end to end
        assert data["scenario"] == "crashy"
        assert data["provision_attempts"] >= data["replans"] + 1
        kinds = {e["kind"] for e in data["timeline"]}
        assert {"provision_attempt", "node_crash", "replan",
                "migration"} <= kinds
        migrations = [e for e in report.timeline if isinstance(e, Migration)]
        assert len(migrations) == report.migrations

    def test_validation(self, celia2, galaxy_app):
        controller = AdaptiveController(
            celia2, galaxy_app, scenario=chaos_scenario("calm"))
        with pytest.raises(ValidationError):
            controller.execute(65536, 8000, -1.0, 400.0)
        with pytest.raises(ValidationError):
            controller.execute(65536, 8000, 40.0, 0.0)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(monitor_interval_hours=0.0)
        with pytest.raises(ValidationError):
            RuntimeConfig(deadline_safety=1.5)
        with pytest.raises(ValidationError):
            RuntimeConfig(deviation_tolerance=0.9)
        with pytest.raises(ValidationError):
            RuntimeConfig(max_replans=-1)


class TestDegradedAccuracySearch:
    def test_returns_largest_feasible_accuracy(self, celia2, galaxy_app):
        index = celia2.min_cost_index(galaxy_app)
        demand = lambda acc: celia2.demand_gi(galaxy_app, 65536, acc)  # noqa: E731
        found = degraded_accuracy_search(
            demand, index, floor=100, current=8000,
            integral=galaxy_app.accuracy_integral,
            residual_deadline_hours=10.0, residual_budget_dollars=200.0)
        assert found is not None
        accuracy, answer = found
        assert 100 <= accuracy < 8000
        assert answer.time_hours <= 10.0
        assert answer.cost_dollars <= 200.0
        # One knob step up must be infeasible (minimality), unless the
        # search stopped at the current accuracy itself.
        from repro.errors import InfeasibleError
        with pytest.raises(InfeasibleError):
            index.query(demand(accuracy + 1), 10.0, budget_dollars=200.0)

    def test_tighter_envelope_degrades_further(self, celia2, galaxy_app):
        index = celia2.min_cost_index(galaxy_app)
        demand = lambda acc: celia2.demand_gi(galaxy_app, 65536, acc)  # noqa: E731

        def best(hours):
            found = degraded_accuracy_search(
                demand, index, floor=100, current=8000,
                integral=galaxy_app.accuracy_integral,
                residual_deadline_hours=hours,
                residual_budget_dollars=200.0)
            return found[0] if found else None

        assert best(20.0) >= best(10.0) >= best(5.0)

    def test_infeasible_floor_returns_none(self, celia2, galaxy_app):
        index = celia2.min_cost_index(galaxy_app)
        demand = lambda acc: celia2.demand_gi(galaxy_app, 65536, acc)  # noqa: E731
        assert degraded_accuracy_search(
            demand, index, floor=100, current=8000,
            integral=True, residual_deadline_hours=0.01,
            residual_budget_dollars=0.5) is None
        # Degenerate range and non-positive residuals short-circuit.
        assert degraded_accuracy_search(
            demand, index, floor=8000, current=8000, integral=True,
            residual_deadline_hours=10.0,
            residual_budget_dollars=200.0) is None
        assert degraded_accuracy_search(
            demand, index, floor=100, current=8000, integral=True,
            residual_deadline_hours=-1.0,
            residual_budget_dollars=200.0) is None
