"""Tests for ``tools/check_docs.py`` (the CI docs job)."""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_are_clean(check_docs, capsys):
    """The committed docs must pass their own gate."""
    assert check_docs.main([]) == 0
    assert "docs OK" in capsys.readouterr().out


def test_broken_link_detected(check_docs, monkeypatch, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [good](docs/real.md) and [bad](docs/missing.md)\n")
    (tmp_path / "docs" / "real.md").write_text(
        "[up](../README.md) [out](https://example.com) [frag](#anchor)\n"
        "```\n[inside a fence](not-checked.md)\n```\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    problems = check_docs.check_links()
    assert len(problems) == 1
    assert "missing.md" in problems[0]
    assert "README.md:1" in problems[0]


def test_stale_cli_reference_detected_and_fixed(check_docs, monkeypatch,
                                                tmp_path):
    api = tmp_path / "api.md"
    api.write_text("intro\n\n"
                   f"{check_docs.BEGIN_MARK} -->\nstale\n"
                   f"{check_docs.END_MARK}\n\ntail\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(check_docs, "API_DOC", api)
    assert any("stale" in p
               for p in check_docs.check_cli_reference(fix=False))
    assert any("regenerated" in p
               for p in check_docs.check_cli_reference(fix=True))
    assert check_docs.check_cli_reference(fix=False) == []
    text = api.read_text()
    assert text.startswith("intro") and text.endswith("tail\n")
    assert "usage: celia" in text


def test_missing_markers_reported(check_docs, monkeypatch, tmp_path):
    api = tmp_path / "api.md"
    api.write_text("no markers here\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(check_docs, "API_DOC", api)
    assert any("missing" in p
               for p in check_docs.check_cli_reference(fix=False))
