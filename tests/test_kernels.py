"""Tests for the real runnable kernels (n-body, encoder, alignment).

These assert the *elastic-application property* on real computation:
spending more resources (steps, trials, comparisons) improves measured
output quality monotonically — the premise of the whole paper.
"""

import numpy as np
import pytest

from repro.apps.kernels.align import assemble_candidates, synthetic_reads
from repro.apps.kernels.encoder import encode_image, synthetic_frames
from repro.apps.kernels.nbody import NBodySystem, simulate_nbody
from repro.errors import ValidationError


class TestNBody:
    def test_system_construction(self):
        system = NBodySystem.plummer_like(16, seed=0)
        assert system.positions.shape == (16, 3)
        assert system.masses.sum() == pytest.approx(1.0)

    def test_needs_two_bodies(self):
        with pytest.raises(ValidationError):
            NBodySystem.plummer_like(1)

    def test_energy_drift_decreases_with_steps(self):
        """The defining elastic property: more steps -> better accuracy."""
        system = NBodySystem.plummer_like(24, seed=1)
        drifts = []
        for steps in (4, 16, 64):
            result = simulate_nbody(system, steps=steps, span=0.5)
            drifts.append(result.energy_drift)
        assert drifts[0] > drifts[1] > drifts[2]

    def test_accuracy_score_increases_with_steps(self):
        system = NBodySystem.plummer_like(24, seed=1)
        coarse = simulate_nbody(system, steps=4, span=0.5)
        fine = simulate_nbody(system, steps=64, span=0.5)
        assert fine.accuracy > coarse.accuracy

    def test_flop_count_matches_demand_shape(self):
        """Work ~ n^2 * s, the paper's galaxy demand shape."""
        small = NBodySystem.plummer_like(10, seed=0)
        big = NBodySystem.plummer_like(20, seed=0)
        r_small = simulate_nbody(small, steps=3)
        r_big = simulate_nbody(big, steps=3)
        assert r_big.flops == pytest.approx(4 * r_small.flops)
        r_more_steps = simulate_nbody(small, steps=6)
        assert r_more_steps.flops == pytest.approx(2 * r_small.flops)

    def test_input_not_mutated(self):
        system = NBodySystem.plummer_like(8, seed=2)
        before = system.positions.copy()
        simulate_nbody(system, steps=5)
        np.testing.assert_array_equal(system.positions, before)

    def test_invalid_parameters(self):
        system = NBodySystem.plummer_like(8)
        with pytest.raises(ValidationError):
            simulate_nbody(system, steps=0)
        with pytest.raises(ValidationError):
            simulate_nbody(system, steps=1, span=0.0)

    def test_momentum_roughly_conserved(self):
        system = NBodySystem.plummer_like(16, seed=3)
        p0 = (system.masses[:, None] * system.velocities).sum(axis=0)
        result = simulate_nbody(system, steps=50, span=0.5)
        p1 = (result.system.masses[:, None] * result.system.velocities).sum(axis=0)
        np.testing.assert_allclose(p0, p1, atol=1e-10)


class TestEncoder:
    def test_synthetic_frames(self):
        frames = synthetic_frames(3, height=32, width=32, seed=0)
        assert len(frames) == 3
        assert frames[0].shape == (32, 32)
        assert frames[0].min() >= 0 and frames[0].max() <= 255

    def test_frame_dimension_validation(self):
        with pytest.raises(ValidationError):
            synthetic_frames(1, height=30, width=32)

    def test_quality_compression_tradeoff(self):
        """Higher f -> fewer bits, lower PSNR (the x264 elasticity)."""
        frame = synthetic_frames(1, height=32, width=32, seed=1)[0]
        low = encode_image(frame, 10)
        high = encode_image(frame, 40)
        assert high.bits_estimate < low.bits_estimate
        assert high.psnr_db < low.psnr_db

    def test_work_grows_with_compression_factor(self):
        """Demand superlinear in f, as in Figure 2(d)."""
        frame = synthetic_frames(1, height=32, width=32, seed=1)[0]
        f10 = encode_image(frame, 10)
        f40 = encode_image(frame, 40)
        assert f40.block_trials > f10.block_trials
        assert f40.flops > f10.flops
        # Superlinear: quadrupling f more than quadruples trial count - 1.
        assert (f40.block_trials - 1) == pytest.approx(
            16 * (f10.block_trials - 1), rel=0.1)

    def test_reconstruction_reasonable(self):
        frame = synthetic_frames(1, height=32, width=32, seed=2)[0]
        result = encode_image(frame, 15)
        assert result.psnr_db > 25.0  # recognizable reconstruction
        assert result.reconstructed.shape == frame.shape

    def test_factor_domain(self):
        frame = synthetic_frames(1, height=32, width=32)[0]
        with pytest.raises(ValidationError):
            encode_image(frame, 0.5)
        with pytest.raises(ValidationError):
            encode_image(frame, 52)

    def test_accuracy_is_compression_fraction(self):
        frame = synthetic_frames(1, height=32, width=32, seed=3)[0]
        result = encode_image(frame, 30)
        assert 0.0 <= result.accuracy < 1.0


class TestAlignment:
    def test_synthetic_reads(self):
        reads, starts, genome = synthetic_reads(50, read_length=32,
                                                genome_length=512, seed=0)
        assert len(reads) == 50
        assert all(len(r) == 32 for r in reads)
        assert len(genome) == 512
        assert starts.min() >= 0
        assert starts.max() <= 512 - 32

    def test_zero_error_reads_match_genome(self):
        reads, starts, genome = synthetic_reads(10, read_length=16,
                                                genome_length=128,
                                                error_rate=0.0, seed=1)
        for read, start in zip(reads, starts):
            assert genome[start:start + 16] == read

    def test_precision_increases_with_threshold(self):
        reads, starts, _ = synthetic_reads(120, read_length=48,
                                           genome_length=1024,
                                           error_rate=0.03, seed=2)
        loose = assemble_candidates(reads, starts, threshold=0.3)
        strict = assemble_candidates(reads, starts, threshold=0.9)
        assert strict.precision >= loose.precision
        assert len(strict.accepted_pairs) <= len(loose.accepted_pairs)

    def test_true_overlaps_detected_with_low_errors(self):
        reads, starts, _ = synthetic_reads(80, read_length=48,
                                           genome_length=512,
                                           error_rate=0.0, seed=3)
        result = assemble_candidates(reads, starts, threshold=0.45)
        assert result.recall > 0.8

    def test_threshold_domain(self):
        reads, starts, _ = synthetic_reads(10, seed=0)
        with pytest.raises(ValidationError):
            assemble_candidates(reads, starts, threshold=0.0)
        with pytest.raises(ValidationError):
            assemble_candidates(reads, starts, threshold=1.1)

    def test_result_counts_consistent(self):
        reads, starts, _ = synthetic_reads(60, seed=4)
        result = assemble_candidates(reads, starts, threshold=0.5)
        assert result.aligned_pairs == result.comparisons
        assert len(result.accepted_pairs) <= result.candidate_pairs


class TestMotionEncoder:
    def test_radius_quadratic_work(self):
        from repro.apps.kernels.encoder import encode_frame_pair

        frames = synthetic_frames(2, height=48, width=48, seed=3)
        r2 = encode_frame_pair(frames[0], frames[1], 25, search_radius=2)
        r6 = encode_frame_pair(frames[0], frames[1], 25, search_radius=6)
        # Interior blocks evaluate (2r+1)^2 candidates: 169 vs 25 ~ 6.8x.
        assert r6.sad_evaluations > 5 * r2.sad_evaluations

    def test_larger_radius_better_prediction(self):
        from repro.apps.kernels.encoder import encode_frame_pair

        frames = synthetic_frames(2, height=48, width=48, seed=4)
        small = encode_frame_pair(frames[0], frames[1], 25, search_radius=0)
        large = encode_frame_pair(frames[0], frames[1], 25, search_radius=6)
        assert large.mean_abs_residual <= small.mean_abs_residual
        assert large.psnr_db >= small.psnr_db
        assert large.flops > small.flops

    def test_identical_frames_perfect_prediction(self):
        from repro.apps.kernels.encoder import encode_frame_pair

        frame = synthetic_frames(1, height=32, width=32, seed=5)[0]
        result = encode_frame_pair(frame, frame, 20, search_radius=2)
        assert result.mean_abs_residual == pytest.approx(0.0)
        assert result.psnr_db > 45

    def test_validation(self):
        from repro.apps.kernels.encoder import encode_frame_pair

        frames = synthetic_frames(2, height=32, width=32)
        with pytest.raises(ValidationError):
            encode_frame_pair(frames[0], frames[1], 0.5)
        with pytest.raises(ValidationError):
            encode_frame_pair(frames[0], frames[1], 20, search_radius=-1)
        with pytest.raises(ValidationError):
            encode_frame_pair(frames[0][:24], frames[1], 20)
