"""Tests for the capacity-error sensitivity analysis."""

import numpy as np
import pytest

from repro.core.sensitivity import capacity_sensitivity
from repro.errors import ValidationError


class TestCapacitySensitivity:
    def test_zero_error_zero_regret(self, small_catalog, small_capacities):
        result = capacity_sensitivity(
            small_catalog, small_capacities, demand_gi=1e5,
            deadline_hours=8.0, epsilons=(0.0,), trials=3, seed=0)
        point = result.points[0]
        assert point.mean_regret == pytest.approx(0.0, abs=1e-12)
        assert point.deadline_violation_rate == 0.0

    def test_regret_grows_with_error(self, small_catalog, small_capacities):
        result = capacity_sensitivity(
            small_catalog, small_capacities, demand_gi=1e5,
            deadline_hours=8.0, epsilons=(0.02, 0.25), trials=20, seed=1)
        small_eps, big_eps = result.points
        assert big_eps.mean_regret >= small_eps.mean_regret - 1e-9
        assert big_eps.max_regret >= small_eps.max_regret - 1e-9

    def test_regret_nonnegative(self, small_catalog, small_capacities):
        result = capacity_sensitivity(
            small_catalog, small_capacities, demand_gi=1e5,
            deadline_hours=8.0, epsilons=(0.1,), trials=15, seed=2)
        assert result.points[0].mean_regret >= -1e-12

    def test_flat_landscape_small_regret_at_table_iv_error(
            self, small_catalog, small_capacities):
        """The paper's implicit claim: ~17% capacity error costs only a
        modest amount of optimality."""
        result = capacity_sensitivity(
            small_catalog, small_capacities, demand_gi=1e5,
            deadline_hours=8.0, epsilons=(0.17,), trials=25, seed=3)
        assert result.points[0].mean_regret < 0.25

    def test_render(self, small_catalog, small_capacities):
        result = capacity_sensitivity(
            small_catalog, small_capacities, demand_gi=1e5,
            deadline_hours=8.0, epsilons=(0.05,), trials=3, seed=0)
        text = result.render()
        assert "sensitivity" in text
        assert "5%" in text

    def test_validation(self, small_catalog, small_capacities):
        with pytest.raises(ValidationError):
            capacity_sensitivity(small_catalog, small_capacities,
                                 demand_gi=0.0, deadline_hours=1.0)
        with pytest.raises(ValidationError):
            capacity_sensitivity(small_catalog, small_capacities,
                                 demand_gi=1.0, deadline_hours=1.0, trials=0)
        with pytest.raises(ValidationError):
            capacity_sensitivity(small_catalog, np.array([1.0]),
                                 demand_gi=1.0, deadline_hours=1.0)
        with pytest.raises(ValidationError):
            capacity_sensitivity(small_catalog, small_capacities,
                                 demand_gi=1.0, deadline_hours=1.0,
                                 epsilons=(-0.1,))

    def test_deterministic(self, small_catalog, small_capacities):
        kwargs = dict(demand_gi=1e5, deadline_hours=8.0, epsilons=(0.1,),
                      trials=5, seed=7)
        a = capacity_sensitivity(small_catalog, small_capacities, **kwargs)
        b = capacity_sensitivity(small_catalog, small_capacities, **kwargs)
        assert a.points[0].mean_regret == b.points[0].mean_regret
