"""Tests for the Barnes–Hut tree code (algorithmic elasticity)."""

import numpy as np
import pytest

from repro.apps.kernels.barneshut import barnes_hut_accelerations
from repro.apps.kernels.nbody import NBodySystem, _accelerations
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def system():
    return NBodySystem.plummer_like(300, seed=0)


class TestBarnesHut:
    def test_tiny_theta_matches_direct_sum(self, system):
        result = barnes_hut_accelerations(system.positions, system.masses,
                                          theta=1e-6)
        exact = _accelerations(system.positions, system.masses, 0.05)
        np.testing.assert_allclose(result.accelerations, exact, rtol=1e-9,
                                   atol=1e-12)
        assert result.max_relative_error < 1e-9

    def test_work_decreases_with_theta(self, system):
        works = []
        for theta in (0.3, 0.7, 1.2):
            result = barnes_hut_accelerations(system.positions,
                                              system.masses, theta=theta)
            works.append(result.interactions)
        assert works[0] > works[1] > works[2]

    def test_error_increases_with_theta(self, system):
        errors = []
        for theta in (0.3, 0.7, 1.2):
            result = barnes_hut_accelerations(system.positions,
                                              system.masses, theta=theta)
            errors.append(result.mean_relative_error)
        assert errors[0] <= errors[1] <= errors[2]

    def test_elasticity_tradeoff(self, system):
        """The paper's defining property, at the algorithm level: buying
        accuracy (smaller theta) costs instructions."""
        cheap = barnes_hut_accelerations(system.positions, system.masses,
                                         theta=1.2)
        accurate = barnes_hut_accelerations(system.positions, system.masses,
                                            theta=0.4)
        assert accurate.flops > cheap.flops
        assert accurate.mean_relative_error < cheap.mean_relative_error

    def test_moderate_theta_accuracy_band(self, system):
        result = barnes_hut_accelerations(system.positions, system.masses,
                                          theta=0.5)
        assert result.mean_relative_error < 0.02
        assert result.work_fraction < 1.0

    def test_work_fraction_bounds(self, system):
        result = barnes_hut_accelerations(system.positions, system.masses,
                                          theta=0.8)
        assert 0 < result.work_fraction <= 1.0
        assert result.direct_interactions == 300 * 299

    def test_validation(self, system):
        with pytest.raises(ValidationError):
            barnes_hut_accelerations(system.positions, system.masses,
                                     theta=0.0)
        with pytest.raises(ValidationError):
            barnes_hut_accelerations(system.positions[:1], system.masses[:1],
                                     theta=0.5)
        with pytest.raises(ValidationError):
            barnes_hut_accelerations(system.positions[:, :2], system.masses,
                                     theta=0.5)

    def test_sublinear_scaling(self):
        """Interactions grow far slower than n^2 at fixed theta."""
        small = NBodySystem.plummer_like(100, seed=1)
        large = NBodySystem.plummer_like(400, seed=1)
        r_small = barnes_hut_accelerations(small.positions, small.masses,
                                           theta=0.8)
        r_large = barnes_hut_accelerations(large.positions, large.masses,
                                           theta=0.8)
        direct_ratio = r_large.direct_interactions / r_small.direct_interactions
        actual_ratio = r_large.interactions / r_small.interactions
        assert actual_ratio < direct_ratio * 0.7
