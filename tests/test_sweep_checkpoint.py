"""Tests for sweep checkpointing and resume (:class:`SweepCheckpoint`).

The ISSUE's acceptance criterion drives the central test: interrupt a
sweep after ``k`` spans, then resume and assert that exactly the
remaining spans are evaluated and the final ``U_j`` / ``C_{j,u}`` arrays
are bit-identical to an uninterrupted serial sweep.  Around it sit the
shard-format unit tests (manifest pinning, grid alignment, corruption
recovery) and the integration paths: ``ConfigurationSpace.evaluate``,
``Celia.evaluation``, the ``celia sweep`` CLI, and ``PlannerService``
warmup.
"""

import asyncio

import numpy as np
import pytest

from repro.cache import EvaluationCache, SweepCheckpoint, evaluation_cache_key
from repro.cloud.catalog import ec2_catalog, make_catalog
from repro.core.celia import Celia
from repro.core.configspace import ConfigurationSpace
from repro.errors import ConfigurationError
from repro.parallel import (
    TASKS_PER_WORKER,
    SupervisorConfig,
    SweepInterrupted,
    evaluate_resilient,
    missing_ranges,
    partition_ranges,
)
from repro.service import PlannerService, ServiceConfig

ROWS = [("a.small", 2, 2.0, 0.10), ("a.big", 4, 2.0, 0.21),
        ("b.small", 2, 2.5, 0.16)]


def space_and_caps(quota=3):
    catalog = make_catalog(ROWS, quota=quota)
    return ConfigurationSpace(catalog), np.array([2.0, 4.2, 1.5])


def fast_config(**overrides) -> SupervisorConfig:
    knobs = dict(poll_interval_s=0.02, backoff_base_s=0.01,
                 shutdown_grace_s=0.5)
    knobs.update(overrides)
    return SupervisorConfig(**knobs)


class TestSweepCheckpointFormat:
    def test_ensure_writes_manifest(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp", key="k1", space_size=26,
                             chunk_size=4)
        cp.ensure()
        assert (tmp_path / "cp" / SweepCheckpoint.MANIFEST).exists()
        assert cp.completed_spans() == []
        assert not cp.has_shards()

    def test_mismatched_manifest_wipes_leftover(self, tmp_path):
        old = SweepCheckpoint(tmp_path / "cp", key="k1", space_size=26,
                              chunk_size=4)
        old.ensure()
        old.write_span(1, 5, np.ones(4), np.ones(4))
        assert old.has_shards()
        # Same directory, different chunk grid: resume must not trust it.
        new = SweepCheckpoint(tmp_path / "cp", key="k1", space_size=26,
                              chunk_size=8)
        new.ensure()
        assert new.completed_spans() == []
        assert old.completed_spans() == []  # shards are actually gone

    def test_write_span_rejects_off_grid(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp", key="k", space_size=26,
                             chunk_size=4)
        cp.ensure()
        with pytest.raises(ValueError):
            cp.write_span(2, 6, np.ones(4), np.ones(4))  # start off grid
        with pytest.raises(ValueError):
            cp.write_span(1, 7, np.ones(6), np.ones(6))  # stop off grid
        with pytest.raises(ValueError):
            cp.write_span(1, 5, np.ones(3), np.ones(3))  # wrong length

    def test_roundtrip_restores_slices(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp", key="k", space_size=10,
                             chunk_size=4)
        cp.ensure()
        cp.write_span(1, 5, np.arange(4.0), np.arange(4.0) + 10)
        cp.write_span(9, 11, np.array([8.0, 9.0]), np.array([18.0, 19.0]))
        capacity = np.zeros(10)
        unit_cost = np.zeros(10)
        loaded = cp.load_into(capacity, unit_cost)
        assert loaded == [(1, 5), (9, 11)]
        assert capacity[:4].tolist() == [0.0, 1.0, 2.0, 3.0]
        assert unit_cost[8:].tolist() == [18.0, 19.0]
        assert capacity[4:8].tolist() == [0.0] * 4  # gap untouched

    def test_corrupt_shard_is_deleted_not_trusted(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp", key="k", space_size=10,
                             chunk_size=4)
        cp.ensure()
        cp.write_span(1, 5, np.ones(4), np.ones(4))
        cp.write_span(5, 9, np.ones(4), np.ones(4))
        shard = cp._span_path(5, 9)
        shard.write_bytes(b"not a npy file")
        capacity = np.zeros(10)
        unit_cost = np.zeros(10)
        assert cp.load_into(capacity, unit_cost) == [(1, 5)]
        assert not shard.exists()  # corruption costs progress, not safety

    def test_foreign_files_are_ignored(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp", key="k", space_size=26,
                             chunk_size=4)
        cp.ensure()
        (tmp_path / "cp" / "span-junk.npy").write_bytes(b"x")
        (tmp_path / "cp" / "span-000000000003-000000000007.npy").write_bytes(
            b"x")  # parsable but off the chunk grid
        assert cp.completed_spans() == []

    def test_discard_is_idempotent(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp", key="k", space_size=26,
                             chunk_size=4)
        cp.ensure()
        assert cp.bytes_on_disk() > 0
        cp.discard()
        assert not cp.directory.exists()
        cp.discard()  # second discard is a no-op
        assert cp.bytes_on_disk() == 0

    def test_invalid_construction_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCheckpoint(tmp_path, key="k", space_size=0)
        with pytest.raises(ValueError):
            SweepCheckpoint(tmp_path, key="k", space_size=5, chunk_size=0)


class TestInterruptAndResume:
    """The acceptance criterion: interrupt after k spans, resume the rest."""

    def test_resume_evaluates_exactly_the_missing_spans(self, tmp_path):
        space, caps = space_and_caps()  # 63 configurations
        chunk, workers, k = 4, 2, 3
        key = evaluation_cache_key(space.catalog, caps)
        cp = SweepCheckpoint(tmp_path / "cp", key=key,
                            space_size=space.size, chunk_size=chunk)

        with pytest.raises(SweepInterrupted) as excinfo:
            evaluate_resilient(space, caps, workers=workers,
                               chunk_size=chunk, checkpoint=cp,
                               config=fast_config(stop_after_spans=k))
        assert excinfo.value.spans_completed == k
        shards = cp.completed_spans()
        assert len(shards) == k  # exactly k spans were persisted

        gaps = missing_ranges(shards, space.size)
        expected_spans = partition_ranges(gaps, chunk,
                                          workers * TASKS_PER_WORKER)
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=workers, chunk_size=chunk,
            checkpoint=cp, config=fast_config())
        assert stats.spans_resumed == k
        assert stats.spans_evaluated == len(expected_spans)
        assert stats.spans_total == k + len(expected_spans)

        serial = space.evaluate(caps, chunk_size=chunk)
        assert serial.capacity_gips.tobytes() == capacity.tobytes()
        assert serial.unit_cost_per_hour.tobytes() == unit_cost.tobytes()

    def test_fully_checkpointed_sweep_spawns_no_workers(self, tmp_path):
        space, caps = space_and_caps(quota=2)
        serial = space.evaluate(caps, chunk_size=8)
        cp = SweepCheckpoint(tmp_path / "cp", key="k",
                             space_size=space.size, chunk_size=8)
        cp.ensure()
        cp.write_span(1, space.size + 1, serial.capacity_gips,
                      serial.unit_cost_per_hour)
        capacity, unit_cost, stats = evaluate_resilient(
            space, caps, workers=2, chunk_size=8, checkpoint=cp)
        assert stats.workers_spawned == 0
        assert stats.spans_resumed == 1
        assert stats.spans_evaluated == 0
        assert serial.capacity_gips.tobytes() == capacity.tobytes()
        assert serial.unit_cost_per_hour.tobytes() == unit_cost.tobytes()

    def test_chunk_size_mismatch_is_rejected(self, tmp_path):
        space, caps = space_and_caps(quota=2)
        cp = SweepCheckpoint(tmp_path / "cp", key="k",
                             space_size=space.size, chunk_size=8)
        with pytest.raises(ConfigurationError):
            evaluate_resilient(space, caps, workers=2, chunk_size=4,
                               checkpoint=cp)

    def test_evaluate_with_shards_resumes_even_serially(self, tmp_path):
        """A checkpoint holding shards forces the supervised path so a
        ``workers=None`` caller still resumes instead of re-sweeping."""
        space, caps = space_and_caps(quota=2)
        serial = space.evaluate(caps)
        cp = SweepCheckpoint(tmp_path / "cp",
                             key=evaluation_cache_key(space.catalog, caps),
                             space_size=space.size)
        cp.ensure()
        cp.write_span(1, space.size + 1, serial.capacity_gips,
                      serial.unit_cost_per_hour)
        resumed = space.evaluate(caps, checkpoint=cp)
        stats = resumed.sweep_stats()
        assert stats is not None
        assert stats.spans_resumed == 1 and stats.spans_evaluated == 0
        assert resumed.capacity_gips.tobytes() == \
            serial.capacity_gips.tobytes()
        assert serial.sweep_stats() is None  # plain serial has no stats


class TestEvaluationCacheCheckpoints:
    def test_checkpoint_is_content_addressed(self, tmp_path):
        space, caps = space_and_caps(quota=2)
        cache = EvaluationCache(tmp_path)
        cp = cache.sweep_checkpoint(space, caps)
        assert cp.key == evaluation_cache_key(space.catalog, caps)
        assert cp.directory == tmp_path / f"{cp.key}.sweep"
        other = cache.sweep_checkpoint(space, caps + 1.0)
        assert other.directory != cp.directory

    def test_sweep_checkpoints_listing_and_clear(self, tmp_path):
        space, caps = space_and_caps(quota=2)
        cache = EvaluationCache(tmp_path)
        assert cache.sweep_checkpoints() == []
        cp = cache.sweep_checkpoint(space, caps, chunk_size=8)
        cp.ensure()
        cp.write_span(1, 9, np.ones(8), np.ones(8))
        ((key, n_shards, size),) = cache.sweep_checkpoints()
        assert key == cp.key
        assert n_shards == 1
        assert size > 0
        cache.clear()
        assert cache.sweep_checkpoints() == []
        assert not cp.directory.exists()


class TestCeliaResume:
    def test_evaluation_resumes_from_checkpoint_then_discards(self, tmp_path):
        catalog = make_catalog(ROWS, quota=2)
        warm = Celia(catalog, seed=7, cache_dir=tmp_path)
        from repro.apps import application_by_name

        app = application_by_name("galaxy", seed=7)
        caps = warm.capacities(app)
        serial = warm.space.evaluate(caps)
        cp = warm.evaluation_cache.sweep_checkpoint(warm.space, caps)
        cp.ensure()
        cp.write_span(1, warm.space.size + 1, serial.capacity_gips,
                      serial.unit_cost_per_hour)

        evaluation = warm.evaluation(app)
        stats = evaluation.sweep_stats()
        assert stats is not None
        assert stats.spans_resumed == 1 and stats.spans_evaluated == 0
        assert evaluation.capacity_gips.tobytes() == \
            serial.capacity_gips.tobytes()
        assert not cp.directory.exists()  # discarded after store()
        # A fresh instance now warm-starts from the stored artefact.
        cold = Celia(catalog, seed=7, cache_dir=tmp_path)
        assert cold.evaluation(app).sweep_stats() is None
        assert cold.evaluation_cache.hits == 1


class TestServiceWarmResume:
    def test_warmup_resumes_and_reports_metrics(self, tmp_path):
        def tiny_catalog(quota):
            return make_catalog(ROWS, quota=quota)

        # Seed the cache dir with a full-space checkpoint for the exact
        # signature the service will warm (galaxy, quota 2, seed 0).
        celia = Celia(tiny_catalog(2), seed=0, cache_dir=tmp_path)
        from repro.apps import application_by_name

        caps = celia.capacities(application_by_name("galaxy", seed=0))
        serial = celia.space.evaluate(caps)
        cp = celia.evaluation_cache.sweep_checkpoint(celia.space, caps)
        cp.ensure()
        cp.write_span(1, celia.space.size + 1, serial.capacity_gips,
                      serial.unit_cost_per_hour)

        service = PlannerService(
            config=ServiceConfig(default_quota=2,
                                 cache_dir=str(tmp_path)),
            catalog_factory=tiny_catalog,
        )
        asyncio.run(service.warm("galaxy"))
        assert service.metrics.counter("warm_spans_resumed").value == 1
        assert service.metrics.counter("warm_spans_swept").value == 0
        assert not cp.directory.exists()


class TestCliSweep:
    def test_sweep_then_cached(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["--quota", "2", "--workers", "2",
                "--cache-dir", str(tmp_path), "sweep", "galaxy"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "swept 19,682 configurations" in out
        assert main(argv) == 0
        assert "already cached" in capsys.readouterr().out

    def test_sweep_resume_reports_resumed_spans(self, tmp_path, capsys):
        from repro.apps import application_by_name
        from repro.cli import main

        celia = Celia(ec2_catalog(max_nodes_per_type=2), seed=0,
                      cache_dir=tmp_path)
        app = application_by_name("galaxy", seed=0)
        caps = celia.capacities(app)
        serial = celia.space.evaluate(caps)
        cp = celia.evaluation_cache.sweep_checkpoint(celia.space, caps)
        cp.ensure()
        cp.write_span(1, celia.space.size + 1, serial.capacity_gips,
                      serial.unit_cost_per_hour)

        rc = main(["--quota", "2", "--cache-dir", str(tmp_path),
                   "sweep", "galaxy", "--resume", "--json"])
        assert rc == 0
        import json

        stats = json.loads(capsys.readouterr().out)
        assert stats["spans_resumed"] == 1
        assert stats["spans_evaluated"] == 0
        assert stats["space_size"] == celia.space.size

    def test_interrupted_checkpoint_shows_in_cache_info(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        space, caps = space_and_caps(quota=2)
        cache = EvaluationCache(tmp_path)
        cp = cache.sweep_checkpoint(space, caps, chunk_size=8)
        cp.ensure()
        cp.write_span(1, 9, np.ones(8), np.ones(8))
        assert main(["--cache-dir", str(tmp_path), "cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "interrupted sweeps" in out
        assert cp.key[:12] in out

    def test_sweep_requires_cache(self, capsys):
        from repro.cli import main

        assert main(["--no-cache", "sweep", "galaxy"]) == 2
        assert "drop --no-cache" in capsys.readouterr().err
