"""Tests for resource catalogs, including the Table III reproduction."""

import numpy as np
import pytest

from repro.cloud.catalog import Catalog, ec2_catalog, make_catalog
from repro.cloud.instance import ResourceCategory
from repro.errors import CatalogError


class TestEc2Catalog:
    def test_nine_types(self, ec2):
        assert len(ec2) == 9

    def test_configuration_count_matches_paper(self, ec2):
        # The paper: 10,077,695 configurations from 9 types, 5 nodes each.
        assert ec2.configuration_count() == 10_077_695

    def test_eq1_formula(self, ec2):
        assert ec2.configuration_count() == 6**9 - 1

    def test_prices_match_table_iii(self, ec2):
        expected = {
            "c4.large": 0.105, "c4.xlarge": 0.209, "c4.2xlarge": 0.419,
            "m4.large": 0.133, "m4.xlarge": 0.266, "m4.2xlarge": 0.532,
            "r3.large": 0.166, "r3.xlarge": 0.333, "r3.2xlarge": 0.664,
        }
        for name, price in expected.items():
            assert ec2.type_named(name).price_per_hour == price

    def test_price_range_matches_paper(self, ec2):
        # "hourly prices range from $0.105 to $0.664"
        assert ec2.prices.min() == pytest.approx(0.105)
        assert ec2.prices.max() == pytest.approx(0.664)

    def test_vcpus_match_table_iii(self, ec2):
        for itype in ec2:
            expected = {"large": 2, "xlarge": 4, "2xlarge": 8}[itype.size_label]
            assert itype.vcpus == expected

    def test_categories_are_contiguous_c4_m4_r3(self, ec2):
        cats = [c.value for c in ec2.categories]
        assert cats == ["c4"] * 3 + ["m4"] * 3 + ["r3"] * 3

    def test_configuration_tuple_order_is_largest_first(self, ec2):
        # Configuration vectors must match the paper's annotations:
        # first slot is c4.2xlarge (see Table IV cross-check in DESIGN.md).
        assert ec2.names[0] == "c4.2xlarge"
        assert ec2.names[3] == "m4.2xlarge"
        assert ec2.names[6] == "r3.2xlarge"

    def test_custom_quota(self):
        cat = ec2_catalog(max_nodes_per_type=2)
        assert cat.configuration_count() == 3**9 - 1

    def test_frequencies(self, ec2):
        assert ec2.type_named("c4.large").frequency_ghz == 2.9
        assert ec2.type_named("m4.large").frequency_ghz == 2.3
        assert ec2.type_named("r3.large").frequency_ghz == 2.5


class TestCatalogBehaviour:
    def test_index_of_and_type_named(self, small_catalog):
        assert small_catalog.index_of("a.big") == 1
        assert small_catalog.type_named("a.big").vcpus == 4

    def test_unknown_type(self, small_catalog):
        with pytest.raises(CatalogError):
            small_catalog.index_of("nope")

    def test_vector_views(self, small_catalog):
        np.testing.assert_allclose(small_catalog.prices, [0.10, 0.21, 0.16])
        np.testing.assert_array_equal(small_catalog.vcpus, [2, 4, 2])
        np.testing.assert_array_equal(small_catalog.quota_vector, [2, 2, 2])

    def test_restrict_preserves_order(self, ec2):
        sub = ec2.restrict(["m4.large", "c4.large"])
        assert sub.names == ["m4.large", "c4.large"]
        assert sub.configuration_count() == 6 * 6 - 1

    def test_with_quota(self, ec2):
        assert ec2.with_quota(1).configuration_count() == 2**9 - 1

    def test_types_in_category(self, ec2):
        c4 = ec2.types_in_category(ResourceCategory.COMPUTE)
        assert [t.name for t in c4] == ["c4.2xlarge", "c4.xlarge", "c4.large"]

    def test_duplicate_names_rejected(self, small_catalog):
        with pytest.raises(CatalogError):
            Catalog(types=(small_catalog.types[0], small_catalog.types[0]),
                    quotas=(1, 1))

    def test_empty_catalog_rejected(self):
        with pytest.raises(CatalogError):
            Catalog(types=(), quotas=())

    def test_quota_mismatch_rejected(self, small_catalog):
        with pytest.raises(CatalogError):
            Catalog(types=small_catalog.types, quotas=(1, 2))

    def test_zero_quota_rejected(self, small_catalog):
        with pytest.raises(CatalogError):
            Catalog(types=small_catalog.types, quotas=(0, 1, 1))

    def test_iteration_and_indexing(self, small_catalog):
        assert [t.name for t in small_catalog] == \
            [small_catalog[i].name for i in range(len(small_catalog))]

    def test_make_catalog_defaults(self):
        cat = make_catalog([("x", 2, 2.0, 0.1)], quota=3)
        assert cat.configuration_count() == 3
        assert cat[0].memory_gb == 8.0
